// Second-round property tests ("fuzz" with deterministic seeds):
// randomized inputs pushed through the newer subsystems — modulo
// scheduling + expansion, IO round trips, functional execution,
// register allocation — checking the invariants that must hold for
// every input.
#include <gtest/gtest.h>

#include <sstream>

#include "bind/driver.hpp"
#include "bind/eval_engine.hpp"
#include "graph/builder.hpp"
#include "io/dfg_text.hpp"
#include "kernels/kernels.hpp"
#include "machine/machine_file.hpp"
#include "machine/parser.hpp"
#include "modulo/expand.hpp"
#include "modulo/loop_kernels.hpp"
#include "modulo/mii.hpp"
#include "modulo/modulo_scheduler.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/reg_pressure.hpp"
#include "sched/verifier.hpp"
#include "sim/executor.hpp"

namespace cvb {
namespace {

TEST(FuzzModulo, RandomLoopsPipelineLegally) {
  Rng rng(9001);
  const std::vector<std::string> datapaths = {"[1,1]", "[1,1|1,1]",
                                              "[2,1|1,2]"};
  for (int trial = 0; trial < 15; ++trial) {
    RandomLoopParams params;
    params.num_ops = rng.uniform_int(4, 14);
    params.num_layers = rng.uniform_int(2, 4);
    params.back_edges = rng.uniform_int(0, 4);
    params.max_distance = rng.uniform_int(1, 3);
    const CyclicDfg loop = make_random_loop(params, rng);
    const Datapath dp = parse_datapath(
        datapaths[static_cast<std::size_t>(trial) % datapaths.size()]);

    const ModuloResult r = software_pipeline(loop, dp);
    ASSERT_EQ(verify_modulo_schedule(r, dp), "") << "trial " << trial;
    EXPECT_GE(r.ii, minimum_ii(loop, dp)) << "trial " << trial;

    // Expansion must pass the plain-schedule verifier as well.
    const ExpandedPipeline flat = expand_pipeline(r, dp, 3);
    EXPECT_EQ(verify_schedule(flat.flat, dp, flat.schedule), "")
        << "trial " << trial;
  }
}

TEST(FuzzIo, RandomGraphsRoundTripExactly) {
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    RandomDagParams params;
    params.num_ops = rng.uniform_int(5, 60);
    params.num_layers = rng.uniform_int(2, 8);
    const Dfg g = make_random_layered(params, rng);

    std::stringstream buffer;
    write_dfg_text(buffer, g, "fuzz");
    const ParsedDfg parsed = parse_dfg_text(buffer);
    ASSERT_EQ(parsed.dfg.num_ops(), g.num_ops());
    EXPECT_EQ(parsed.dfg.num_edges(), g.num_edges());
    for (OpId v = 0; v < g.num_ops(); ++v) {
      EXPECT_EQ(parsed.dfg.type(v), g.type(v));
      ASSERT_EQ(parsed.dfg.operands(v).size(), g.operands(v).size());
      for (std::size_t k = 0; k < g.operands(v).size(); ++k) {
        EXPECT_EQ(parsed.dfg.operands(v)[k], g.operands(v)[k]);
      }
    }
  }
}

TEST(FuzzExecutor, BindingNeverChangesSemantics) {
  // Random kernels, random-ish datapaths, full algorithm: scheduled
  // execution must always equal reference execution.
  Rng rng(424242);
  const std::vector<std::int64_t> inputs = {5, -3, 17, 2, -11, 8, 1, -6};
  for (int trial = 0; trial < 10; ++trial) {
    // Builder-based graph so operand info is complete.
    DfgBuilder b;
    std::vector<Value> values;
    for (int i = 0; i < 4; ++i) {
      values.push_back(b.add(b.input(), b.input()));
    }
    const int extra = rng.uniform_int(6, 20);
    for (int i = 0; i < extra; ++i) {
      const Value a =
          values[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(values.size()) - 1))];
      const Value c =
          values[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(values.size()) - 1))];
      switch (rng.uniform_int(0, 3)) {
        case 0:
          values.push_back(b.add(a, c));
          break;
        case 1:
          values.push_back(b.sub(a, c));
          break;
        case 2:
          values.push_back(b.mul(a, c));
          break;
        default:
          values.push_back(b.cmul(a));
          break;
      }
    }
    const Dfg g = std::move(b).take();
    const Datapath dp = parse_datapath(
        trial % 2 == 0 ? "[1,1|1,1]" : "[2,1|1,1|1,1]");
    const BindResult r = bind_full(g, dp);
    EXPECT_EQ(check_semantics(g, r.bound, dp, r.schedule, inputs), "")
        << "trial " << trial;
  }
}

TEST(FuzzRegalloc, AllocationAlwaysValidAndTight) {
  Rng rng(1337);
  for (int trial = 0; trial < 10; ++trial) {
    RandomDagParams params;
    params.num_ops = rng.uniform_int(10, 50);
    params.num_layers = rng.uniform_int(3, 8);
    const Dfg g = make_random_layered(params, rng);
    const Datapath dp = parse_datapath("[2,1|1,1]");
    const BindResult r = bind_full(g, dp);
    const RegAllocation alloc = allocate_registers(r.bound, dp, r.schedule);
    ASSERT_EQ(verify_allocation(r.bound, dp, r.schedule, alloc), "")
        << "trial " << trial;
    const RegPressure pressure = compute_reg_pressure(r.bound, dp, r.schedule);
    for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
      EXPECT_EQ(alloc.regs_used[static_cast<std::size_t>(c)],
                pressure.max_live[static_cast<std::size_t>(c)])
          << "trial " << trial;
    }
  }
}

TEST(FuzzEvalEngine, DriverIsThreadCountInvariantOnRandomDags) {
  // Random layered DAGs through the full driver with the evaluation
  // engine at random thread counts: every schedule must verify, and
  // every result must be bit-identical to the serial path.
  Rng rng(20260806);
  const std::vector<std::string> datapaths = {"[1,1|1,1]", "[2,1|1,2]",
                                              "[1,1|1,1|1,1]"};
  for (int trial = 0; trial < 8; ++trial) {
    RandomDagParams params;
    params.num_ops = rng.uniform_int(8, 40);
    params.num_layers = rng.uniform_int(2, 6);
    const Dfg g = make_random_layered(params, rng);
    const Datapath dp = parse_datapath(
        datapaths[static_cast<std::size_t>(trial) % datapaths.size()]);

    DriverParams driver;
    driver.max_stretch = 2;
    driver.iter_starts = 2;
    const BindResult serial = bind_full(g, dp, driver);
    ASSERT_EQ(verify_schedule(serial.bound, dp, serial.schedule), "")
        << "trial " << trial;

    const int threads = rng.uniform_int(2, 8);
    EvalEngineOptions opts;
    opts.num_threads = threads;
    EvalEngine engine(opts);
    driver.engine = &engine;
    const BindResult parallel = bind_full(g, dp, driver);
    ASSERT_EQ(verify_schedule(parallel.bound, dp, parallel.schedule), "")
        << "trial " << trial << " with " << threads << " threads";
    EXPECT_EQ(parallel.binding, serial.binding)
        << "trial " << trial << " with " << threads << " threads";
    EXPECT_EQ(parallel.schedule.latency, serial.schedule.latency)
        << "trial " << trial;
    EXPECT_EQ(parallel.schedule.num_moves, serial.schedule.num_moves)
        << "trial " << trial;
    EXPECT_GT(parallel.eval_stats.candidates, 0) << "trial " << trial;
  }
}

TEST(FuzzRandomLoop, GeneratorRespectsContracts) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    RandomLoopParams params;
    params.num_ops = rng.uniform_int(2, 20);
    params.back_edges = rng.uniform_int(0, 6);
    const CyclicDfg loop = make_random_loop(params, rng);
    EXPECT_NO_THROW(loop.validate());
    EXPECT_EQ(loop.body().num_ops(), loop.num_ops());
  }
  RandomLoopParams bad;
  bad.num_ops = 1;
  EXPECT_THROW((void)make_random_loop(bad, rng), std::invalid_argument);
}

// Expects `parse` to throw std::invalid_argument whose message names
// the failing line ("..., line N: ..."), the contract resource-limit
// rejections share with ordinary syntax errors.
template <typename Fn>
void expect_line_numbered_failure(Fn parse, const std::string& what) {
  try {
    parse();
    FAIL() << what << ": limit violation was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
        << what << ": message lacks a line number: " << e.what();
  }
}

TEST(FuzzIoLimits, RandomGraphsAgainstTinyLimitsFailTyped) {
  // Well-formed random graphs pushed through every DfgTextLimits guard:
  // each rejection must be a typed std::invalid_argument naming the
  // line, never a crash, hang, or silent truncation.
  Rng rng(8181);
  for (int trial = 0; trial < 12; ++trial) {
    RandomDagParams params;
    params.num_ops = rng.uniform_int(6, 40);
    params.num_layers = rng.uniform_int(2, 6);
    const Dfg g = make_random_layered(params, rng);
    std::stringstream buffer;
    write_dfg_text(buffer, g, "limits");
    const std::string text = buffer.str();

    DfgTextLimits tight;
    switch (trial % 4) {
      case 0:
        tight.max_lines = rng.uniform_int(1, 4);
        break;
      case 1:
        tight.max_line_length = static_cast<std::size_t>(
            rng.uniform_int(1, 6));
        break;
      case 2:
        tight.max_ops = rng.uniform_int(1, params.num_ops - 1);
        break;
      default:
        tight.max_edges = rng.uniform_int(0, 2);
        break;
    }
    expect_line_numbered_failure(
        [&] {
          std::istringstream in(text);
          (void)parse_dfg_text(in, tight);
        },
        "dfg trial " + std::to_string(trial));

    // The same text under the default (ample) limits still parses.
    std::istringstream in(text);
    EXPECT_EQ(parse_dfg_text(in).dfg.num_ops(), g.num_ops());
  }
}

TEST(FuzzIoLimits, OperandCountGuardFires) {
  DfgTextLimits tight;
  tight.max_operands_per_op = 2;
  std::istringstream in(
      "dfg wide\nop 0 add a\nop 1 add b\nop 2 add c\nop 3 add d\n"
      "args 3 0 1 2\n");
  expect_line_numbered_failure(
      [&] { (void)parse_dfg_text(in, tight); }, "operand guard");
}

TEST(FuzzIoLimits, MachineFileLimitsFailTyped) {
  const std::string text = "machine m\nclusters [2,1|1,1]\nbuses 2\n";
  {
    MachineFileLimits tight;
    tight.max_lines = 2;
    expect_line_numbered_failure(
        [&] {
          std::istringstream in(text);
          (void)parse_machine_file(in, tight);
        },
        "machine line count");
  }
  {
    MachineFileLimits tight;
    tight.max_line_length = 8;
    expect_line_numbered_failure(
        [&] {
          std::istringstream in(text);
          (void)parse_machine_file(in, tight);
        },
        "machine line length");
  }
  // Ample limits: same text parses.
  std::istringstream in(text);
  EXPECT_EQ(parse_machine_file(in).datapath.num_clusters(), 2);
}

}  // namespace
}  // namespace cvb
