// Eval-cache snapshot/restore (net/snapshot.hpp + EvalEngine
// export/import): round-trips, strict rejection of damaged or
// wrong-version files, and the import-side re-verification that keeps
// corrupt entries out of the cache.
#include "net/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bind/eval_engine.hpp"
#include "cli/cli.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "net/frame.hpp"
#include "service/service.hpp"

namespace cvb {
namespace {

/// Populates an engine's cache with real evaluations of `kernel`.
std::vector<CacheExportEntry> populated_export(EvalEngine& engine) {
  const Dfg dfg = benchmark_by_name("EWF").dfg;
  const Datapath dp = parse_datapath("[2,1|1,1]", 2, 1);
  Binding binding(dfg.num_ops(), 0);
  (void)engine.evaluate(dfg, dp, binding);
  for (std::size_t i = 0; i < binding.size(); i += 3) {
    binding[i] = 1;
  }
  (void)engine.evaluate(dfg, dp, binding);
  return engine.export_cache();
}

TEST(Snapshot, EngineExportImportRoundTrip) {
  EvalEngine source;
  const std::vector<CacheExportEntry> entries = populated_export(source);
  ASSERT_GE(entries.size(), 2u);

  EvalEngine fresh;
  EXPECT_EQ(fresh.import_cache(entries), entries.size());
  // The warmed engine serves the same results from cache: hits climb,
  // and a re-export contains the same keys.
  const std::vector<CacheExportEntry> round = fresh.export_cache();
  ASSERT_EQ(round.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(round[i].key, entries[i].key);
    EXPECT_EQ(round[i].signature, entries[i].signature);
    EXPECT_EQ(round[i].binding, entries[i].binding);
    EXPECT_EQ(round[i].result, entries[i].result);
  }
}

TEST(Snapshot, ImportRejectsCorruptEntries) {
  EvalEngine source;
  std::vector<CacheExportEntry> entries = populated_export(source);
  ASSERT_GE(entries.size(), 2u);
  // Corrupt one entry's binding: its key no longer matches
  // binding_hash(binding, signature), so import must skip exactly it.
  entries[0].binding[0] = static_cast<ClusterId>(entries[0].binding[0] + 1);
  EvalEngine fresh;
  EXPECT_EQ(fresh.import_cache(entries), entries.size() - 1);
}

TEST(Snapshot, ImportIsNoOpWhenCachingDisabled) {
  EvalEngine source;
  const std::vector<CacheExportEntry> entries = populated_export(source);
  EvalEngineOptions no_cache;
  no_cache.cache_capacity = 0;
  EvalEngine disabled(no_cache);
  EXPECT_EQ(disabled.import_cache(entries), 0u);
}

TEST(Snapshot, StreamRoundTrip) {
  EvalEngine source;
  const std::vector<CacheExportEntry> entries = populated_export(source);
  std::ostringstream out;
  net::write_cache_snapshot(out, entries);
  std::istringstream in(out.str());
  const std::vector<CacheExportEntry> read =
      net::read_cache_snapshot(in);
  ASSERT_EQ(read.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(read[i].key, entries[i].key);
    EXPECT_EQ(read[i].signature, entries[i].signature);
    EXPECT_EQ(read[i].binding, entries[i].binding);
    EXPECT_EQ(read[i].result, entries[i].result);
  }
}

TEST(Snapshot, EmptySnapshotRoundTrips) {
  std::ostringstream out;
  net::write_cache_snapshot(out, {});
  std::istringstream in(out.str());
  EXPECT_TRUE(net::read_cache_snapshot(in).empty());
}

TEST(Snapshot, RejectsVersionMismatch) {
  std::ostringstream out;
  net::write_cache_snapshot(out, {});
  std::string bytes = out.str();
  // The header payload starts right after the frame header; bump its
  // u32 version field.
  ASSERT_GT(bytes.size(), net::kFrameHeaderSize);
  bytes[net::kFrameHeaderSize] = static_cast<char>(net::kSnapshotVersion + 1);
  std::istringstream in(bytes);
  EXPECT_THROW((void)net::read_cache_snapshot(in), std::invalid_argument);
}

TEST(Snapshot, RejectsTruncationAndTrailingBytes) {
  EvalEngine source;
  const std::vector<CacheExportEntry> entries = populated_export(source);
  std::ostringstream out;
  net::write_cache_snapshot(out, entries);
  const std::string bytes = out.str();

  // Truncation anywhere (drop the tail) must throw, not return a
  // partial cache.
  for (const std::size_t cut :
       {bytes.size() - 1, bytes.size() / 2, net::kFrameHeaderSize + 2,
        std::size_t{3}}) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_THROW((void)net::read_cache_snapshot(in), std::invalid_argument)
        << "cut " << cut;
  }
  // Trailing garbage after the declared entries must throw too.
  std::istringstream in(bytes + "x");
  EXPECT_THROW((void)net::read_cache_snapshot(in), std::invalid_argument);
}

TEST(Snapshot, RejectsHostileEntryCount) {
  // A header declaring 2^40 entries over an empty body must be
  // rejected before any allocation is sized from it.
  std::string header_payload;
  for (const std::uint32_t v : {net::kSnapshotVersion}) {
    for (int byte = 0; byte < 4; ++byte) {
      header_payload.push_back(static_cast<char>((v >> (8 * byte)) & 0xffU));
    }
  }
  const std::uint64_t huge = std::uint64_t{1} << 40;
  for (int byte = 0; byte < 8; ++byte) {
    header_payload.push_back(static_cast<char>((huge >> (8 * byte)) & 0xffU));
  }
  const std::string bytes =
      net::encode_frame(net::FrameType::kSnapshotHeader, header_payload);
  std::istringstream in(bytes);
  EXPECT_THROW((void)net::read_cache_snapshot(in), std::invalid_argument);
}

TEST(Snapshot, FileRoundTripAndServiceWarmStart) {
  const std::string path = testing::TempDir() + "cvb_snapshot_test.bin";
  std::vector<CacheExportEntry> entries;
  {
    ServiceOptions opts;
    opts.num_workers = 1;
    Service service(opts);
    BindJob job;
    job.id = "warm";
    job.dfg = benchmark_by_name("EWF").dfg;
    job.datapath = parse_datapath("[2,1|1,1]", 2, 1);
    const BindOutcome outcome = service.submit(std::move(job)).get();
    ASSERT_EQ(outcome.status, BindStatus::kOk);
    entries = service.snapshot_cache();
    ASSERT_FALSE(entries.empty());
    net::save_cache_snapshot(path, entries);
  }
  {
    ServiceOptions opts;
    opts.num_workers = 1;
    Service service(opts);
    const std::size_t accepted =
        service.warm_start(net::load_cache_snapshot(path));
    EXPECT_EQ(accepted, entries.size());
    EXPECT_EQ(service.snapshot_cache().size(), entries.size());
  }
  std::remove(path.c_str());
  EXPECT_THROW((void)net::load_cache_snapshot(path), std::invalid_argument);
}

TEST(Snapshot, ServeCliSnapshotCommandAndWarmStart) {
  const std::string path = testing::TempDir() + "cvb_snapshot_cli.bin";
  // First serve run: do a job, snapshot the warmed cache to disk.
  {
    std::istringstream in(
        R"({"id":"a","kernel":"EWF","datapath":"[2,1|1,1]"})"
        "\n"
        R"({"cmd":"snapshot","path":")" +
        path + R"("})" "\n" R"({"cmd":"quit"})" "\n");
    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(run_serve_cli({"--workers", "1"}, in, out, err), 0)
        << err.str();
    // The snapshot ack reports a non-empty entry count.
    bool saw_snapshot = false;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("\"snapshot\"") == std::string::npos) {
        continue;
      }
      const JsonValue ack = JsonValue::parse(line);
      EXPECT_EQ(ack.find("status")->as_string(), "ok");
      EXPECT_GT(ack.find("entries")->as_number(), 0.0);
      saw_snapshot = true;
    }
    EXPECT_TRUE(saw_snapshot) << out.str();
  }
  // Second run warm-starts from the file and keeps serving normally.
  {
    std::istringstream in(
        R"({"id":"b","kernel":"EWF","datapath":"[2,1|1,1]","effort":"fast"})"
        "\n" R"({"cmd":"quit"})" "\n");
    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(run_serve_cli({"--workers", "1", "--warm-start", path}, in, out,
                            err),
              0)
        << err.str();
    EXPECT_NE(err.str().find("warm-start"), std::string::npos) << err.str();
    EXPECT_NE(out.str().find("\"ok\""), std::string::npos) << out.str();
  }
  std::remove(path.c_str());
  // Crash-only warm start: a missing snapshot degrades to a cold
  // cache with a structured warning — it must NOT abort startup.
  {
    std::istringstream in(R"({"cmd":"quit"})" "\n");
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(run_serve_cli({"--warm-start", path}, in, out, err), 0)
        << err.str();
    EXPECT_NE(err.str().find("\"warning\""), std::string::npos) << err.str();
    EXPECT_NE(err.str().find("cold cache"), std::string::npos) << err.str();
  }
  // Same for a corrupt (non-snapshot) file.
  {
    std::ofstream garbage(path, std::ios::binary);
    garbage << "this is not a snapshot";
    garbage.close();
    std::istringstream in(
        R"({"id":"c","kernel":"EWF","datapath":"[2,1|1,1]","effort":"fast"})"
        "\n" R"({"cmd":"quit"})" "\n");
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(run_serve_cli({"--workers", "1", "--warm-start", path}, in, out,
                            err),
              0)
        << err.str();
    EXPECT_NE(err.str().find("\"warning\""), std::string::npos) << err.str();
    // Cold but serving: the job still completes.
    EXPECT_NE(out.str().find("\"ok\""), std::string::npos) << out.str();
    std::remove(path.c_str());
  }
}

TEST(Snapshot, TrailerChecksumCatchesSilentCorruption) {
  EvalEngine source;
  const std::vector<CacheExportEntry> entries = populated_export(source);
  std::ostringstream out;
  net::write_cache_snapshot(out, entries);
  std::string bytes = out.str();

  // The file ends in a kSnapshotTrailer frame carrying the whole-file
  // checksum.
  const std::size_t trailer_at = bytes.size() - net::kFrameHeaderSize - 8;
  EXPECT_EQ(static_cast<net::FrameType>(
                static_cast<unsigned char>(bytes[trailer_at + 3])),
            net::FrameType::kSnapshotTrailer);

  // Flip one byte inside an entry payload (past the header frame and
  // the first entry's frame header): the frames all still parse, but
  // the trailer checksum must catch it — in the tolerant restore too,
  // since a wrong sum is silent corruption, not a crash artifact.
  std::string corrupt = bytes;
  const std::size_t entry_byte =
      net::kFrameHeaderSize + 12 + net::kFrameHeaderSize + 2;
  ASSERT_LT(entry_byte, trailer_at);
  corrupt[entry_byte] = static_cast<char>(corrupt[entry_byte] ^ 0x01);
  {
    std::istringstream in(corrupt);
    EXPECT_THROW((void)net::read_cache_snapshot(in), std::invalid_argument);
  }
  {
    std::istringstream in(corrupt);
    EXPECT_THROW((void)net::restore_cache_snapshot(in),
                 std::invalid_argument);
  }
  // Flipping the stored checksum itself is caught the same way.
  corrupt = bytes;
  corrupt[bytes.size() - 1] = static_cast<char>(corrupt[bytes.size() - 1] ^ 1);
  std::istringstream in(corrupt);
  EXPECT_THROW((void)net::restore_cache_snapshot(in), std::invalid_argument);
}

TEST(Snapshot, RestoreSalvagesTornTail) {
  EvalEngine source;
  const std::vector<CacheExportEntry> entries = populated_export(source);
  ASSERT_GE(entries.size(), 2u);
  std::ostringstream out;
  net::write_cache_snapshot(out, entries);
  const std::string bytes = out.str();

  // A pristine file restores complete.
  {
    std::istringstream in(bytes);
    const net::SnapshotRestore restored = net::restore_cache_snapshot(in);
    EXPECT_TRUE(restored.complete);
    EXPECT_EQ(restored.entries.size(), entries.size());
    EXPECT_EQ(restored.dropped, 0u);
  }
  // A torn trailer (crash during a non-atomic write) salvages every
  // entry but reports the file incomplete.
  {
    std::istringstream in(bytes.substr(0, bytes.size() - 3));
    const net::SnapshotRestore restored = net::restore_cache_snapshot(in);
    EXPECT_FALSE(restored.complete);
    EXPECT_EQ(restored.entries.size(), entries.size());
    EXPECT_FALSE(restored.warning.empty());
  }
  // A tear mid-entries salvages the complete prefix and counts the
  // dropped remainder.
  {
    std::istringstream in(bytes.substr(0, bytes.size() / 2));
    const net::SnapshotRestore restored = net::restore_cache_snapshot(in);
    EXPECT_FALSE(restored.complete);
    EXPECT_LT(restored.entries.size(), entries.size());
    EXPECT_EQ(restored.dropped, entries.size() - restored.entries.size());
    // Salvaged entries are intact — they import like any export.
    EvalEngine fresh;
    EXPECT_EQ(fresh.import_cache(restored.entries),
              restored.entries.size());
  }
  // A garbage header is not a torn tail: restore still throws.
  {
    std::istringstream in(std::string("garbage") + bytes);
    EXPECT_THROW((void)net::restore_cache_snapshot(in),
                 std::invalid_argument);
  }
}

TEST(Snapshot, SaveIsAtomicTmpRename) {
  const std::string path = testing::TempDir() + "cvb_snapshot_atomic.bin";
  EvalEngine source;
  const std::vector<CacheExportEntry> entries = populated_export(source);
  net::save_cache_snapshot(path, entries);
  // No staging file (unique `path.tmp.<pid>.<n>` names) survives a
  // successful save, and the renamed-in file restores complete.
  for (const auto& dirent :
       std::filesystem::directory_iterator(testing::TempDir())) {
    EXPECT_EQ(dirent.path().filename().string().rfind(
                  "cvb_snapshot_atomic.bin.tmp", 0),
              std::string::npos)
        << "staging tmp left behind: " << dirent.path();
  }
  const net::SnapshotRestore restored =
      net::restore_cache_snapshot_file(path);
  EXPECT_TRUE(restored.complete);
  EXPECT_EQ(restored.entries.size(), entries.size());
  // Overwrite-in-place (the periodic auto-snapshot path) works too.
  net::save_cache_snapshot(path, entries);
  EXPECT_EQ(net::load_cache_snapshot(path).size(), entries.size());
  std::remove(path.c_str());
  EXPECT_THROW((void)net::restore_cache_snapshot_file(path),
               std::invalid_argument);
}

TEST(Snapshot, ServeCliPeriodicSnapshotWritesAtExit) {
  const std::string path = testing::TempDir() + "cvb_snapshot_auto.bin";
  std::remove(path.c_str());
  // --snapshot-every-s with a long period: the periodic tick never
  // fires in-test, but the exit save must still persist the cache.
  std::istringstream in(
      R"({"id":"a","kernel":"EWF","datapath":"[2,1|1,1]"})"
      "\n" R"({"cmd":"quit"})" "\n");
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(run_serve_cli({"--workers", "1", "--snapshot-every-s", "3600",
                           "--snapshot-path", path},
                          in, out, err),
            0)
      << err.str();
  const net::SnapshotRestore restored = net::restore_cache_snapshot_file(path);
  EXPECT_TRUE(restored.complete);
  EXPECT_FALSE(restored.entries.empty());
  std::remove(path.c_str());
}

TEST(Snapshot, ServeCliSnapshotEveryNeedsAPath) {
  std::istringstream in;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_serve_cli({"--snapshot-every-s", "1"}, in, out, err), 1);
  EXPECT_NE(err.str().find("--snapshot-path"), std::string::npos)
      << err.str();
}

}  // namespace
}  // namespace cvb
