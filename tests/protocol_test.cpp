// Tests of the cvserve wire protocol: request parsing, response
// serialization, and the full NDJSON serve loop end-to-end over string
// streams and over a Unix-domain socket.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "kernels/kernels.hpp"
#include "service/protocol.hpp"
#include "support/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CVB_TEST_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace cvb {
namespace {

std::vector<JsonValue> parse_response_lines(const std::string& text) {
  std::vector<JsonValue> responses;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!trim(line).empty()) {
      responses.push_back(JsonValue::parse(line));
    }
  }
  return responses;
}

const JsonValue* response_for(const std::vector<JsonValue>& responses,
                              const std::string& id) {
  for (const JsonValue& response : responses) {
    const JsonValue* rid = response.find("id");
    if (rid != nullptr && rid->as_string() == id) {
      return &response;
    }
  }
  return nullptr;
}

TEST(Protocol, ParsesKernelJobRequest) {
  const ServeRequest request = parse_serve_request(
      R"({"id":"j1","kernel":"EWF","datapath":"[2,1|1,1]","buses":1,)"
      R"("algorithm":"pcc","effort":"fast","deadline_ms":50})");
  EXPECT_EQ(request.kind, ServeRequest::Kind::kJob);
  EXPECT_EQ(request.job.id, "j1");
  EXPECT_EQ(request.job.dfg.num_ops(), benchmark_by_name("EWF").dfg.num_ops());
  EXPECT_EQ(request.job.datapath.num_clusters(), 2);
  EXPECT_EQ(request.job.strategy.kind, StrategyKind::kPcc);
  EXPECT_EQ(request.job.strategy.effort, BindEffort::kFast);
  EXPECT_EQ(request.job.deadline_ms, 50.0);
}

TEST(Protocol, ParsesInlineDfgWithDefaults) {
  const ServeRequest request = parse_serve_request(
      R"({"dfg":"dfg t\nop 0 add s0\nop 1 mul p0\nargs 0 in in\nargs 1 0 0\n"})");
  EXPECT_EQ(request.kind, ServeRequest::Kind::kJob);
  EXPECT_EQ(request.job.dfg.num_ops(), 2);
  EXPECT_EQ(request.job.datapath.num_clusters(), 2);  // default [1,1|1,1]
  EXPECT_EQ(request.job.strategy.kind, StrategyKind::kBIter);
  EXPECT_EQ(request.job.deadline_ms, 0.0);
  // No explicit strategy: the service may apply its default portfolio.
  EXPECT_FALSE(request.job.strategy_explicit);
}

TEST(Protocol, ParsesTypedStrategyObject) {
  const ServeRequest request = parse_serve_request(
      R"({"kernel":"EWF","strategy":{"kind":"sa","effort":"max","seed":7}})");
  EXPECT_EQ(request.job.strategy.kind, StrategyKind::kSa);
  EXPECT_EQ(request.job.strategy.effort, BindEffort::kMax);
  EXPECT_EQ(request.job.strategy.seed, 7u);
  EXPECT_TRUE(request.job.strategy_explicit);
  EXPECT_TRUE(request.job.portfolio.empty());
}

TEST(Protocol, ParsesPortfolioArrayAndObjectForms) {
  const ServeRequest arr = parse_serve_request(
      R"({"kernel":"EWF","effort":"fast",)"
      R"("portfolio":["b-iter",{"kind":"sa","seed":3}]})");
  ASSERT_EQ(arr.job.portfolio.size(), 2u);
  EXPECT_EQ(arr.job.portfolio[0].kind, StrategyKind::kBIter);
  // The request-level effort is the default for every member.
  EXPECT_EQ(arr.job.portfolio[0].effort, BindEffort::kFast);
  EXPECT_EQ(arr.job.portfolio[1].kind, StrategyKind::kSa);
  EXPECT_EQ(arr.job.portfolio[1].seed, 3u);
  EXPECT_TRUE(arr.job.strategy_explicit);

  const ServeRequest obj = parse_serve_request(
      R"({"kernel":"EWF","portfolio":{"strategies":["b-iter","pcc"],)"
      R"("race_threads":2,"max_rounds":3}})");
  ASSERT_EQ(obj.job.portfolio.size(), 2u);
  EXPECT_EQ(obj.job.portfolio_policy.race_threads, 2);
  EXPECT_EQ(obj.job.portfolio_policy.max_rounds, 3);
}

TEST(Protocol, RejectsUnknownStrategyNamesNamingValidSet) {
  for (const char* line :
       {R"({"kernel":"EWF","algorithm":"b-iter2"})",
        R"({"kernel":"EWF","strategy":"b-iter2"})",
        R"({"kernel":"EWF","portfolio":["b-iter2"]})"}) {
    try {
      (void)parse_serve_request(line);
      FAIL() << line;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("unknown strategy 'b-iter2'"), std::string::npos)
          << line << ": " << what;
      EXPECT_NE(what.find("b-iter, b-init, pcc, sa, mincut, exhaustive"),
                std::string::npos)
          << line << ": " << what;
    }
  }
}

TEST(Protocol, StrategyFormsAreExclusiveAndValidated) {
  const char* bad[] = {
      // v1 + v2 spellings in one request
      R"({"kernel":"EWF","algorithm":"sa","strategy":"sa"})",
      R"({"kernel":"EWF","algorithm":"sa","portfolio":["sa"]})",
      R"({"kernel":"EWF","strategy":"sa","portfolio":["sa"]})",
      // shape errors
      R"({"kernel":"EWF","portfolio":[]})",
      R"({"kernel":"EWF","portfolio":{"race_threads":2}})",
      R"({"kernel":"EWF","strategy":{"effort":"fast"}})",  // no kind
      R"({"kernel":"EWF","strategy":42})",
  };
  for (const char* line : bad) {
    EXPECT_THROW((void)parse_serve_request(line), std::invalid_argument)
        << line;
  }
}

TEST(Protocol, ParsesControlCommands) {
  EXPECT_EQ(parse_serve_request(R"({"cmd":"metrics"})").kind,
            ServeRequest::Kind::kMetrics);
  EXPECT_EQ(parse_serve_request(R"({"cmd":"quit"})").kind,
            ServeRequest::Kind::kQuit);
}

TEST(Protocol, RejectsMalformedRequests) {
  const char* bad[] = {
      "not json",
      "[1,2]",                                    // not an object
      R"({"cmd":"reboot"})",                      // unknown cmd
      R"({"datapath":"[1,1|1,1]"})",              // neither kernel nor dfg
      R"({"kernel":"EWF","dfg":"dfg t\n"})",      // both
      R"({"kernel":"NOPE"})",                     // unknown kernel
      R"({"kernel":"EWF","effort":"extreme"})",   // unknown effort
      R"({"kernel":"EWF","deadline_ms":-1})",     // negative deadline
      R"({"kernel":"EWF","datapath":"oops"})",    // bad datapath spec
      R"({"kernel":42})",                         // wrong field type
      R"({"kernel":"EWF","machine":"m","datapath":"[1,1]"})",  // exclusive
  };
  for (const char* line : bad) {
    EXPECT_THROW((void)parse_serve_request(line), std::invalid_argument)
        << line;
  }
}

TEST(Protocol, OutcomeSerialization) {
  BindOutcome outcome;
  outcome.id = "j9";
  outcome.status = BindStatus::kDeadlineExceeded;
  outcome.binding = {0, 1, 0};
  outcome.latency = 7;
  outcome.moves = 2;
  outcome.queue_ms = 0.5;
  outcome.run_ms = 12.0;
  const JsonValue doc = outcome_to_json(outcome);
  EXPECT_EQ(doc.find("id")->as_string(), "j9");
  EXPECT_EQ(doc.find("status")->as_string(), "deadline_exceeded");
  EXPECT_EQ(doc.find("latency")->as_number(), 7.0);
  EXPECT_EQ(doc.find("moves")->as_number(), 2.0);
  EXPECT_EQ(doc.find("binding")->as_array().size(), 3u);
  EXPECT_EQ(doc.find("error"), nullptr);  // empty error omitted

  BindOutcome shed;
  shed.status = BindStatus::kShed;
  shed.error = "queue full";
  const JsonValue shed_doc = outcome_to_json(shed);
  EXPECT_EQ(shed_doc.find("status")->as_string(), "shed");
  EXPECT_EQ(shed_doc.find("error")->as_string(), "queue full");
  EXPECT_EQ(shed_doc.find("binding"), nullptr);  // no result fields
}

TEST(Protocol, InvalidRequestJson) {
  const JsonValue doc = invalid_request_json("bad line", "j3");
  EXPECT_EQ(doc.find("id")->as_string(), "j3");
  EXPECT_EQ(doc.find("status")->as_string(), "invalid_request");
  EXPECT_EQ(doc.find("error")->as_string(), "bad line");
  EXPECT_EQ(invalid_request_json("x").find("id"), nullptr);
}

TEST(Protocol, EvalStatsJsonShape) {
  EvalStats stats;
  stats.candidates = 10;
  stats.cache_hits = 4;
  stats.cache_misses = 6;
  const JsonValue doc = eval_stats_to_json(stats, 3);
  EXPECT_EQ(doc.find("threads")->as_number(), 3.0);
  EXPECT_EQ(doc.find("candidates")->as_number(), 10.0);
  EXPECT_DOUBLE_EQ(doc.find("cache_hit_rate")->as_number(), 0.4);
  for (const char* key : {"batches", "cache_evictions", "improver_candidates",
                          "pcc_candidates", "explore_jobs", "eval_ms"}) {
    EXPECT_NE(doc.find(key), nullptr) << key;
  }
  EXPECT_EQ(eval_stats_to_json(EvalStats{}, 1).find("cache_hit_rate")
                ->as_number(),
            0.0);
}

TEST(ServeCli, EndToEndOverStreams) {
  std::istringstream in(
      R"({"id":"a","kernel":"ARF","datapath":"[1,1|1,1]","effort":"fast"})"
      "\n"
      "this is not json\n"
      "\n"  // blank lines are skipped
      R"({"id":"b","kernel":"FFT","datapath":"[2,1|1,1]","effort":"fast"})"
      "\n"
      R"({"cmd":"metrics"})"
      "\n"
      R"({"cmd":"quit"})"
      "\n"
      R"({"id":"after-quit","kernel":"ARF"})"
      "\n");
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_serve_cli({"--workers", "2"}, in, out, err);
  EXPECT_EQ(code, 0);

  const std::vector<JsonValue> responses = parse_response_lines(out.str());
  // 2 job responses + 1 parse error + 1 metrics; nothing after quit.
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(response_for(responses, "after-quit"), nullptr);

  const JsonValue* a = response_for(responses, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->find("status")->as_string(), "ok");
  EXPECT_EQ(a->find("binding")->as_array().size(),
            static_cast<std::size_t>(benchmark_by_name("ARF").dfg.num_ops()));
  const JsonValue* b = response_for(responses, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->find("status")->as_string(), "ok");

  int errors = 0;
  int metrics = 0;
  for (const JsonValue& response : responses) {
    if (const JsonValue* status = response.find("status");
        status != nullptr && status->as_string() == "invalid_request") {
      ++errors;
    }
    if (response.find("counters") != nullptr ||
        response.find("service") != nullptr) {
      ++metrics;
    }
  }
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(metrics, 1);
}

TEST(Protocol, ParsesTraceCommand) {
  EXPECT_EQ(parse_serve_request(R"({"cmd":"trace"})").kind,
            ServeRequest::Kind::kTrace);
}

TEST(Protocol, OutcomeCarriesTimingsBreakdown) {
  BindOutcome outcome;
  outcome.id = "t";
  outcome.status = BindStatus::kOk;
  outcome.queue_ms = 0.25;
  outcome.run_ms = 3.5;
  outcome.eval_stats.eval_ms = 2.0;
  outcome.eval_stats.candidates = 11;
  const JsonValue doc = outcome_to_json(outcome);
  const JsonValue* timings = doc.find("timings");
  ASSERT_NE(timings, nullptr);
  EXPECT_DOUBLE_EQ(timings->find("queue_ms")->as_number(), 0.25);
  EXPECT_DOUBLE_EQ(timings->find("run_ms")->as_number(), 3.5);
  EXPECT_DOUBLE_EQ(timings->find("eval_ms")->as_number(), 2.0);
  EXPECT_EQ(timings->find("eval_candidates")->as_number(), 11.0);
}

TEST(ServeCli, TraceCommandWithoutTracingIsStructuredError) {
  std::istringstream in(
      "{\"cmd\":\"trace\"}\n"
      "{\"cmd\":\"quit\"}\n");
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(run_serve_cli({"--workers", "1"}, in, out, err), 0);
  const std::vector<JsonValue> responses = parse_response_lines(out.str());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].find("status")->as_string(), "invalid_request");
  EXPECT_NE(responses[0].find("error")->as_string().find("--trace"),
            std::string::npos);
}

TEST(ServeCli, TraceCommandReturnsChromeTraceLine) {
  std::istringstream in(
      "{\"cmd\":\"trace\"}\n"
      "{\"cmd\":\"quit\"}\n");
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(run_serve_cli({"--workers", "1", "--trace"}, in, out, err), 0);
  const std::vector<JsonValue> responses = parse_response_lines(out.str());
  ASSERT_EQ(responses.size(), 1u);
  // A valid (possibly empty) Chrome trace document on one line.
  EXPECT_NE(responses[0].find("traceEvents"), nullptr);
  EXPECT_NE(responses[0].find("displayTimeUnit"), nullptr);
}

TEST(ServeCli, ExitExportsTraceAndPrometheusMetrics) {
  const std::string trace_path = testing::TempDir() + "cvb_serve_trace.json";
  const std::string metrics_path =
      testing::TempDir() + "cvb_serve_metrics.prom";
  std::istringstream in(
      R"({"id":"a","kernel":"ARF","datapath":"[1,1|1,1]","effort":"balanced"})"
      "\n"
      R"({"cmd":"quit"})"
      "\n");
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(run_serve_cli({"--workers", "1", "--trace-out", trace_path,
                           "--metrics-text", metrics_path},
                          in, out, err),
            0)
      << err.str();

  // The job response carries the per-request timing breakdown.
  const std::vector<JsonValue> responses = parse_response_lines(out.str());
  const JsonValue* a = response_for(responses, "a");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(a->find("timings"), nullptr);
  EXPECT_GT(a->find("timings")->find("eval_candidates")->as_number(), 0.0);

  // The exit trace holds the service-layer spans around the request.
  std::ifstream trace_file(trace_path);
  ASSERT_TRUE(trace_file.good());
  std::stringstream trace_text;
  trace_text << trace_file.rdbuf();
  const JsonValue trace = JsonValue::parse(trace_text.str());
  std::vector<std::string> names;
  for (const JsonValue& event : trace.find("traceEvents")->as_array()) {
    names.push_back(event.find("name")->as_string());
  }
  for (const char* expected :
       {"service.admit", "service.job", "service.attempt", "bind.request"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }

  // The Prometheus export has typed counters and histogram series.
  std::ifstream metrics_file(metrics_path);
  ASSERT_TRUE(metrics_file.good());
  std::stringstream metrics_text;
  metrics_text << metrics_file.rdbuf();
  const std::string text = metrics_text.str();
  EXPECT_NE(text.find("# TYPE cvb_jobs_completed counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cvb_jobs_completed 1"), std::string::npos) << text;
  EXPECT_NE(text.find("cvb_run_ms_bucket{le=\"+Inf\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cvb_run_ms_count 1"), std::string::npos) << text;
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(ServeCli, HelpAndBadFlags) {
  std::istringstream in;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_serve_cli({"--help"}, in, out, err), 0);
  EXPECT_NE(out.str().find("usage: cvserve"), std::string::npos);
  EXPECT_EQ(run_serve_cli({"--bogus"}, in, out, err), 1);
  EXPECT_EQ(run_serve_cli({"--workers", "0"}, in, out, err), 1);
  EXPECT_EQ(run_serve_cli({"--overflow", "maybe"}, in, out, err), 1);
}

#ifdef CVB_TEST_UNIX_SOCKETS

TEST(ServeCli, SocketRoundTrip) {
  const std::string path = testing::TempDir() + "cvb_serve_test.sock";
  std::istringstream unused_in;
  std::ostringstream unused_out;
  std::ostringstream err;
  std::thread server([&] {
    (void)run_serve_cli({"--socket", path, "--once", "--workers", "1"},
                        unused_in, unused_out, err);
  });

  // Connect (retrying until the listener is bound), send two requests,
  // read responses until the server closes the connection after quit.
  int fd = -1;
  for (int attempt = 0; attempt < 200; ++attempt) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size(), sizeof addr.sun_path);
    path.copy(addr.sun_path, path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      break;
    }
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(fd, 0) << "could not connect to " << path;

  const std::string request =
      R"({"id":"sock","kernel":"ARF","datapath":"[1,1|1,1]","effort":"fast"})"
      "\n"
      R"({"cmd":"quit"})"
      "\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));

  std::string reply;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();

  const std::vector<JsonValue> responses = parse_response_lines(reply);
  const JsonValue* sock = response_for(responses, "sock");
  ASSERT_NE(sock, nullptr) << reply;
  EXPECT_EQ(sock->find("status")->as_string(), "ok");
}

#endif  // CVB_TEST_UNIX_SOCKETS

}  // namespace
}  // namespace cvb
