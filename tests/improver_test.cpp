// Unit tests for B-ITER: boundary perturbations, the Q_U then Q_M
// two-phase structure, plateau walking, and improvement guarantees.
#include <gtest/gtest.h>

#include "bind/bound_dfg.hpp"
#include "bind/iterative_improver.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/quality.hpp"

namespace cvb {
namespace {

QualityM scheduled_qm(const Dfg& g, const Datapath& dp, const Binding& b) {
  return compute_quality_m(list_schedule(build_bound_dfg(g, b, dp), dp));
}

TEST(Improver, FixesObviouslyBadBinding) {
  // A 6-op chain alternating between clusters: 5 transfers, terrible
  // latency. The improver must collapse it (chains belong on one
  // cluster).
  DfgBuilder bld;
  Value acc = bld.add(bld.input(), bld.input());
  for (int i = 0; i < 5; ++i) {
    acc = bld.add(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding bad = {0, 1, 0, 1, 0, 1};
  const QualityM before = scheduled_qm(g, dp, bad);

  const Binding improved = improve_binding(g, dp, bad);
  const QualityM after = scheduled_qm(g, dp, improved);
  EXPECT_LT(after.latency, before.latency);
  EXPECT_EQ(after.latency, 6);
  EXPECT_EQ(after.num_moves, 0);
}

TEST(Improver, NeverWorsensLatency) {
  DfgBuilder bld;
  for (int c = 0; c < 3; ++c) {
    Value acc = bld.mul(bld.input(), bld.input());
    for (int i = 0; i < 3; ++i) {
      acc = bld.add(acc, bld.input());
    }
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1|1,1]");
  const Binding start(static_cast<std::size_t>(g.num_ops()), 0);
  const QualityM before = scheduled_qm(g, dp, start);
  const QualityM after = scheduled_qm(g, dp, improve_binding(g, dp, start));
  EXPECT_LE(after.latency, before.latency);
}

TEST(Improver, QmPhaseRemovesUselessTransfers) {
  // Start with one op gratuitously placed remotely; the Q_M phase must
  // pull it back (same latency, fewer moves).
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  const Value y = bld.add(x, bld.input());
  (void)bld.add(y, bld.input());
  (void)bld.add(bld.input(), bld.input());  // filler op
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,1|2,1]");
  const Binding start = {0, 1, 0, 0};  // y marooned on cluster 1

  IterImproverParams params;
  const Binding improved = improve_binding(g, dp, start, params);
  const QualityM before = scheduled_qm(g, dp, start);
  const QualityM after = scheduled_qm(g, dp, improved);
  EXPECT_LE(after.latency, before.latency);
  EXPECT_LT(after.num_moves, before.num_moves);
}

TEST(Improver, RespectsTargetSets) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  (void)bld.mul(x, bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,0|1,1]");  // muls only on cluster 1
  const Binding improved = improve_binding(g, dp, {0, 1});
  EXPECT_EQ(check_binding(g, improved, dp), "");
  EXPECT_EQ(improved[1], 1);
}

TEST(Improver, RejectsInvalidStart) {
  DfgBuilder bld;
  (void)bld.add(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1]");
  EXPECT_THROW((void)improve_binding(g, dp, {7}), std::logic_error);
}

TEST(Improver, StatsAreRecorded) {
  DfgBuilder bld;
  Value acc = bld.add(bld.input(), bld.input());
  for (int i = 0; i < 5; ++i) {
    acc = bld.add(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  IterImproverStats stats;
  (void)improve_binding(g, dp, {0, 1, 0, 1, 0, 1}, {}, &stats);
  EXPECT_GT(stats.candidates_evaluated, 0);
  EXPECT_GT(stats.qu_iterations + stats.qm_iterations, 0);
}

TEST(Improver, EscapesAllOnOneClusterDegenerateStart) {
  // The fallback perturbation set must let the improver carve a
  // partition out of a boundary-free binding when that pays off.
  DfgBuilder bld;
  for (int c = 0; c < 2; ++c) {
    Value acc = bld.add(bld.input(), bld.input());
    for (int i = 0; i < 4; ++i) {
      acc = bld.add(acc, bld.input());
    }
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding start(static_cast<std::size_t>(g.num_ops()), 0);
  const QualityM before = scheduled_qm(g, dp, start);
  ASSERT_EQ(before.latency, 10);  // two chains serialized on one ALU
  const QualityM after = scheduled_qm(g, dp, improve_binding(g, dp, start));
  EXPECT_EQ(after.latency, 5);  // chains split across clusters
}

TEST(Improver, DisabledPhasesAreNoOps) {
  DfgBuilder bld;
  Value acc = bld.add(bld.input(), bld.input());
  for (int i = 0; i < 5; ++i) {
    acc = bld.add(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  IterImproverParams off;
  off.use_qu_phase = false;
  off.use_qm_phase = false;
  const Binding start = {0, 1, 0, 1, 0, 1};
  EXPECT_EQ(improve_binding(g, dp, start, off), start);
}

TEST(Improver, PlateauWalkingFindsHiddenImprovement) {
  // With plateau steps disabled, compare against the footnote-4 variant
  // on a graph where the simple climb is likelier to stall; the
  // powerful variant must never be worse.
  DfgBuilder bld;
  std::vector<Value> heads;
  for (int c = 0; c < 4; ++c) {
    Value acc = bld.mul(bld.input(), bld.input());
    acc = bld.add(acc, bld.input());
    acc = bld.add(acc, bld.input());
    heads.push_back(acc);
  }
  const Value j1 = bld.add(heads[0], heads[1]);
  const Value j2 = bld.add(heads[2], heads[3]);
  (void)bld.add(j1, j2);
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding start(static_cast<std::size_t>(g.num_ops()), 0);

  IterImproverParams simple;
  simple.max_plateau_steps = 0;
  IterImproverParams powerful;
  powerful.max_plateau_steps = 16;

  const QualityM q_simple =
      scheduled_qm(g, dp, improve_binding(g, dp, start, simple));
  const QualityM q_powerful =
      scheduled_qm(g, dp, improve_binding(g, dp, start, powerful));
  EXPECT_LE(q_powerful.latency, q_simple.latency);
}

TEST(Improver, PairPerturbationsHelpOnSwapLockedBindings) {
  // Producer/consumer marooned on opposite clusters in a way where
  // single moves are quality-neutral but the pair swap wins. At minimum
  // the result must never be worse with pairs enabled.
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input());
  const Value b = bld.mul(a, bld.input());
  const Value c = bld.add(b, bld.input());
  (void)bld.mul(c, bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding start = {1, 0, 1, 0};

  IterImproverParams singles_only;
  singles_only.enable_pairs = false;
  const QualityM q_single =
      scheduled_qm(g, dp, improve_binding(g, dp, start, singles_only));
  const QualityM q_pairs = scheduled_qm(g, dp, improve_binding(g, dp, start));
  EXPECT_LE(q_pairs, q_single);
}

}  // namespace
}  // namespace cvb
