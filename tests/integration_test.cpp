// End-to-end pipeline tests: kernel -> binder -> bound DFG -> schedule,
// with every schedule independently verified and the three algorithms
// (PCC, B-INIT, B-ITER) compared the way the paper's Table 1 does.
#include <gtest/gtest.h>

#include "bind/driver.hpp"
#include "graph/analysis.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

struct PipelineCase {
  std::string kernel;
  std::string datapath;
};

std::ostream& operator<<(std::ostream& out, const PipelineCase& c) {
  return out << c.kernel << " on " << c.datapath;
}

class PipelineEndToEnd : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEndToEnd, FullAlgorithmProducesVerifiedSchedule) {
  const Dfg dfg = benchmark_by_name(GetParam().kernel).dfg;
  const Datapath dp = parse_datapath(GetParam().datapath);

  const BindResult result = bind_full(dfg, dp);
  EXPECT_TRUE(check_binding(dfg, result.binding, dp).empty());
  EXPECT_EQ(verify_schedule(result.bound, dp, result.schedule), "");
  // Binding can never beat the dependence-limited bound.
  EXPECT_GE(result.schedule.latency,
            critical_path_length(dfg, dp.latencies()));
}

TEST_P(PipelineEndToEnd, IterNeverLosesToInit) {
  const Dfg dfg = benchmark_by_name(GetParam().kernel).dfg;
  const Datapath dp = parse_datapath(GetParam().datapath);

  const BindResult init = bind_initial_best(dfg, dp);
  const BindResult full = bind_full(dfg, dp);
  EXPECT_LE(full.schedule.latency, init.schedule.latency);
}

TEST_P(PipelineEndToEnd, PccProducesVerifiedSchedule) {
  const Dfg dfg = benchmark_by_name(GetParam().kernel).dfg;
  const Datapath dp = parse_datapath(GetParam().datapath);

  const BindResult result = pcc_binding(dfg, dp);
  EXPECT_TRUE(check_binding(dfg, result.binding, dp).empty());
  EXPECT_EQ(verify_schedule(result.bound, dp, result.schedule), "");
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, PipelineEndToEnd,
    ::testing::Values(PipelineCase{"EWF", "[1,1|1,1]"},
                      PipelineCase{"ARF", "[1,1|1,1]"},
                      PipelineCase{"FFT", "[2,1|2,1]"},
                      PipelineCase{"DCT-DIF", "[2,1|1,1]"},
                      PipelineCase{"DCT-LEE", "[2,2|2,1]"},
                      PipelineCase{"DCT-DIT", "[1,1|1,1|1,1]"}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      std::string name = info.param.kernel;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_" + std::to_string(info.index);
    });

TEST(PipelineSingleCluster, NoMovesOnSingleCluster) {
  const Dfg dfg = make_arf();
  const Datapath dp = parse_datapath("[2,2]");
  const BindResult result = bind_full(dfg, dp);
  EXPECT_EQ(result.schedule.num_moves, 0);
  EXPECT_EQ(verify_schedule(result.bound, dp, result.schedule), "");
}

}  // namespace
}  // namespace cvb
