// Tests for the consistent-hash router: ring placement properties,
// routing-key normalization, and the full router-in-front-of-workers
// topology including dead-worker degradation.
#include "net/router.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"

#if defined(__linux__)
#define CVB_TEST_ROUTER_E2E 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "net/server.hpp"
#include "service/service.hpp"
#endif

namespace cvb::net {
namespace {

TEST(HashRing, CoversAllWorkersAndIsDeterministic) {
  const std::vector<std::string> workers = {"/tmp/w0", "/tmp/w1", "/tmp/w2"};
  const HashRing ring(workers, 64);
  EXPECT_EQ(ring.num_workers(), 3u);
  std::vector<int> hits(workers.size(), 0);
  for (std::uint64_t key = 0; key < 10000; ++key) {
    const int w = ring.pick(key * 0x9E3779B97F4A7C15ULL, {});
    ASSERT_GE(w, 0);
    ASSERT_LT(w, static_cast<int>(workers.size()));
    ++hits[static_cast<std::size_t>(w)];
    // Same key, same verdict.
    EXPECT_EQ(ring.pick(key * 0x9E3779B97F4A7C15ULL, {}), w);
  }
  // With 64 vnodes each worker owns a non-trivial share (no worker
  // starved below a tenth of its fair share).
  for (const int h : hits) {
    EXPECT_GT(h, 10000 / 30) << "skewed ring: " << hits[0] << "/" << hits[1]
                             << "/" << hits[2];
  }
}

TEST(HashRing, RemovingWorkerOnlyRemapsItsKeys) {
  const std::vector<std::string> workers = {"/tmp/w0", "/tmp/w1", "/tmp/w2"};
  const HashRing ring(workers, 64);
  std::vector<bool> healthy = {true, true, true};
  std::vector<bool> w1_down = {true, false, true};
  int moved = 0;
  for (std::uint64_t key = 0; key < 5000; ++key) {
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ULL + 1;
    const int before = ring.pick(h, healthy);
    const int after = ring.pick(h, w1_down);
    EXPECT_NE(after, 1);
    if (before != 1) {
      // The consistent-hashing property: keys on surviving workers do
      // not move when another worker drops out.
      EXPECT_EQ(after, before);
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);  // worker 1 owned something
}

TEST(HashRing, FailsOpenWhenAllUnhealthy) {
  const HashRing ring({"/tmp/w0", "/tmp/w1"}, 16);
  const std::vector<bool> all_down = {false, false};
  const int w = ring.pick(42, all_down);
  EXPECT_GE(w, 0);
  // Fail-open must agree with the no-health-info verdict.
  EXPECT_EQ(w, ring.pick(42, {}));
}

TEST(HashRing, EmptyRingReturnsNoWorker) {
  const HashRing ring({}, 16);
  EXPECT_EQ(ring.pick(42, {}), -1);
}

TEST(RouteKey, DefaultsNormalizeToSameKey) {
  // Explicit protocol defaults must land on the same worker as the
  // terse form, or cache affinity silently halves.
  const std::uint64_t terse = request_route_key(R"({"kernel":"EWF"})");
  const std::uint64_t expanded = request_route_key(
      R"({"id":"x","kernel":"EWF","datapath":"[1,1|1,1]","buses":2,)"
      R"("move_latency":1,"effort":"fast"})");
  EXPECT_EQ(terse, expanded);
  EXPECT_NE(terse, 0u);
}

TEST(RouteKey, DistinguishesWorkloads) {
  const std::uint64_t ewf = request_route_key(R"({"kernel":"EWF"})");
  const std::uint64_t arf = request_route_key(R"({"kernel":"ARF"})");
  const std::uint64_t ewf_wide =
      request_route_key(R"({"kernel":"EWF","datapath":"[2,2|2,1]"})");
  const std::uint64_t ewf_bus =
      request_route_key(R"({"kernel":"EWF","buses":1})");
  const std::set<std::uint64_t> keys = {ewf, arf, ewf_wide, ewf_bus};
  EXPECT_EQ(keys.size(), 4u) << "route keys collide";
}

TEST(RouteKey, ControlAndGarbageAreStable) {
  EXPECT_EQ(request_route_key(R"({"cmd":"metrics"})"), 0u);
  EXPECT_EQ(request_route_key("not json at all"), 0u);
  EXPECT_EQ(request_route_key(""), 0u);
}

TEST(RouteKey, ControlFlagIsExplicitNotKeyZero) {
  // The hedge exclusion rides on an explicit flag, not on the key-0
  // sentinel: a legitimate job hash colliding with 0 must still hedge.
  EXPECT_TRUE(request_route_info(R"({"cmd":"snapshot"})").is_control);
  EXPECT_TRUE(request_route_info("not json at all").is_control);
  EXPECT_TRUE(request_route_info("").is_control);
  const RouteInfo job = request_route_info(R"({"kernel":"EWF"})");
  EXPECT_FALSE(job.is_control);
  EXPECT_EQ(job.key, request_route_key(R"({"kernel":"EWF"})"));
}

#if defined(CVB_TEST_ROUTER_E2E)

int connect_unix_retry(const std::string& path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return -1;
    }
    path.copy(addr.sun_path, path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(Router, RoutesAcrossTwoWorkers) {
  const std::string w0_path = testing::TempDir() + "cvb_rt_w0.sock";
  const std::string w1_path = testing::TempDir() + "cvb_rt_w1.sock";
  const std::string front = testing::TempDir() + "cvb_rt_front.sock";

  ServiceOptions sopts;
  sopts.num_workers = 1;
  Service s0(sopts);
  Service s1(sopts);
  NetServerOptions n0;
  n0.socket_path = w0_path;
  NetServerOptions n1;
  n1.socket_path = w1_path;
  NetServer worker0(s0, n0);
  NetServer worker1(s1, n1);
  std::ostringstream err0;
  std::ostringstream err1;
  std::thread t0([&] { (void)worker0.run(err0); });
  std::thread t1([&] { (void)worker1.run(err1); });
  ASSERT_TRUE(worker0.wait_until_listening()) << err0.str();
  ASSERT_TRUE(worker1.wait_until_listening()) << err1.str();

  RouterOptions ropts;
  ropts.listen_path = front;
  ropts.workers = {w0_path, w1_path};
  Router router(ropts);
  std::ostringstream rerr;
  std::thread rt([&] { (void)router.run(rerr); });
  ASSERT_TRUE(router.wait_until_listening()) << rerr.str();

  const int fd = connect_unix_retry(front);
  ASSERT_GE(fd, 0);
  // A spread of workloads so both ring halves are likely exercised,
  // plus an invalid request whose error must pass through verbatim.
  std::string request;
  const char* kernels[] = {"EWF", "ARF", "FFT", "DCT-DIF", "DCT-LEE"};
  for (int i = 0; i < 5; ++i) {
    request += R"({"id":"r)" + std::to_string(i) + R"(","kernel":")" +
               kernels[i] + R"(","datapath":"[1,1|1,1]","effort":"fast"})" "\n";
  }
  request += R"({"id":"bad","kernel":"NOPE"})" "\n";
  request += "{\"cmd\":\"quit\"}\n";
  ASSERT_TRUE(send_all(fd, request));
  const std::string reply = read_to_eof(fd);
  ::close(fd);

  int ok = 0;
  bool saw_bad = false;
  std::istringstream lines(reply);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) {
      continue;
    }
    const JsonValue response = JsonValue::parse(line);
    const std::string id = response.find("id")->as_string();
    if (id == "bad") {
      saw_bad = true;
      EXPECT_EQ(response.find("status")->as_string(), "invalid_request");
    } else if (response.find("status")->as_string() == "ok") {
      ++ok;
    }
  }
  EXPECT_EQ(ok, 5) << reply;
  EXPECT_TRUE(saw_bad) << reply;

  router.request_shutdown();
  rt.join();
  worker0.request_shutdown();
  worker1.request_shutdown();
  t0.join();
  t1.join();
  // Both workers saw traffic through their binary upstreams… or at
  // least one did; with 5 distinct workloads on a 2-worker ring a
  // totally one-sided split is possible but the total must add up.
  const long long jobs0 = s0.metrics().counter("net_frames_in").value();
  const long long jobs1 = s1.metrics().counter("net_frames_in").value();
  EXPECT_GE(jobs0 + jobs1, 6);
}

TEST(Router, SameWorkloadSticksToOneWorker) {
  const std::string w0_path = testing::TempDir() + "cvb_rs_w0.sock";
  const std::string w1_path = testing::TempDir() + "cvb_rs_w1.sock";
  const std::string front = testing::TempDir() + "cvb_rs_front.sock";

  ServiceOptions sopts;
  sopts.num_workers = 1;
  Service s0(sopts);
  Service s1(sopts);
  NetServerOptions n0;
  n0.socket_path = w0_path;
  NetServerOptions n1;
  n1.socket_path = w1_path;
  NetServer worker0(s0, n0);
  NetServer worker1(s1, n1);
  std::ostringstream err0;
  std::ostringstream err1;
  std::thread t0([&] { (void)worker0.run(err0); });
  std::thread t1([&] { (void)worker1.run(err1); });
  ASSERT_TRUE(worker0.wait_until_listening()) << err0.str();
  ASSERT_TRUE(worker1.wait_until_listening()) << err1.str();

  RouterOptions ropts;
  ropts.listen_path = front;
  ropts.workers = {w0_path, w1_path};
  Router router(ropts);
  std::ostringstream rerr;
  std::thread rt([&] { (void)router.run(rerr); });
  ASSERT_TRUE(router.wait_until_listening()) << rerr.str();

  // The same DFG+machine workload, repeatedly: cache affinity demands
  // it all lands on one worker.
  const int fd = connect_unix_retry(front);
  ASSERT_GE(fd, 0);
  std::string request;
  for (int i = 0; i < 6; ++i) {
    request += R"({"id":"s)" + std::to_string(i) +
               R"(","kernel":"EWF","datapath":"[2,1|1,1]","effort":"fast"})"
               "\n";
  }
  request += "{\"cmd\":\"quit\"}\n";
  ASSERT_TRUE(send_all(fd, request));
  const std::string reply = read_to_eof(fd);
  ::close(fd);
  int ok = 0;
  std::istringstream lines(reply);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() &&
        JsonValue::parse(line).find("status")->as_string() == "ok") {
      ++ok;
    }
  }
  EXPECT_EQ(ok, 6) << reply;

  router.request_shutdown();
  rt.join();
  worker0.request_shutdown();
  worker1.request_shutdown();
  t0.join();
  t1.join();
  const long long jobs0 = s0.metrics().counter("net_responses_out").value();
  const long long jobs1 = s1.metrics().counter("net_responses_out").value();
  EXPECT_TRUE(jobs0 == 0 || jobs1 == 0)
      << "one workload split across workers: " << jobs0 << "/" << jobs1;
  EXPECT_EQ(jobs0 + jobs1, 6);
}

TEST(Router, DeadWorkerYieldsTypedTransientError) {
  const std::string front = testing::TempDir() + "cvb_rd_front.sock";
  RouterOptions ropts;
  ropts.listen_path = front;
  // Nothing listens here: every route attempt fails after bounded
  // retries and must surface as a typed transient error, not silence.
  ropts.workers = {testing::TempDir() + "cvb_rd_nobody.sock"};
  ropts.max_connect_attempts = 2;
  ropts.health_interval_ms = 50.0;
  Router router(ropts);
  std::ostringstream rerr;
  std::thread rt([&] { (void)router.run(rerr); });
  ASSERT_TRUE(router.wait_until_listening()) << rerr.str();

  const int fd = connect_unix_retry(front);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(
      fd, R"({"id":"doomed","kernel":"EWF","effort":"fast"})" "\n"
          "{\"cmd\":\"quit\"}\n"));
  const std::string reply = read_to_eof(fd);
  ::close(fd);
  router.request_shutdown();
  rt.join();

  const JsonValue response = JsonValue::parse(reply);
  EXPECT_EQ(response.find("id")->as_string(), "doomed");
  EXPECT_EQ(response.find("status")->as_string(), "invalid_request");
  const JsonValue* fault = response.find("fault_class");
  ASSERT_NE(fault, nullptr) << reply;
  EXPECT_EQ(fault->as_string(), "transient");
}

// Reads one newline-terminated line (blocking) from fd.
std::string read_line(int fd) {
  std::string out;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') {
      break;
    }
    out.push_back(c);
  }
  return out;
}

bool wait_counter_at_least(MetricsRegistry& metrics, const std::string& name,
                           long long target, int timeout_ms = 10000) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    if (metrics.counter(name).value() >= target) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return metrics.counter(name).value() >= target;
}

TEST(Router, KillAndRestartReentersViaHalfOpenProbe) {
  const std::string w0_path = testing::TempDir() + "cvb_rk_w0.sock";
  const std::string w1_path = testing::TempDir() + "cvb_rk_w1.sock";
  const std::string front = testing::TempDir() + "cvb_rk_front.sock";

  ServiceOptions sopts;
  sopts.num_workers = 1;
  Service s0(sopts);
  Service s1(sopts);
  NetServerOptions n0;
  n0.socket_path = w0_path;
  NetServerOptions n1;
  n1.socket_path = w1_path;
  NetServer worker0(s0, n0);
  std::ostringstream err0;
  std::thread t0([&] { (void)worker0.run(err0); });
  ASSERT_TRUE(worker0.wait_until_listening()) << err0.str();
  auto worker1 = std::make_unique<NetServer>(s1, n1);
  std::ostringstream err1;
  std::thread t1([&] { (void)worker1->run(err1); });
  ASSERT_TRUE(worker1->wait_until_listening()) << err1.str();

  MetricsRegistry metrics;
  RouterOptions ropts;
  ropts.listen_path = front;
  ropts.workers = {w0_path, w1_path};
  ropts.health_interval_ms = 25.0;
  ropts.health_timeout_ms = 250.0;
  ropts.max_connect_attempts = 2;
  ropts.backoff_base_ms = 0.5;
  ropts.backoff_cap_ms = 2.0;
  ropts.metrics = &metrics;
  Router router(ropts);
  std::ostringstream rerr;
  std::thread rt([&] { (void)router.run(rerr); });
  ASSERT_TRUE(router.wait_until_listening()) << rerr.str();

  // Kill worker 1 outright: the kPing prober must trip its breaker.
  worker1->request_shutdown();
  t1.join();
  worker1.reset();
  ASSERT_TRUE(wait_counter_at_least(metrics, "net_breaker_open_total", 1))
      << "prober never tripped the dead worker's breaker";

  // Restart on the same socket path: a clean probe must walk the
  // breaker open -> half-open and further probes close it — recovery
  // re-enters the ring without any client traffic at all.
  worker1 = std::make_unique<NetServer>(s1, n1);
  std::ostringstream err1b;
  t1 = std::thread([&] { (void)worker1->run(err1b); });
  ASSERT_TRUE(worker1->wait_until_listening()) << err1b.str();
  ASSERT_TRUE(wait_counter_at_least(metrics, "net_breaker_half_open_total", 1));
  ASSERT_TRUE(wait_counter_at_least(metrics, "net_breaker_close_total", 1))
      << "recovered worker never closed its breaker";

  // The fleet serves normally again.
  const int fd = connect_unix_retry(front);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(
      fd, R"({"id":"back","kernel":"EWF","datapath":"[2,1|1,1]",)"
          R"("effort":"fast"})" "\n"));
  const JsonValue response = JsonValue::parse(read_line(fd));
  EXPECT_EQ(response.find("status")->as_string(), "ok");
  ASSERT_TRUE(send_all(fd, "{\"cmd\":\"quit\"}\n"));
  (void)read_to_eof(fd);
  ::close(fd);

  router.request_shutdown();
  rt.join();
  worker0.request_shutdown();
  t0.join();
  worker1->request_shutdown();
  t1.join();
}

TEST(Router, HedgeRescuesSlowWorkerAndDedups) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "needs -DCVB_FAULT_INJECTION=ON";
  }
  ScopedFaultInjection scoped(0x5e1fULL);
  // The first (and only the first) job to reach either worker's
  // service hangs for 400 ms — far past the hedge budget.
  FaultSpec hang;
  hang.rate = 1.0;
  hang.hang_ms = 400.0;
  hang.cooperative = true;
  hang.max_triggers = 1;
  FaultInjector::global().arm("service.hang", hang);

  const std::string w0_path = testing::TempDir() + "cvb_rh_w0.sock";
  const std::string w1_path = testing::TempDir() + "cvb_rh_w1.sock";
  const std::string front = testing::TempDir() + "cvb_rh_front.sock";
  ServiceOptions sopts;
  sopts.num_workers = 1;
  Service s0(sopts);
  Service s1(sopts);
  NetServerOptions n0;
  n0.socket_path = w0_path;
  NetServerOptions n1;
  n1.socket_path = w1_path;
  NetServer worker0(s0, n0);
  NetServer worker1(s1, n1);
  std::ostringstream err0;
  std::ostringstream err1;
  std::thread t0([&] { (void)worker0.run(err0); });
  std::thread t1([&] { (void)worker1.run(err1); });
  ASSERT_TRUE(worker0.wait_until_listening()) << err0.str();
  ASSERT_TRUE(worker1.wait_until_listening()) << err1.str();

  MetricsRegistry metrics;
  RouterOptions ropts;
  ropts.listen_path = front;
  ropts.workers = {w0_path, w1_path};
  ropts.hedge_budget_ms = 25.0;
  ropts.metrics = &metrics;
  Router router(ropts);
  std::ostringstream rerr;
  std::thread rt([&] { (void)router.run(rerr); });
  ASSERT_TRUE(router.wait_until_listening()) << rerr.str();

  const int fd = connect_unix_retry(front);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(
      fd, R"({"id":"slow","kernel":"EWF","datapath":"[2,1|1,1]",)"
          R"("effort":"fast"})" "\n"));
  const JsonValue response = JsonValue::parse(read_line(fd));
  // The hedge to the healthy worker rescues the request well before
  // the hung primary wakes up — and the client sees exactly one
  // terminal response.
  EXPECT_EQ(response.find("id")->as_string(), "slow");
  EXPECT_EQ(response.find("status")->as_string(), "ok");
  EXPECT_GE(metrics.counter("net_hedge_fired_total").value(), 1);
  // When the hung worker finally answers, the session ledger must
  // discard the duplicate.
  EXPECT_TRUE(
      wait_counter_at_least(metrics, "net_hedge_dedup_dropped_total", 1))
      << "late duplicate was never deduplicated";
  ASSERT_TRUE(send_all(fd, "{\"cmd\":\"quit\"}\n"));
  (void)read_to_eof(fd);
  ::close(fd);

  router.request_shutdown();
  rt.join();
  worker0.request_shutdown();
  worker1.request_shutdown();
  t0.join();
  t1.join();
}

#endif  // CVB_TEST_ROUTER_E2E

}  // namespace
}  // namespace cvb::net
