// Regression tests for the two-level schedule cache: LRU ordering
// (refresh on replace, touch on hit), the keep-resident collision
// policy, dedup-vs-hit accounting, shard aggregation, and L1/L2
// consistency when faults are injected at the cache sites.
//
// The LRU/collision tests drive the L2 directly through the
// test_cache_insert/test_cache_lookup hooks: that makes eviction order
// deterministic (no hashing in the way) and lets a test force two
// distinct bindings onto one key, which real FNV-1a keys won't do on
// demand.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bind/eval_engine.hpp"
#include "bind/initial_binder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/fault.hpp"

namespace cvb {
namespace {

constexpr std::uint64_t kSig = 0x5157'0000'0000'0042ULL;

EvalResult make_result(int latency) {
  EvalResult r;
  r.latency = latency;
  r.num_moves = latency + 1;
  r.tail_counts.assign(static_cast<std::size_t>(latency), 1);
  return r;
}

/// Keys whose upper-32 shard bits are distinct, so the single-shard
/// tests stay meaningful if re-run with more shards.
std::uint64_t key(int i) { return 0x1000ULL + static_cast<std::uint64_t>(i); }

EvalEngine make_small_cache(std::size_t capacity) {
  EvalEngineOptions opts;
  opts.cache_capacity = capacity;
  opts.cache_shards = 1;  // one LRU ring: eviction order is global
  return EvalEngine(opts);
}

TEST(EvalEngineCache, ReplaceRefreshesLruPosition) {
  EvalEngine engine = make_small_cache(2);
  const Binding a{0};
  const Binding b{1};
  const Binding c{2};
  engine.test_cache_insert(key(1), kSig, a, make_result(1));
  engine.test_cache_insert(key(2), kSig, b, make_result(2));
  // Re-insert key 1 (same binding): the replace path must move it to
  // most-recently-used. Before the fix it kept its stale position and
  // was evicted next, despite being the most recently written entry.
  engine.test_cache_insert(key(1), kSig, a, make_result(3));
  engine.test_cache_insert(key(3), kSig, c, make_result(4));  // evicts one

  EvalResult out;
  EXPECT_TRUE(engine.test_cache_lookup(key(1), kSig, a, &out));
  EXPECT_EQ(out.latency, 3);  // replace also refreshed the stored result
  EXPECT_FALSE(engine.test_cache_lookup(key(2), kSig, b, &out))
      << "key 2 was the least recently used entry and must be the evictee";
  EXPECT_TRUE(engine.test_cache_lookup(key(3), kSig, c, &out));
  EXPECT_EQ(engine.stats().cache_evictions, 1);
}

TEST(EvalEngineCache, HitRefreshesLruPosition) {
  EvalEngine engine = make_small_cache(2);
  const Binding a{0};
  const Binding b{1};
  const Binding c{2};
  engine.test_cache_insert(key(1), kSig, a, make_result(1));
  engine.test_cache_insert(key(2), kSig, b, make_result(2));
  EvalResult out;
  ASSERT_TRUE(engine.test_cache_lookup(key(1), kSig, a, &out));  // touch 1
  engine.test_cache_insert(key(3), kSig, c, make_result(3));     // evicts 2

  EXPECT_TRUE(engine.test_cache_lookup(key(1), kSig, a, &out))
      << "the just-hit entry must not be the evictee";
  EXPECT_FALSE(engine.test_cache_lookup(key(2), kSig, b, &out));
  EXPECT_TRUE(engine.test_cache_lookup(key(3), kSig, c, &out));
}

TEST(EvalEngineCache, CollisionKeepsResidentEntry) {
  EvalEngine engine = make_small_cache(8);
  const Binding resident{0, 1};
  const Binding newcomer{1, 0};
  engine.test_cache_insert(key(7), kSig, resident, make_result(1));
  // Same key, different binding: before the fix this overwrote the
  // resident entry, silently dropping a result that lookups for
  // `resident` could still have served.
  engine.test_cache_insert(key(7), kSig, newcomer, make_result(2));

  EvalResult out;
  EXPECT_TRUE(engine.test_cache_lookup(key(7), kSig, resident, &out));
  EXPECT_EQ(out.latency, 1);
  EXPECT_FALSE(engine.test_cache_lookup(key(7), kSig, newcomer, &out))
      << "the colliding newcomer is dropped, not stored";
  EXPECT_EQ(engine.stats().cache_collisions, 1);
  EXPECT_EQ(engine.stats().cache_evictions, 0);
  EXPECT_EQ(engine.cache_size(), 1u);
}

TEST(EvalEngineCache, SignatureMismatchIsACollisionToo) {
  EvalEngine engine = make_small_cache(8);
  const Binding b{0};
  engine.test_cache_insert(key(9), kSig, b, make_result(1));
  engine.test_cache_insert(key(9), kSig + 1, b, make_result(2));
  EvalResult out;
  EXPECT_TRUE(engine.test_cache_lookup(key(9), kSig, b, &out));
  EXPECT_EQ(out.latency, 1);
  EXPECT_FALSE(engine.test_cache_lookup(key(9), kSig + 1, b, &out));
  EXPECT_EQ(engine.stats().cache_collisions, 1);
}

TEST(EvalEngineCache, DedupCountsSeparatelyFromHits) {
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding base = initial_binding(kernel.dfg, dp);
  Binding other = base;
  other[0] = 1 - other[0];

  EvalEngine engine;
  // Cold batch [X, X, Y]: X is computed once and shared intra-batch.
  const std::vector<EvalResult> first =
      engine.evaluate_batch(kernel.dfg, dp, {base, base, other});
  EXPECT_EQ(first[0], first[1]);
  EvalStats stats = engine.stats();
  EXPECT_EQ(stats.candidates, 3);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.batch_dedup, 1);
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_EQ(stats.candidates,
            stats.cache_hits + stats.batch_dedup + stats.cache_misses);

  // Warm identical batch: everything is served from the cache now, and
  // the repeated X counts as a hit (it IS served from the cache).
  const std::vector<EvalResult> second =
      engine.evaluate_batch(kernel.dfg, dp, {base, base, other});
  EXPECT_EQ(second, first);
  stats = engine.stats();
  EXPECT_EQ(stats.candidates, 6);
  EXPECT_EQ(stats.cache_hits, 3);
  EXPECT_EQ(stats.batch_dedup, 1);
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_LE(stats.l1_hits, stats.cache_hits);
  EXPECT_GT(stats.l1_hits, 0) << "the warm repeats should be L1-resident";
}

TEST(EvalEngineCache, ShardStatsAggregateConsistently) {
  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding base = initial_binding(kernel.dfg, dp);
  std::vector<Binding> batch;
  for (OpId v = 0; v < kernel.dfg.num_ops(); ++v) {
    Binding trial = base;
    trial[static_cast<std::size_t>(v)] = 1 - trial[static_cast<std::size_t>(v)];
    batch.push_back(std::move(trial));
  }

  EvalEngineOptions opts;
  opts.cache_shards = 5;  // rounds up to 8
  EvalEngine engine(opts);
  EXPECT_EQ(engine.num_shards(), 8);
  (void)engine.evaluate_batch(kernel.dfg, dp, batch);

  const std::vector<EvalShardStats> shards = engine.shard_stats();
  ASSERT_EQ(shards.size(), 8u);
  std::size_t total = 0;
  long long evictions = 0;
  for (const EvalShardStats& shard : shards) {
    total += shard.size;
    evictions += shard.evictions;
  }
  EXPECT_EQ(total, engine.cache_size());
  EXPECT_EQ(evictions, engine.stats().cache_evictions);
  EXPECT_EQ(engine.cache_size(),
            static_cast<std::size_t>(engine.stats().cache_misses));
}

// --- Fault injection at the cache sites: a fault that unwinds a batch
// mid-flight must leave both cache levels consistent — the next,
// un-faulted evaluation returns the uncached truth. ---

class EvalEngineCacheFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault_injection_compiled()) {
      GTEST_SKIP() << "build has -DCVB_FAULT_INJECTION=OFF";
    }
  }
};

TEST_F(EvalEngineCacheFaults, LookupFaultLeavesCacheConsistent) {
  ScopedFaultInjection scoped;
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding binding = initial_binding(kernel.dfg, dp);

  FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = FaultClass::kTransient;
  spec.max_triggers = 1;
  FaultInjector::global().arm("eval.cache_lookup", spec);

  EvalEngine engine;
  EXPECT_THROW((void)engine.evaluate(kernel.dfg, dp, binding),
               FaultInjectedError);
  // The faulted batch counted its candidate but neither hit nor missed
  // (it unwound before classification): candidates >= hits+dedup+misses.
  EvalStats stats = engine.stats();
  EXPECT_GE(stats.candidates,
            stats.cache_hits + stats.batch_dedup + stats.cache_misses);

  // Fault exhausted: the engine serves the correct result and the
  // books balance from here on.
  const EvalResult after = engine.evaluate(kernel.dfg, dp, binding);
  EXPECT_EQ(after, EvalEngine::evaluate_uncached(kernel.dfg, dp, binding));
  const EvalResult warm = engine.evaluate(kernel.dfg, dp, binding);
  EXPECT_EQ(warm, after);
  stats = engine.stats();
  EXPECT_GT(stats.cache_hits, 0);
}

TEST_F(EvalEngineCacheFaults, InsertFaultLeavesCacheConsistent) {
  ScopedFaultInjection scoped;
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding binding = initial_binding(kernel.dfg, dp);

  FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = FaultClass::kTransient;
  spec.max_triggers = 1;
  FaultInjector::global().arm("eval.cache_insert", spec);

  EvalEngine engine;
  // The batch computes the miss, then faults while publishing it: the
  // entry must not be half-inserted into either level.
  EXPECT_THROW((void)engine.evaluate(kernel.dfg, dp, binding),
               FaultInjectedError);
  EXPECT_EQ(engine.cache_size(), 0u);

  const EvalResult after = engine.evaluate(kernel.dfg, dp, binding);
  EXPECT_EQ(after, EvalEngine::evaluate_uncached(kernel.dfg, dp, binding));
  EXPECT_EQ(engine.cache_size(), 1u);
  const EvalResult warm = engine.evaluate(kernel.dfg, dp, binding);
  EXPECT_EQ(warm, after);
}

TEST_F(EvalEngineCacheFaults, DeltaBatchSurvivesCacheFaults) {
  ScopedFaultInjection scoped;
  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  const Datapath dp = parse_datapath("[2,1|1,2]");
  const Binding base = initial_binding(kernel.dfg, dp);
  std::vector<BindingDelta> deltas;
  for (OpId v = 0; v < kernel.dfg.num_ops(); ++v) {
    for (const ClusterId c : dp.target_set(kernel.dfg.type(v))) {
      if (c != base[static_cast<std::size_t>(v)]) {
        deltas.push_back({{v, c}});
      }
    }
  }

  FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = FaultClass::kTransient;
  spec.max_triggers = 2;  // one lookup fault, then one insert fault
  FaultInjector::global().arm("eval.cache_lookup", spec);
  FaultSpec insert_spec = spec;
  insert_spec.max_triggers = 1;
  FaultInjector::global().arm("eval.cache_insert", insert_spec);

  EvalEngine engine;
  EXPECT_THROW(
      (void)engine.evaluate_batch_delta(kernel.dfg, dp, base, deltas),
      FaultInjectedError);
  // Storms over: the full batch must now match the uncached truth and
  // leave L1/L2 agreeing with each other (re-run is all hits).
  std::vector<EvalResult> results;
  for (int attempt = 0; attempt < 4; ++attempt) {
    try {
      results = engine.evaluate_batch_delta(kernel.dfg, dp, base, deltas);
      break;
    } catch (const FaultInjectedError&) {
      continue;  // residual armed triggers
    }
  }
  ASSERT_EQ(results.size(), deltas.size());
  for (std::size_t i = 0; i < deltas.size(); i += 7) {
    Binding trial = base;
    for (const auto& [v, c] : deltas[i]) {
      trial[static_cast<std::size_t>(v)] = c;
    }
    EXPECT_EQ(results[i], EvalEngine::evaluate_uncached(kernel.dfg, dp, trial))
        << "delta index " << i;
  }
  const std::vector<EvalResult> warm =
      engine.evaluate_batch_delta(kernel.dfg, dp, base, deltas);
  EXPECT_EQ(warm, results);
  const EvalStats stats = engine.stats();
  EXPECT_GE(stats.candidates,
            stats.cache_hits + stats.batch_dedup + stats.cache_misses);
}

}  // namespace
}  // namespace cvb
