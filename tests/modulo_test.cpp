// Unit tests for the software-pipelining extension: cyclic graphs, MII
// bounds, the cluster-aware modulo scheduler, and its verifier.
#include <gtest/gtest.h>

#include "machine/parser.hpp"
#include "modulo/cyclic_dfg.hpp"
#include "modulo/loop_kernels.hpp"
#include "modulo/mii.hpp"
#include "modulo/modulo_scheduler.hpp"

namespace cvb {
namespace {

// ------------------------------------------------------------ CyclicDfg

TEST(CyclicDfg, BodyDropsCarriedEdges) {
  const CyclicDfg loop = make_dot_product_loop();
  const Dfg body = loop.body();
  EXPECT_EQ(body.num_ops(), 2);
  EXPECT_EQ(body.num_edges(), 1);  // only mul -> add
}

TEST(CyclicDfg, RejectsZeroDistanceSelfEdge) {
  CyclicDfg loop;
  const OpId v = loop.add_op(OpType::kAdd);
  EXPECT_THROW(loop.add_edge(v, v, 0), std::invalid_argument);
  EXPECT_NO_THROW(loop.add_edge(v, v, 1));
}

TEST(CyclicDfg, RejectsNegativeDistanceAndDuplicates) {
  CyclicDfg loop;
  const OpId a = loop.add_op(OpType::kAdd);
  const OpId b = loop.add_op(OpType::kAdd);
  EXPECT_THROW(loop.add_edge(a, b, -1), std::invalid_argument);
  loop.add_edge(a, b, 0);
  EXPECT_THROW(loop.add_edge(a, b, 0), std::invalid_argument);
  EXPECT_NO_THROW(loop.add_edge(a, b, 1));  // distinct distance is fine
}

TEST(CyclicDfg, ValidateRejectsZeroDistanceCycle) {
  CyclicDfg loop;
  const OpId a = loop.add_op(OpType::kAdd);
  const OpId b = loop.add_op(OpType::kAdd);
  loop.add_edge(a, b, 0);
  loop.add_edge(b, a, 0);
  EXPECT_THROW(loop.validate(), std::logic_error);
}

// ------------------------------------------------------------------ MII

TEST(Mii, ResourceBoundCountsFuTypes) {
  // 4 muls on a 1-mult datapath: ResMII 4; on 2 mults: 2.
  const CyclicDfg loop = make_complex_mac_loop();  // 4 muls, 4 adds
  EXPECT_EQ(resource_mii(loop, parse_datapath("[1,1]")), 4);
  EXPECT_EQ(resource_mii(loop, parse_datapath("[2,2]")), 2);
  EXPECT_EQ(resource_mii(loop, parse_datapath("[2,2|2,2]")), 1);
}

TEST(Mii, RecurrenceBoundFromSelfAccumulator) {
  // acc -> acc with distance 1, unit latency: RecMII 1.
  const CyclicDfg loop = make_dot_product_loop();
  EXPECT_EQ(recurrence_mii(loop, unit_latencies()), 1);
  // With a 3-cycle adder the recurrence forces II >= 3.
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kAdd)] = 3;
  EXPECT_EQ(recurrence_mii(loop, lat), 3);
}

TEST(Mii, RecurrenceBoundOnMultiOpCycle) {
  // Biquad: y -> a1y1 (dist 1) -> s2 -> y: cycle latency 3, distance 1.
  const CyclicDfg loop = make_iir_biquad_loop();
  EXPECT_EQ(recurrence_mii(loop, unit_latencies()), 3);
}

TEST(Mii, MinimumIiTakesTheMax) {
  const CyclicDfg loop = make_iir_biquad_loop();  // 5 muls, RecMII 3
  EXPECT_EQ(minimum_ii(loop, parse_datapath("[1,1]")), 5);   // ResMII wins
  EXPECT_EQ(minimum_ii(loop, parse_datapath("[2,2]")), 3);   // RecMII wins
}

// ------------------------------------------------------- modulo scheduler

TEST(ModuloScheduler, AchievesMiiOnSimpleLoops) {
  for (const auto& [name, loop] :
       {std::pair<std::string, CyclicDfg>{"dot", make_dot_product_loop()},
        {"cmac", make_complex_mac_loop()},
        {"lattice", make_lattice_stage_loop(2)}}) {
    const Datapath dp = parse_datapath("[2,2|2,2]");
    const ModuloResult r = software_pipeline(loop, dp);
    EXPECT_EQ(verify_modulo_schedule(r, dp), "") << name;
    EXPECT_GE(r.ii, r.mii) << name;
    EXPECT_LE(r.ii, r.mii + 1) << name;  // near-optimal pipelining
  }
}

TEST(ModuloScheduler, BiquadRecurrenceLimitsII) {
  const CyclicDfg loop = make_iir_biquad_loop();
  const Datapath dp = parse_datapath("[2,2|2,1]");
  const ModuloResult r = software_pipeline(loop, dp);
  EXPECT_EQ(verify_modulo_schedule(r, dp), "");
  EXPECT_GE(r.ii, 3);  // RecMII
  EXPECT_LE(r.ii, 4);
}

TEST(ModuloScheduler, CrossClusterDependencesGetMoves) {
  const CyclicDfg loop = make_complex_mac_loop();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  // Force a split binding: muls on cluster 0, adds on cluster 1.
  Binding binding;
  for (OpId v = 0; v < loop.num_ops(); ++v) {
    binding.push_back(fu_type_of(loop.type(v)) == FuType::kMult ? 0 : 1);
  }
  const ModuloResult r = modulo_schedule(loop, dp, binding);
  EXPECT_EQ(verify_modulo_schedule(r, dp), "");
  EXPECT_GT(r.num_moves, 0);
  EXPECT_EQ(r.kernel.num_ops(), loop.num_ops() + r.num_moves);
}

TEST(ModuloScheduler, MovesShareDestinationAndDistance) {
  // One producer read by two consumers on the same remote cluster at
  // the same distance: one move suffices.
  CyclicDfg loop;
  const OpId p = loop.add_op(OpType::kAdd, "p");
  const OpId c1 = loop.add_op(OpType::kAdd, "c1");
  const OpId c2 = loop.add_op(OpType::kAdd, "c2");
  loop.add_edge(p, c1, 0);
  loop.add_edge(p, c2, 0);
  const Datapath dp = parse_datapath("[1,1|2,1]");
  const ModuloResult r = modulo_schedule(loop, dp, {0, 1, 1});
  EXPECT_EQ(r.num_moves, 1);
  EXPECT_EQ(verify_modulo_schedule(r, dp), "");
}

TEST(ModuloScheduler, DistinctDistancesGetDistinctMoves) {
  CyclicDfg loop;
  const OpId p = loop.add_op(OpType::kAdd, "p");
  const OpId c1 = loop.add_op(OpType::kAdd, "c1");
  const OpId c2 = loop.add_op(OpType::kAdd, "c2");
  loop.add_edge(p, c1, 0);
  loop.add_edge(p, c2, 1);  // reads last iteration's value
  const Datapath dp = parse_datapath("[1,1|2,1]");
  const ModuloResult r = modulo_schedule(loop, dp, {0, 1, 1});
  EXPECT_EQ(r.num_moves, 2);
  EXPECT_EQ(verify_modulo_schedule(r, dp), "");
}

TEST(ModuloScheduler, BusTrafficRaisesII) {
  // 6 independent MAC lanes, muls and adds split across clusters: every
  // product crosses the bus. With one bus the II is transfer-bound.
  const CyclicDfg loop = make_dot_product_loop(6);
  Binding split;
  for (OpId v = 0; v < loop.num_ops(); ++v) {
    split.push_back(fu_type_of(loop.type(v)) == FuType::kMult ? 0 : 1);
  }
  const Datapath one_bus = parse_datapath("[6,6|6,6]", 1);
  const Datapath six_bus = parse_datapath("[6,6|6,6]", 6);
  const ModuloResult narrow = modulo_schedule(loop, one_bus, split);
  const ModuloResult wide = modulo_schedule(loop, six_bus, split);
  EXPECT_EQ(verify_modulo_schedule(narrow, one_bus), "");
  EXPECT_EQ(verify_modulo_schedule(wide, six_bus), "");
  EXPECT_GE(narrow.ii, 6);  // six transfers over one bus per iteration
  EXPECT_LT(wide.ii, narrow.ii);
}

TEST(ModuloScheduler, StagesCoverMakespan) {
  const CyclicDfg loop = make_iir_biquad_loop();
  const Datapath dp = parse_datapath("[2,2]");
  const ModuloResult r = software_pipeline(loop, dp);
  EXPECT_GE(r.stages, 1);
  for (OpId v = 0; v < r.kernel.num_ops(); ++v) {
    EXPECT_LT(r.start[static_cast<std::size_t>(v)], r.stages * r.ii);
  }
}

TEST(ModuloScheduler, VerifierCatchesCorruption) {
  const CyclicDfg loop = make_complex_mac_loop();
  const Datapath dp = parse_datapath("[2,2]");
  ModuloResult r = software_pipeline(loop, dp);
  ASSERT_EQ(verify_modulo_schedule(r, dp), "");
  ModuloResult bad = r;
  bad.start[0] = -1;  // unscheduled op
  EXPECT_NE(verify_modulo_schedule(bad, dp), "");
  ModuloResult bad2 = r;
  bad2.ii = 0;
  EXPECT_NE(verify_modulo_schedule(bad2, dp), "");
  ModuloResult bad3 = r;
  bad3.place[0] = 99;  // infeasible placement
  EXPECT_NE(verify_modulo_schedule(bad3, dp), "");
}

TEST(ModuloScheduler, RejectsEmptyLoop) {
  const Datapath dp = parse_datapath("[1,1]");
  EXPECT_THROW((void)modulo_schedule(CyclicDfg{}, dp, {}),
               std::invalid_argument);
}

// ---------------------------------------------- parameterized sweep

struct PipelineSweepCase {
  std::string loop_name;
  std::string datapath;
  int buses;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineSweepCase> {
 protected:
  static CyclicDfg loop_by_name(const std::string& name) {
    if (name == "dot1") {
      return make_dot_product_loop(1);
    }
    if (name == "dot4") {
      return make_dot_product_loop(4);
    }
    if (name == "biquad") {
      return make_iir_biquad_loop();
    }
    if (name == "cmac") {
      return make_complex_mac_loop();
    }
    return make_lattice_stage_loop(3);
  }
};

TEST_P(PipelineSweep, PipelineIsLegalAndBounded) {
  const CyclicDfg loop = loop_by_name(GetParam().loop_name);
  const Datapath dp = parse_datapath(GetParam().datapath, GetParam().buses);
  const ModuloResult r = software_pipeline(loop, dp);
  EXPECT_EQ(verify_modulo_schedule(r, dp), "");
  EXPECT_GE(r.ii, minimum_ii(loop, dp));
  EXPECT_GE(r.stages, 1);
  EXPECT_EQ(r.kernel.num_ops(), loop.num_ops() + r.num_moves);
}

INSTANTIATE_TEST_SUITE_P(
    LoopsByDatapath, PipelineSweep,
    ::testing::Values(PipelineSweepCase{"dot1", "[1,1]", 1},
                      PipelineSweepCase{"dot4", "[2,2|2,2]", 2},
                      PipelineSweepCase{"dot4", "[1,1|1,1]", 1},
                      PipelineSweepCase{"biquad", "[1,1]", 1},
                      PipelineSweepCase{"biquad", "[2,2|2,1]", 2},
                      PipelineSweepCase{"cmac", "[1,1|1,1]", 1},
                      PipelineSweepCase{"cmac", "[1,1|1,1|1,1]", 2},
                      PipelineSweepCase{"lattice3", "[2,2|2,2]", 2},
                      PipelineSweepCase{"lattice3", "[1,1|1,1|1,1|1,1]", 2}),
    [](const ::testing::TestParamInfo<PipelineSweepCase>& info) {
      return info.param.loop_name + "_" + std::to_string(info.index);
    });

TEST(LoopKernels, ParamValidation) {
  EXPECT_THROW((void)make_dot_product_loop(0), std::invalid_argument);
  EXPECT_THROW((void)make_lattice_stage_loop(0), std::invalid_argument);
  EXPECT_NO_THROW(make_iir_biquad_loop().validate());
  EXPECT_NO_THROW(make_lattice_stage_loop(3).validate());
}

}  // namespace
}  // namespace cvb
