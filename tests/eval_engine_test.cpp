// EvalEngine determinism and cache-correctness tests.
//
// The engine's contract is that parallelism and memoization are purely
// performance features: for every thread count and cache capacity the
// evaluated results — and therefore every consumer's chosen bindings —
// are bit-identical to the serial, uncached computation. The
// differential tests here pin that contract across all registered
// kernels, the three rewired consumers (B-ITER, PCC, the design-space
// explorer), and a range of thread counts.
#include "bind/eval_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bind/driver.hpp"
#include "bind/initial_binder.hpp"
#include "explore/explore.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

const std::vector<std::string> kDatapaths = {"[1,1]", "[1,1|1,1]",
                                             "[2,1|1,2]"};
const std::vector<int> kThreadCounts = {1, 2, 8};

/// Driver effort small enough to run the full suite differentially but
/// still exercising both B-ITER phases and multi-start.
DriverParams test_driver_params() {
  DriverParams params;
  params.max_stretch = 2;
  params.iter_starts = 2;
  return params;
}

TEST(EvalEngine, MatchesDirectEvaluation) {
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding binding = initial_binding(kernel.dfg, dp);

  EvalEngine engine;
  const EvalResult r = engine.evaluate(kernel.dfg, dp, binding);
  const BindResult direct = evaluate_binding(kernel.dfg, dp, binding);
  EXPECT_EQ(r.latency, direct.schedule.latency);
  EXPECT_EQ(r.num_moves, direct.schedule.num_moves);
  EXPECT_EQ(r, EvalEngine::evaluate_uncached(kernel.dfg, dp, binding));
}

TEST(EvalEngine, BatchResultsAlignWithSubmissionOrder) {
  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  const Datapath dp = parse_datapath("[2,1|1,2]");
  const Binding base = initial_binding(kernel.dfg, dp);

  std::vector<Binding> batch;
  for (OpId v = 0; v < kernel.dfg.num_ops(); ++v) {
    for (const ClusterId c : dp.target_set(kernel.dfg.type(v))) {
      Binding trial = base;
      trial[static_cast<std::size_t>(v)] = c;
      batch.push_back(std::move(trial));
    }
  }

  EvalEngineOptions opts;
  opts.num_threads = 4;
  EvalEngine engine(opts);
  const std::vector<EvalResult> results =
      engine.evaluate_batch(kernel.dfg, dp, batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); i += 17) {  // spot check
    EXPECT_EQ(results[i],
              EvalEngine::evaluate_uncached(kernel.dfg, dp, batch[i]))
        << "batch index " << i;
  }
}

TEST(EvalEngine, CacheHitReturnsSameResultAsRecompute) {
  const BenchmarkKernel kernel = benchmark_by_name("FFT");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding binding = initial_binding(kernel.dfg, dp);

  EvalEngine engine;
  const EvalResult first = engine.evaluate(kernel.dfg, dp, binding);
  EXPECT_EQ(engine.stats().cache_hits, 0);
  EXPECT_EQ(engine.stats().cache_misses, 1);

  const EvalResult second = engine.evaluate(kernel.dfg, dp, binding);
  EXPECT_EQ(engine.stats().cache_hits, 1);
  EXPECT_EQ(engine.stats().cache_misses, 1);
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, EvalEngine::evaluate_uncached(kernel.dfg, dp, binding));
}

TEST(EvalEngine, StatsCountersAreConsistent) {
  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding base = initial_binding(kernel.dfg, dp);

  std::vector<Binding> batch;
  for (OpId v = 0; v < 8; ++v) {
    Binding trial = base;
    trial[static_cast<std::size_t>(v)] =
        1 - trial[static_cast<std::size_t>(v)];
    batch.push_back(trial);
  }
  batch.push_back(base);
  batch.push_back(base);  // duplicate: second occurrence is deduped

  EvalEngine engine;
  (void)engine.evaluate_batch(kernel.dfg, dp, batch, {},
                              EvalPhase::kImprover);
  const EvalStats stats = engine.stats();
  EXPECT_EQ(stats.candidates, static_cast<long long>(batch.size()));
  EXPECT_EQ(stats.cache_hits + stats.batch_dedup + stats.cache_misses,
            stats.candidates);
  // The duplicated base binding shares its representative's computation
  // within the batch; nothing was served from the cache, so it must
  // count as batch_dedup rather than inflate the hit rate.
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.batch_dedup, 1);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.improver_candidates, stats.candidates);
  EXPECT_EQ(stats.pcc_candidates, 0);
  EXPECT_EQ(engine.cache_size(),
            static_cast<std::size_t>(stats.cache_misses));
}

TEST(EvalEngine, EvictsAtCapacityAndStaysCorrect) {
  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding base = initial_binding(kernel.dfg, dp);

  EvalEngineOptions opts;
  opts.cache_capacity = 2;
  opts.cache_shards = 1;  // one LRU ring, so the global capacity is exact
  EvalEngine engine(opts);
  std::vector<Binding> distinct;
  for (OpId v = 0; v < 5; ++v) {
    Binding trial = base;
    trial[static_cast<std::size_t>(v)] =
        1 - trial[static_cast<std::size_t>(v)];
    distinct.push_back(trial);
  }
  std::vector<EvalResult> first;
  for (const Binding& b : distinct) {
    first.push_back(engine.evaluate(kernel.dfg, dp, b));
  }
  EXPECT_GT(engine.stats().cache_evictions, 0);
  EXPECT_LE(engine.cache_size(), 2u);
  // Evicted or not, re-evaluation must return the same answers.
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    EXPECT_EQ(engine.evaluate(kernel.dfg, dp, distinct[i]), first[i]);
  }
}

TEST(EvalEngine, ZeroCapacityDisablesCaching) {
  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding binding = initial_binding(kernel.dfg, dp);

  EvalEngineOptions opts;
  opts.cache_capacity = 0;
  EvalEngine engine(opts);
  const EvalResult a = engine.evaluate(kernel.dfg, dp, binding);
  const EvalResult b = engine.evaluate(kernel.dfg, dp, binding);
  EXPECT_EQ(a, b);
  EXPECT_EQ(engine.cache_size(), 0u);
  EXPECT_EQ(engine.stats().cache_hits, 0);
}

TEST(EvalEngine, ContextSignatureSeparatesDatapaths) {
  // The same binding vector evaluated against two datapaths that differ
  // only in move latency must not share cache entries.
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath fast_bus = parse_datapath("[1,1|1,1]", 2, 1);
  const Datapath slow_bus = parse_datapath("[1,1|1,1]", 2, 3);
  const Binding binding = initial_binding(kernel.dfg, fast_bus);

  EXPECT_NE(EvalEngine::context_signature(kernel.dfg, fast_bus, {}),
            EvalEngine::context_signature(kernel.dfg, slow_bus, {}));

  EvalEngine engine;
  const EvalResult fast = engine.evaluate(kernel.dfg, fast_bus, binding);
  const EvalResult slow = engine.evaluate(kernel.dfg, slow_bus, binding);
  EXPECT_EQ(engine.stats().cache_hits, 0);
  EXPECT_EQ(fast,
            EvalEngine::evaluate_uncached(kernel.dfg, fast_bus, binding));
  EXPECT_EQ(slow,
            EvalEngine::evaluate_uncached(kernel.dfg, slow_bus, binding));
}

TEST(EvalEngine, SchedulerOptionsSeparateCacheEntries) {
  const BenchmarkKernel kernel = benchmark_by_name("DCT-DIF");
  const Datapath dp = parse_datapath("[1,1|1,1]", /*num_buses=*/1);
  const Binding binding = initial_binding(kernel.dfg, dp);

  ListSchedulerOptions exact;
  ListSchedulerOptions approx;
  approx.unbounded_bus = true;
  EvalEngine engine;
  const EvalResult exact_r = engine.evaluate(kernel.dfg, dp, binding, exact);
  const EvalResult approx_r = engine.evaluate(kernel.dfg, dp, binding, approx);
  EXPECT_EQ(engine.stats().cache_hits, 0);  // distinct cache contexts
  EXPECT_EQ(exact_r,
            EvalEngine::evaluate_uncached(kernel.dfg, dp, binding, exact));
  EXPECT_EQ(approx_r,
            EvalEngine::evaluate_uncached(kernel.dfg, dp, binding, approx));
}

// --- Differential layer: every consumer, every kernel, many thread
// counts, bit-identical to the serial path. ---

TEST(EvalEngineDifferential, BIterIdenticalAcrossThreadCountsOnAllKernels) {
  const DriverParams serial_params = test_driver_params();
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    for (const std::string& spec : kDatapaths) {
      const Datapath dp = parse_datapath(spec);
      const BindResult serial = bind_full(kernel.dfg, dp, serial_params);
      ASSERT_EQ(verify_schedule(serial.bound, dp, serial.schedule), "")
          << kernel.name << " on " << spec;
      for (const int threads : kThreadCounts) {
        EvalEngineOptions opts;
        opts.num_threads = threads;
        EvalEngine engine(opts);
        DriverParams params = test_driver_params();
        params.engine = &engine;
        const BindResult parallel = bind_full(kernel.dfg, dp, params);
        EXPECT_EQ(parallel.binding, serial.binding)
            << kernel.name << " on " << spec << " with " << threads
            << " threads";
        EXPECT_EQ(parallel.schedule.latency, serial.schedule.latency)
            << kernel.name << " on " << spec;
        EXPECT_EQ(parallel.schedule.num_moves, serial.schedule.num_moves)
            << kernel.name << " on " << spec;
        EXPECT_EQ(parallel.schedule.start, serial.schedule.start)
            << kernel.name << " on " << spec;
      }
    }
  }
}

TEST(EvalEngineDifferential, PccIdenticalAcrossThreadCounts) {
  for (const std::string name : {"EWF", "ARF", "DCT-DIF"}) {
    const BenchmarkKernel kernel = benchmark_by_name(name);
    for (const std::string& spec : kDatapaths) {
      const Datapath dp = parse_datapath(spec);
      const BindResult serial = pcc_binding(kernel.dfg, dp);
      for (const int threads : kThreadCounts) {
        EvalEngineOptions opts;
        opts.num_threads = threads;
        EvalEngine engine(opts);
        const BindResult parallel =
            pcc_binding(kernel.dfg, dp, {}, nullptr, &engine);
        EXPECT_EQ(parallel.binding, serial.binding)
            << name << " on " << spec << " with " << threads << " threads";
        EXPECT_EQ(parallel.schedule.latency, serial.schedule.latency);
        EXPECT_EQ(parallel.schedule.num_moves, serial.schedule.num_moves);
        EXPECT_GT(engine.stats().pcc_candidates, 0);
      }
    }
  }
}

TEST(EvalEngineDifferential, ExplorerIdenticalAcrossThreadCounts) {
  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  DseConstraints constraints;
  constraints.max_total_fus = 4;
  constraints.max_clusters = 2;
  DriverParams driver;
  driver.run_iterative = false;  // keep the point count x effort small

  const std::vector<DsePoint> serial =
      explore_design_space(kernel.dfg, constraints, driver);
  for (const int threads : kThreadCounts) {
    EvalEngineOptions opts;
    opts.num_threads = threads;
    EvalEngine engine(opts);
    const std::vector<DsePoint> parallel =
        explore_design_space(kernel.dfg, constraints, driver, &engine);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].datapath.to_string(),
                serial[i].datapath.to_string());
      EXPECT_EQ(parallel[i].latency, serial[i].latency) << "point " << i;
      EXPECT_EQ(parallel[i].moves, serial[i].moves) << "point " << i;
      EXPECT_EQ(parallel[i].lower_bound, serial[i].lower_bound);
    }
    EXPECT_EQ(engine.stats().explore_jobs,
              static_cast<long long>(serial.size()));
  }
}

TEST(EvalEngineDifferential, ExplorerAbsorbsInnerDriverStats) {
  const BenchmarkKernel kernel = benchmark_by_name("ARF");
  DseConstraints constraints;
  constraints.max_total_fus = 3;
  constraints.max_clusters = 2;
  DriverParams driver = test_driver_params();

  EvalEngineOptions opts;
  opts.num_threads = 2;
  EvalEngine engine(opts);
  (void)explore_design_space(kernel.dfg, constraints, driver, &engine);
  // The per-point serial engines' improver counters surface here.
  EXPECT_GT(engine.stats().improver_candidates, 0);
}

TEST(EvalEngineDifferential, SharedEngineCacheDoesNotChangeResults) {
  // Two consecutive full runs on one engine: the second is served
  // almost entirely from cache yet must reproduce the first exactly.
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  EvalEngine engine;
  DriverParams params = test_driver_params();
  params.engine = &engine;

  const BindResult first = bind_full(kernel.dfg, dp, params);
  const BindResult second = bind_full(kernel.dfg, dp, params);
  EXPECT_EQ(first.binding, second.binding);
  EXPECT_EQ(first.schedule.latency, second.schedule.latency);
  EXPECT_EQ(first.schedule.num_moves, second.schedule.num_moves);
  EXPECT_GT(second.eval_stats.cache_hits, 0);
  EXPECT_EQ(second.eval_stats.cache_misses, 0);  // fully warmed
}

}  // namespace
}  // namespace cvb
