// Reproduction regression test: machine-checks the headline claims
// EXPERIMENTS.md makes about Table 1, over the full 33-row experiment
// grid, so a regression in any algorithm (or an accidental kernel
// change) that would invalidate the reproduction fails CI loudly.
#include <gtest/gtest.h>

#include <map>

#include "bind/driver.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "support/stopwatch.hpp"

namespace cvb {
namespace {

const std::map<std::string, std::vector<std::string>> kTable1 = {
    {"DCT-DIF", {"[1,1|1,1]", "[2,1|2,1]", "[2,1|1,1]", "[1,1|1,1|1,1]"}},
    {"DCT-LEE",
     {"[1,1|1,1]", "[2,1|2,1]", "[2,1|1,1]", "[2,2|2,1]", "[1,1|1,1|1,1]"}},
    {"DCT-DIT",
     {"[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]", "[2,1|2,1|1,1]",
      "[3,1|2,2|1,3]", "[1,1|1,1|1,1|1,1]"}},
    {"DCT-DIT-2",
     {"[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]", "[3,1|2,2|1,3]",
      "[1,1|1,1|1,1|1,1]"}},
    {"FFT",
     {"[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]", "[2,1|2,1|1,2]",
      "[3,2|3,1|1,3]", "[1,1|1,1|1,1|1,1]"}},
    {"EWF",
     {"[1,1|1,1]", "[2,1|2,1]", "[2,1|1,1]", "[1,1|1,1|1,1]",
      "[2,2|2,1|1,1]"}},
    {"ARF", {"[1,1|1,1]", "[1,2|1,2]"}},
};

TEST(Reproduction, Table1HeadlineShapeHolds) {
  int rows = 0;
  int iter_losses = 0;          // B-ITER strictly worse than PCC
  int init_no_worse = 0;        // B-INIT no worse than PCC
  int init_faster_than_pcc = 0; // wall time
  int iter_beats_pcc = 0;       // strictly better latency
  double max_improvement = 0.0;

  for (const auto& [kernel_name, datapaths] : kTable1) {
    const Dfg dfg = benchmark_by_name(kernel_name).dfg;
    for (const std::string& spec : datapaths) {
      const Datapath dp = parse_datapath(spec);
      ++rows;

      PccInfo pcc_info;
      const BindResult pcc = pcc_binding(dfg, dp, {}, &pcc_info);
      ASSERT_EQ(verify_schedule(pcc.bound, dp, pcc.schedule), "")
          << kernel_name << " " << spec;

      DriverParams init_only;
      init_only.run_iterative = false;
      const BindResult init = bind_initial_best(dfg, dp, init_only);
      const BindResult iter = bind_full(dfg, dp);
      ASSERT_EQ(verify_schedule(iter.bound, dp, iter.schedule), "")
          << kernel_name << " " << spec;

      if (iter.schedule.latency > pcc.schedule.latency) {
        ++iter_losses;
        ADD_FAILURE() << "B-ITER loses to PCC on " << kernel_name << " "
                      << spec << ": " << iter.schedule.latency << " vs "
                      << pcc.schedule.latency;
      }
      if (iter.schedule.latency < pcc.schedule.latency) {
        ++iter_beats_pcc;
        max_improvement = std::max(
            max_improvement,
            100.0 * (pcc.schedule.latency - iter.schedule.latency) /
                pcc.schedule.latency);
      }
      if (init.schedule.latency <= pcc.schedule.latency) {
        ++init_no_worse;
      }
      if (init.init_ms < pcc_info.ms) {
        ++init_faster_than_pcc;
      }
    }
  }

  EXPECT_EQ(rows, 33);
  // Paper: "B-ITER demonstrates consistent improvements over PCC".
  EXPECT_EQ(iter_losses, 0);
  EXPECT_GE(iter_beats_pcc, 8);
  EXPECT_GE(max_improvement, 10.0);
  // Paper: "in the majority of the examples, B-INIT performs no worse".
  EXPECT_GE(init_no_worse, 17);
  // Paper: "INIT almost always executes faster than PCC".
  EXPECT_GE(init_faster_than_pcc, 30);
}

TEST(Reproduction, Table2ShapeHolds) {
  const Dfg fft = benchmark_by_name("FFT").dfg;
  int iter_losses = 0;
  for (const int buses : {1, 2}) {
    for (const int move_lat : {1, 2}) {
      const Datapath dp =
          parse_datapath("[2,2|2,1|2,2|3,1|1,1]", buses, move_lat);
      const BindResult pcc = pcc_binding(fft, dp);
      const BindResult iter = bind_full(fft, dp);
      if (iter.schedule.latency > pcc.schedule.latency) {
        ++iter_losses;
      }
    }
  }
  EXPECT_EQ(iter_losses, 0);
}

}  // namespace
}  // namespace cvb
