// Unit tests for the machine description file format.
#include <gtest/gtest.h>

#include <sstream>

#include "machine/machine_file.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

TEST(MachineFile, ParsesFullDescription) {
  std::istringstream in(R"(# a two-cluster DSP
machine my_dsp
clusters [2,1|1,1]
buses 1
latency mul 2
latency mov 3
dii MULT 2
)");
  const ParsedMachine m = parse_machine_file(in);
  EXPECT_EQ(m.name, "my_dsp");
  EXPECT_EQ(m.datapath.num_clusters(), 2);
  EXPECT_EQ(m.datapath.fu_count(0, FuType::kAlu), 2);
  EXPECT_EQ(m.datapath.num_buses(), 1);
  EXPECT_EQ(m.datapath.lat(OpType::kMul), 2);
  EXPECT_EQ(m.datapath.move_latency(), 3);
  EXPECT_EQ(m.datapath.dii(FuType::kMult), 2);
  EXPECT_EQ(m.datapath.dii(FuType::kAlu), 1);
}

TEST(MachineFile, DefaultsApply) {
  std::istringstream in("clusters [1,1]\n");
  const ParsedMachine m = parse_machine_file(in);
  EXPECT_EQ(m.name, "machine");
  EXPECT_EQ(m.datapath.num_buses(), 2);
  EXPECT_EQ(m.datapath.lat(OpType::kAdd), 1);
}

TEST(MachineFile, InlineCommentsIgnored) {
  std::istringstream in("clusters [1,1]  # centralized\nbuses 3 # wide\n");
  EXPECT_EQ(parse_machine_file(in).datapath.num_buses(), 3);
}

TEST(MachineFile, RoundTrips) {
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 4;
  lat[static_cast<std::size_t>(OpType::kMove)] = 2;
  std::array<int, kNumFuTypes> dii{1, 4, 1};
  const Datapath original({Cluster{{3, 1}}, Cluster{{1, 2}}}, 3, lat, dii);

  std::stringstream buffer;
  write_machine_file(buffer, original, "rt");
  const ParsedMachine back = parse_machine_file(buffer);
  EXPECT_EQ(back.name, "rt");
  EXPECT_EQ(back.datapath.to_string(), original.to_string());
  EXPECT_EQ(back.datapath.num_buses(), 3);
  EXPECT_EQ(back.datapath.lat(OpType::kMul), 4);
  EXPECT_EQ(back.datapath.move_latency(), 2);
  EXPECT_EQ(back.datapath.dii(FuType::kMult), 4);
}

TEST(MachineFile, ParsesTopologyLine) {
  std::istringstream in("clusters [1,1|1,1|1,1]\ntopology ring cap 2\n");
  const ParsedMachine m = parse_machine_file(in);
  EXPECT_EQ(m.datapath.topology().kind(), TopologyKind::kRing);
  EXPECT_EQ(m.datapath.topology().num_links(), 3);
  EXPECT_EQ(m.datapath.topology().link(0).capacity, 2);
  EXPECT_EQ(m.datapath.num_buses(), 6);  // aggregate capacity
}

TEST(MachineFile, ParsesCustomLinkLines) {
  std::istringstream in(R"(clusters [1,1|1,1|1,1]
link left 0-1 cap 2
link right 1-2 cap 1 lat 3
)");
  const ParsedMachine m = parse_machine_file(in);
  const Topology& topo = m.datapath.topology();
  ASSERT_EQ(topo.num_links(), 2);
  EXPECT_EQ(topo.link(0).name, "left");
  EXPECT_EQ(topo.link(1).hop_latency, 3);
  EXPECT_EQ(topo.hop_count(0, 2), 2);
  EXPECT_EQ(m.datapath.move_latency_on(1), 3);
}

TEST(MachineFile, TopologyRoundTripsAsLinks) {
  const Datapath original =
      Datapath::uniform_topo({Cluster{{1, 1}}, Cluster{{1, 1}},
                              Cluster{{1, 1}}},
                             Topology::ring(3, 2));
  std::stringstream buffer;
  write_machine_file(buffer, original, "ringy");
  const ParsedMachine back = parse_machine_file(buffer);
  // The kind tag degrades to custom, but links and routes are equal.
  const Topology& a = original.topology();
  const Topology& b = back.datapath.topology();
  ASSERT_EQ(a.num_links(), b.num_links());
  for (int l = 0; l < a.num_links(); ++l) {
    EXPECT_EQ(a.link(l).name, b.link(l).name);
    EXPECT_EQ(a.link(l).members, b.link(l).members);
    EXPECT_EQ(a.link(l).capacity, b.link(l).capacity);
    EXPECT_EQ(a.link(l).hop_latency, b.link(l).hop_latency);
  }
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      EXPECT_EQ(a.hop_count(from, to), b.hop_count(from, to));
    }
  }
  EXPECT_EQ(back.datapath.num_buses(), original.num_buses());
}

struct BadMachine {
  std::string name;
  std::string text;
};

class MachineFileErrors : public ::testing::TestWithParam<BadMachine> {};

TEST_P(MachineFileErrors, Rejected) {
  std::istringstream in(GetParam().text);
  EXPECT_THROW((void)parse_machine_file(in), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MachineFileErrors,
    ::testing::Values(
        BadMachine{"no_clusters", "machine x\nbuses 2\n"},
        BadMachine{"bad_cluster_spec", "clusters [1;1]\n"},
        BadMachine{"bad_keyword", "clusters [1,1]\nfrequency 2\n"},
        BadMachine{"bad_op_type", "clusters [1,1]\nlatency quux 2\n"},
        BadMachine{"bad_fu_type", "clusters [1,1]\ndii QPU 2\n"},
        BadMachine{"zero_latency", "clusters [1,1]\nlatency add 0\n"},
        BadMachine{"zero_buses", "clusters [1,1]\nbuses 0\n"},
        BadMachine{"negative_buses", "clusters [1,1]\nbuses -1\n"},
        BadMachine{"zero_link_cap",
                   "clusters [1,1|1,1]\nlink L 0-1 cap 0\n"},
        BadMachine{"bad_link_member", "clusters [1,1|1,1]\nlink L 0-5\n"},
        BadMachine{"bad_topology_kind",
                   "clusters [1,1|1,1]\ntopology torus\n"},
        BadMachine{"mesh_size_mismatch",
                   "clusters [1,1|1,1]\ntopology mesh:2x2\n"},
        BadMachine{"topology_and_links",
                   "clusters [1,1|1,1]\ntopology ring\nlink L 0-1\n"},
        BadMachine{"disconnected_links",
                   "clusters [1,1|1,1|1,1]\nlink L 0-1\n"},
        BadMachine{"nameless", "machine\nclusters [1,1]\n"}),
    [](const ::testing::TestParamInfo<BadMachine>& info) {
      return info.param.name;
    });

TEST(MachineFile, ErrorsCarryLineNumbers) {
  std::istringstream in("clusters [1,1]\nlatency add zero\n");
  try {
    (void)parse_machine_file(in);
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(MachineFile, ValidationErrorsNameTheField) {
  // Non-positive capacities must be rejected at parse time (with the
  // offending line), naming the field — not deferred to datapath
  // construction where the line number is lost.
  {
    std::istringstream in("clusters [1,1]\nbuses 0\n");
    try {
      (void)parse_machine_file(in);
      FAIL() << "buses 0 accepted";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("'buses'"), std::string::npos) << msg;
      EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    }
  }
  {
    std::istringstream in("clusters [1,1|1,1]\nlink wide 0-1 cap 0\n");
    try {
      (void)parse_machine_file(in);
      FAIL() << "link cap 0 accepted";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("'wide'"), std::string::npos) << msg;
      EXPECT_NE(msg.find("cap"), std::string::npos) << msg;
      EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    }
  }
}

}  // namespace
}  // namespace cvb
