// Unit tests for the machine description file format.
#include <gtest/gtest.h>

#include <sstream>

#include "machine/machine_file.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

TEST(MachineFile, ParsesFullDescription) {
  std::istringstream in(R"(# a two-cluster DSP
machine my_dsp
clusters [2,1|1,1]
buses 1
latency mul 2
latency mov 3
dii MULT 2
)");
  const ParsedMachine m = parse_machine_file(in);
  EXPECT_EQ(m.name, "my_dsp");
  EXPECT_EQ(m.datapath.num_clusters(), 2);
  EXPECT_EQ(m.datapath.fu_count(0, FuType::kAlu), 2);
  EXPECT_EQ(m.datapath.num_buses(), 1);
  EXPECT_EQ(m.datapath.lat(OpType::kMul), 2);
  EXPECT_EQ(m.datapath.move_latency(), 3);
  EXPECT_EQ(m.datapath.dii(FuType::kMult), 2);
  EXPECT_EQ(m.datapath.dii(FuType::kAlu), 1);
}

TEST(MachineFile, DefaultsApply) {
  std::istringstream in("clusters [1,1]\n");
  const ParsedMachine m = parse_machine_file(in);
  EXPECT_EQ(m.name, "machine");
  EXPECT_EQ(m.datapath.num_buses(), 2);
  EXPECT_EQ(m.datapath.lat(OpType::kAdd), 1);
}

TEST(MachineFile, InlineCommentsIgnored) {
  std::istringstream in("clusters [1,1]  # centralized\nbuses 3 # wide\n");
  EXPECT_EQ(parse_machine_file(in).datapath.num_buses(), 3);
}

TEST(MachineFile, RoundTrips) {
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 4;
  lat[static_cast<std::size_t>(OpType::kMove)] = 2;
  std::array<int, kNumFuTypes> dii{1, 4, 1};
  const Datapath original({Cluster{{3, 1}}, Cluster{{1, 2}}}, 3, lat, dii);

  std::stringstream buffer;
  write_machine_file(buffer, original, "rt");
  const ParsedMachine back = parse_machine_file(buffer);
  EXPECT_EQ(back.name, "rt");
  EXPECT_EQ(back.datapath.to_string(), original.to_string());
  EXPECT_EQ(back.datapath.num_buses(), 3);
  EXPECT_EQ(back.datapath.lat(OpType::kMul), 4);
  EXPECT_EQ(back.datapath.move_latency(), 2);
  EXPECT_EQ(back.datapath.dii(FuType::kMult), 4);
}

struct BadMachine {
  std::string name;
  std::string text;
};

class MachineFileErrors : public ::testing::TestWithParam<BadMachine> {};

TEST_P(MachineFileErrors, Rejected) {
  std::istringstream in(GetParam().text);
  EXPECT_THROW((void)parse_machine_file(in), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MachineFileErrors,
    ::testing::Values(
        BadMachine{"no_clusters", "machine x\nbuses 2\n"},
        BadMachine{"bad_cluster_spec", "clusters [1;1]\n"},
        BadMachine{"bad_keyword", "clusters [1,1]\nfrequency 2\n"},
        BadMachine{"bad_op_type", "clusters [1,1]\nlatency quux 2\n"},
        BadMachine{"bad_fu_type", "clusters [1,1]\ndii QPU 2\n"},
        BadMachine{"zero_latency", "clusters [1,1]\nlatency add 0\n"},
        BadMachine{"zero_buses", "clusters [1,1]\nbuses 0\n"},
        BadMachine{"nameless", "machine\nclusters [1,1]\n"}),
    [](const ::testing::TestParamInfo<BadMachine>& info) {
      return info.param.name;
    });

TEST(MachineFile, ErrorsCarryLineNumbers) {
  std::istringstream in("clusters [1,1]\nlatency add zero\n");
  try {
    (void)parse_machine_file(in);
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace cvb
