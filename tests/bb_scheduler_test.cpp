// Unit tests for the exact branch-and-bound scheduler, plus the
// list-scheduler optimality study it enables.
#include <gtest/gtest.h>

#include "bind/bound_dfg.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/bb_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

BoundDfg bind_all(const Dfg& g, const Datapath& dp, ClusterId c) {
  return build_bound_dfg(g, Binding(static_cast<std::size_t>(g.num_ops()), c),
                         dp);
}

TEST(BbScheduler, MatchesHandOptimum) {
  // 3-chain + 3 independent ops on 2 ALUs: optimum 3 (chain on one
  // unit, frees packed around it).
  DfgBuilder b;
  const Value c1 = b.add(b.input(), b.input());
  const Value c2 = b.add(c1, b.input());
  (void)b.add(c2, b.input());
  for (int i = 0; i < 3; ++i) {
    (void)b.add(b.input(), b.input());
  }
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[2,1]");
  const BoundDfg bound = bind_all(g, dp, 0);
  const Schedule s = optimal_schedule(bound, dp);
  EXPECT_EQ(s.latency, 3);
  EXPECT_EQ(verify_schedule(bound, dp, s), "");
}

TEST(BbScheduler, NeverWorseThanListScheduler) {
  Rng rng(314);
  for (int trial = 0; trial < 12; ++trial) {
    RandomDagParams params;
    params.num_ops = 10;
    params.num_layers = rng.uniform_int(2, 5);
    const Dfg g = make_random_layered(params, rng);
    const Datapath dp = parse_datapath("[1,1|1,1]");
    Binding binding;
    for (OpId v = 0; v < g.num_ops(); ++v) {
      binding.push_back(rng.uniform_int(0, 1));
    }
    const BoundDfg bound = build_bound_dfg(g, binding, dp);
    const Schedule greedy = list_schedule(bound, dp);
    const Schedule exact = optimal_schedule(bound, dp);
    EXPECT_LE(exact.latency, greedy.latency) << "trial " << trial;
    EXPECT_EQ(verify_schedule(bound, dp, exact), "") << "trial " << trial;
  }
}

TEST(BbScheduler, ListSchedulerIsUsuallyOptimalOnSmallGraphs) {
  // The paper leans on list scheduling for all quality estimation; this
  // quantifies how safe that is at small scale: the greedy schedule
  // matches the proven optimum on the vast majority of random cases.
  Rng rng(2718);
  int optimal_hits = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    RandomDagParams params;
    params.num_ops = 12;
    params.num_layers = rng.uniform_int(3, 6);
    const Dfg g = make_random_layered(params, rng);
    const Datapath dp = parse_datapath("[2,1|1,1]");
    Binding binding;
    for (OpId v = 0; v < g.num_ops(); ++v) {
      binding.push_back(dp.target_set(g.type(v)).size() > 1
                            ? rng.uniform_int(0, 1)
                            : dp.target_set(g.type(v)).front());
    }
    const BoundDfg bound = build_bound_dfg(g, binding, dp);
    if (list_schedule(bound, dp).latency ==
        optimal_schedule(bound, dp).latency) {
      ++optimal_hits;
    }
  }
  EXPECT_GE(optimal_hits, trials - 3);
}

TEST(BbScheduler, HandlesBusContentionExactly) {
  // Two producers on c0 feeding two consumers on c1 over one bus: the
  // optimum pipelines the transfers (latency 4).
  DfgBuilder b;
  const Value p1 = b.add(b.input(), b.input());
  const Value p2 = b.add(b.input(), b.input());
  (void)b.add(p1, b.input());
  (void)b.add(p2, b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[2,1|2,1]", 1);
  const BoundDfg bound = build_bound_dfg(g, {0, 0, 1, 1}, dp);
  const Schedule s = optimal_schedule(bound, dp);
  EXPECT_EQ(s.latency, 4);
  EXPECT_EQ(verify_schedule(bound, dp, s), "");
}

TEST(BbScheduler, UnpipelinedResourcesExact) {
  DfgBuilder b;
  (void)b.mul(b.input(), b.input());
  (void)b.mul(b.input(), b.input());
  const Dfg g = std::move(b).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 3;
  std::array<int, kNumFuTypes> dii{1, 3, 1};
  const Datapath dp({Cluster{{1, 1}}}, 1, lat, dii);
  const BoundDfg bound = bind_all(g, dp, 0);
  const Schedule s = optimal_schedule(bound, dp);
  EXPECT_EQ(s.latency, 6);  // serialization is unavoidable
  EXPECT_EQ(verify_schedule(bound, dp, s), "");
}

TEST(BbScheduler, RejectsOversizedGraphs) {
  const Dfg g = make_fir(20);  // 39 ops
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = bind_all(g, dp, 0);
  EXPECT_THROW((void)optimal_schedule(bound, dp), std::invalid_argument);
}

TEST(BbScheduler, EmptyGraph) {
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = build_bound_dfg(Dfg{}, {}, dp);
  EXPECT_EQ(optimal_schedule(bound, dp).latency, 0);
}

}  // namespace
}  // namespace cvb
