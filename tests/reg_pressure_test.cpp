// Unit tests for register-pressure analysis, including the paper's
// Section-2 claim: clustering distributes operations and decreases the
// register demand on each local register file.
#include <gtest/gtest.h>

#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/reg_pressure.hpp"

namespace cvb {
namespace {

RegPressure pressure_of(const Dfg& g, const Binding& b, const Datapath& dp) {
  const BoundDfg bound = build_bound_dfg(g, b, dp);
  return compute_reg_pressure(bound, dp, list_schedule(bound, dp));
}

TEST(RegPressure, ChainHoldsOneValue) {
  // acc chain: exactly one live intermediate at any time.
  DfgBuilder bld;
  Value acc = bld.add(bld.input(), bld.input());
  for (int i = 0; i < 5; ++i) {
    acc = bld.add(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1]");
  const RegPressure p = pressure_of(g, Binding(6, 0), dp);
  EXPECT_EQ(p.max_live[0], 1);
  EXPECT_EQ(p.centralized_max_live, 1);
}

TEST(RegPressure, ParallelProducersAccumulate) {
  // 4 independent adds feeding a reduction: all four results are live
  // together before the reduction consumes them.
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input());
  const Value b = bld.add(bld.input(), bld.input());
  const Value c = bld.add(bld.input(), bld.input());
  const Value d = bld.add(bld.input(), bld.input());
  const Value ab = bld.add(a, b);
  const Value cd = bld.add(c, d);
  (void)bld.add(ab, cd);
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[4,1]");
  const RegPressure p = pressure_of(g, Binding(7, 0), dp);
  EXPECT_GE(p.max_live[0], 4);
}

TEST(RegPressure, OutputsLiveUntilScheduleEnd) {
  DfgBuilder bld;
  (void)bld.add(bld.input(), bld.input());  // output, no consumers
  (void)bld.add(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,1]");
  const RegPressure p = pressure_of(g, Binding(2, 0), dp);
  EXPECT_EQ(p.max_live[0], 2);  // both outputs coexist at the end
}

TEST(RegPressure, MoveResultChargedToDestinationCluster) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  (void)bld.add(x, bld.input(), "y");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BoundDfg bound = build_bound_dfg(g, {0, 1}, dp);
  const Schedule s = list_schedule(bound, dp);
  const RegPressure p = compute_reg_pressure(bound, dp, s);
  // Cluster 1 holds the transferred copy and then y.
  EXPECT_GE(p.max_live[1], 1);
}

TEST(RegPressure, ClusteringReducesPerFilePressure) {
  // The paper's Section-2 claim, measured: across the suite on
  // [1,1|1,1], the worst per-cluster pressure never exceeds — and
  // usually undercuts — the centralized machine's.
  int strictly_lower = 0;
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const Datapath dp = parse_datapath("[1,1|1,1]");
    const BindResult r = bind_full(kernel.dfg, dp);
    const RegPressure p = compute_reg_pressure(r.bound, dp, r.schedule);
    EXPECT_LE(p.worst_cluster(), p.centralized_max_live) << kernel.name;
    strictly_lower += (p.worst_cluster() < p.centralized_max_live) ? 1 : 0;
  }
  EXPECT_GE(strictly_lower, 4);  // most kernels benefit outright
}

TEST(RegPressure, EmptyScheduleIsZero) {
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = build_bound_dfg(Dfg{}, {}, dp);
  const RegPressure p = compute_reg_pressure(bound, dp, Schedule{});
  EXPECT_EQ(p.centralized_max_live, 0);
  EXPECT_EQ(p.worst_cluster(), 0);
}

}  // namespace
}  // namespace cvb
