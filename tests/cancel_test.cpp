// CancelToken semantics plus the anytime contract of every binder:
// a fired token makes B-ITER / the driver / PCC / the explorer return
// promptly with a *complete, schedulable* best-so-far result, and an
// unarmed (or never-firing) token leaves results bit-identical to the
// pre-cancellation code paths.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bind/driver.hpp"
#include "bind/iterative_improver.hpp"
#include "explore/explore.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "support/cancel.hpp"

namespace cvb {
namespace {

void expect_valid(const Dfg& g, const Datapath& dp, const BindResult& r,
                  const std::string& label) {
  EXPECT_EQ(check_binding(g, r.binding, dp), "") << label;
  EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "") << label;
  EXPECT_GT(r.schedule.latency, 0) << label;
}

TEST(CancelToken, EmptyTokenNeverFires) {
  const CancelToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_GT(token.remaining_ms(), 1e12);
  token.request_cancel();  // no-op, must not crash
  EXPECT_FALSE(token.stop_requested());
}

TEST(CancelToken, ManualCancelSharedAcrossCopies) {
  const CancelToken token = CancelToken::manual();
  const CancelToken copy = token;
  EXPECT_TRUE(token.armed());
  EXPECT_FALSE(token.stop_requested());
  copy.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(token.deadline_expired());  // manual has no deadline
}

TEST(CancelToken, ZeroDeadlineIsAlreadyExpired) {
  const CancelToken token = CancelToken::after_ms(0);
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(token.cancelled());
  EXPECT_LE(token.remaining_ms(), 0.0);
}

TEST(CancelToken, FarDeadlineDoesNotFire) {
  const CancelToken token = CancelToken::after_ms(1e9);
  EXPECT_FALSE(token.stop_requested());
  EXPECT_GT(token.remaining_ms(), 1e8);
}

TEST(CancelToken, AbsoluteDeadlineExpires) {
  const CancelToken token =
      CancelToken::at(CancelToken::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(token.deadline_expired());
}

TEST(CancelAnytime, ImproverHonorsPreExpiredToken) {
  const Dfg g = benchmark_by_name("EWF").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding start(g.num_ops(), 0);

  IterImproverParams params;
  params.cancel = CancelToken::after_ms(0);
  IterImproverStats stats;
  const Binding improved = improve_binding(g, dp, start, params, &stats);
  // Pre-expired: the climber returns before evaluating any candidate,
  // and the result is the (valid) input binding.
  EXPECT_EQ(stats.candidates_evaluated, 0);
  EXPECT_EQ(improved, start);
}

TEST(CancelAnytime, DriverReturnsValidResultUnderAnyDeadline) {
  const Dfg g = benchmark_by_name("DCT-DIF").dfg;
  const Datapath dp = parse_datapath("[2,1|1,1]");
  for (const double deadline_ms : {0.0, 1.0, 10.0}) {
    DriverParams params;
    params.cancel = CancelToken::after_ms(deadline_ms);
    const BindResult r = bind_full(g, dp, params);
    expect_valid(g, dp, r, "deadline " + std::to_string(deadline_ms));
  }
}

TEST(CancelAnytime, PccReturnsValidResultUnderAnyDeadline) {
  const Dfg g = benchmark_by_name("ARF").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  for (const double deadline_ms : {0.0, 1.0}) {
    PccParams params;
    params.cancel = CancelToken::after_ms(deadline_ms);
    const BindResult r = pcc_binding(g, dp, params);
    expect_valid(g, dp, r, "pcc deadline " + std::to_string(deadline_ms));
  }
}

TEST(CancelAnytime, MidRunCancelReturnsBestSoFar) {
  // Cancel from another thread while B-ITER climbs a big kernel; the
  // result must still be complete and verifier-clean.
  const Dfg g = benchmark_by_name("DCT-DIT-2").dfg;
  const Datapath dp = parse_datapath("[2,1|2,1]");

  DriverParams params = driver_params_for(BindEffort::kMax);
  params.cancel = CancelToken::manual();
  std::thread canceller([token = params.cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.request_cancel();
  });
  const BindResult r = bind_full(g, dp, params);
  canceller.join();
  expect_valid(g, dp, r, "mid-run cancel");
}

TEST(CancelAnytime, ExplorerStopsEarlyButReturnsFinishedPoints) {
  const Dfg g = make_fir(8);
  DseConstraints constraints;
  constraints.max_total_fus = 4;

  DriverParams driver;
  driver.run_iterative = false;
  const std::vector<DsePoint> all = explore_design_space(g, constraints, driver);
  ASSERT_GT(all.size(), 1u);

  driver.cancel = CancelToken::after_ms(0);
  const std::vector<DsePoint> cut = explore_design_space(g, constraints, driver);
  // Serial exploration evaluates the in-flight point, then stops.
  ASSERT_FALSE(cut.empty());
  EXPECT_LT(cut.size(), all.size());
  for (const DsePoint& p : cut) {
    EXPECT_GT(p.latency, 0);
  }
}

TEST(CancelAnytime, NeverFiringDeadlineIsBitIdentical) {
  // The satellite guarantee: arming a (far-future) deadline changes
  // nothing about the result on any Table 1/2 kernel — the cancellation
  // polls are pure reads on the search path.
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const Datapath dp = parse_datapath("[2,1|1,1]");
    DriverParams plain;
    DriverParams armed;
    armed.cancel = CancelToken::after_ms(1e9);
    const BindResult a = bind_full(kernel.dfg, dp, plain);
    const BindResult b = bind_full(kernel.dfg, dp, armed);
    EXPECT_EQ(a.binding, b.binding) << kernel.name;
    EXPECT_EQ(a.schedule.latency, b.schedule.latency) << kernel.name;
    EXPECT_EQ(a.schedule.num_moves, b.schedule.num_moves) << kernel.name;
  }
}

TEST(CancelAnytime, PccNeverFiringDeadlineIsBitIdentical) {
  const Dfg g = benchmark_by_name("FFT").dfg;
  const Datapath dp = parse_datapath("[2,1|2,1]");
  PccParams armed;
  armed.cancel = CancelToken::after_ms(1e9);
  const BindResult a = pcc_binding(g, dp);
  const BindResult b = pcc_binding(g, dp, armed);
  EXPECT_EQ(a.binding, b.binding);
  EXPECT_EQ(a.schedule.latency, b.schedule.latency);
}

}  // namespace
}  // namespace cvb
