// Network-layer fault-injection tests (DESIGN §3.13): the seed-driven
// net.* / router.* sites and the EINTR/torn-I/O hardening they pin.
//
// The check_draw site registry and determinism tests run in every
// build (the draw API is plain runtime code; only the CVB_INJECT_DRAW
// call sites compile away). The end-to-end suites arm real injection
// through a live epoll server / router and are skipped unless the
// build has -DCVB_FAULT_INJECTION=ON.
#include "support/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"

#if defined(__linux__)
#define CVB_TEST_NET_FAULT_E2E 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>

#include "net/router.hpp"
#include "net/server.hpp"
#include "service/service.hpp"
#endif

namespace cvb {
namespace {

const std::vector<std::string> kNetSites = {
    "net.read.eintr",   "net.read.short",
    "net.read.reset",   "net.write.eintr",
    "net.write.short",  "net.write.eagain",
    "net.frame_drop",   "net.wakeup",
    "net.frame.decode", "router.connect",
    "router.upstream_read.eintr", "router.upstream_read.eof",
    "router.upstream_write.eintr", "router.upstream_write.torn",
    "router.upstream_write.drop",
};

TEST(NetFault, AllNetworkSitesAreRegistered) {
  const std::vector<std::string>& sites = fault_sites();
  for (const std::string& site : kNetSites) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << "unregistered site " << site;
  }
}

TEST(NetFault, CheckDrawIsSeedDeterministic) {
  // check_draw is runtime API in every build: the same seed must
  // produce the same fire/skip stream, a different seed a different
  // one, so any chaos_net failure replays exactly from its seed.
  const auto draws = [](std::uint64_t seed) {
    ScopedFaultInjection scoped(seed);
    FaultSpec spec;
    spec.rate = 0.5;
    FaultInjector::global().arm("net.read.short", spec);
    std::vector<std::uint64_t> out;
    out.reserve(64);
    for (int i = 0; i < 64; ++i) {
      out.push_back(FaultInjector::global().check_draw("net.read.short"));
    }
    return out;
  };
  const std::vector<std::uint64_t> a = draws(0xfeedULL);
  EXPECT_EQ(a, draws(0xfeedULL));
  EXPECT_NE(a, draws(0xfeed + 1ULL));
  // Rate 0.5 over 64 draws: both outcomes must appear.
  EXPECT_NE(std::count(a.begin(), a.end(), 0u), 0);
  EXPECT_NE(std::count_if(a.begin(), a.end(),
                          [](std::uint64_t d) { return d != 0; }),
            0);
}

TEST(NetFault, CheckDrawRespectsRateEdgesAndArming) {
  ScopedFaultInjection scoped(7);
  FaultInjector& injector = FaultInjector::global();
  // Unarmed site: never fires.
  EXPECT_EQ(injector.check_draw("net.write.short"), 0u);
  FaultSpec never;
  never.rate = 0.0;
  injector.arm("net.write.short", never);
  FaultSpec always;
  always.rate = 1.0;
  injector.arm("net.read.short", always);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(injector.check_draw("net.write.short"), 0u);
    // Fired draws are never 0, so callers can branch on the draw value.
    EXPECT_NE(injector.check_draw("net.read.short"), 0u);
  }
  EXPECT_EQ(injector.triggered("net.read.short"), 16);
}

TEST(NetFault, CheckDrawHonorsMaxTriggers) {
  ScopedFaultInjection scoped(7);
  FaultSpec spec;
  spec.rate = 1.0;
  spec.max_triggers = 3;
  FaultInjector::global().arm("net.frame_drop", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (FaultInjector::global().check_draw("net.frame_drop") != 0) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
}

#if defined(CVB_TEST_NET_FAULT_E2E)

int connect_unix_retry(const std::string& path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return -1;
    }
    path.copy(addr.sun_path, path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one NDJSON line (closed loop), tolerating torn delivery.
bool read_line(int fd, std::string& buf, std::string& line) {
  while (true) {
    const std::size_t eol = buf.find('\n');
    if (eol != std::string::npos) {
      line = buf.substr(0, eol);
      buf.erase(0, eol + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

constexpr const char* kJobLine =
    R"({"id":"%","kernel":"EWF","datapath":"[1,1|1,1]","effort":"fast"})";

std::string job_line(int i) {
  std::string line = kJobLine;
  line.replace(line.find('%'), 1, std::to_string(i));
  return line + "\n";
}

/// One epoll worker on a temp socket, torn down on destruction.
struct TestWorker {
  explicit TestWorker(const std::string& name)
      : path(testing::TempDir() + name) {
    ServiceOptions sopts;
    sopts.num_workers = 1;
    service.emplace(sopts);
    net::NetServerOptions nopts;
    nopts.socket_path = path;
    server.emplace(*service, nopts);
    thread = std::thread([this] {
      std::ostringstream ignored;
      (void)server->run(ignored);
    });
    listening = server->wait_until_listening();
  }

  ~TestWorker() {
    server->request_shutdown();
    thread.join();
  }

  std::string path;
  std::optional<Service> service;
  std::optional<net::NetServer> server;
  std::thread thread;
  bool listening = false;
};

/// Sends `count` closed-loop jobs on one connection; returns the
/// number answered "ok".
int closed_loop_ok(const std::string& path, int count) {
  const int fd = connect_unix_retry(path);
  if (fd < 0) {
    return -1;
  }
  std::string buf;
  std::string line;
  int ok = 0;
  for (int i = 0; i < count; ++i) {
    if (!send_all(fd, job_line(i)) || !read_line(fd, buf, line)) {
      break;
    }
    if (JsonValue::parse(line).find("status")->as_string() == "ok") {
      ++ok;
    }
  }
  ::close(fd);
  return ok;
}

void arm_transient(const char* site, double rate, int max_triggers = -1) {
  FaultSpec spec;
  spec.rate = rate;
  spec.fault_class = FaultClass::kTransient;
  spec.max_triggers = max_triggers;
  FaultInjector::global().arm(site, spec);
}

TEST(NetFault, ServerSurvivesInjectedEintrAndTornIO) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build with -DCVB_FAULT_INJECTION=ON";
  }
  ScopedFaultInjection scoped(0x5e1f);
  // Every EINTR/short/EAGAIN site at once: all of it must be invisible
  // to the protocol — 20/20 responses, same connection throughout.
  arm_transient("net.read.eintr", 0.3);
  arm_transient("net.read.short", 0.8);
  arm_transient("net.write.eintr", 0.3);
  arm_transient("net.write.short", 0.8);
  arm_transient("net.write.eagain", 0.3);
  TestWorker worker("cvb_nf_eintr.sock");
  ASSERT_TRUE(worker.listening);
  EXPECT_EQ(closed_loop_ok(worker.path, 20), 20);
  EXPECT_GT(FaultInjector::global().total_triggered(), 0);
}

TEST(NetFault, InjectedResetDropsConnectionButServerSurvives) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build with -DCVB_FAULT_INJECTION=ON";
  }
  ScopedFaultInjection scoped(0x5e1f);
  arm_transient("net.read.reset", 1.0, /*max_triggers=*/1);
  TestWorker worker("cvb_nf_reset.sock");
  ASSERT_TRUE(worker.listening);
  // First connection dies to the injected ECONNRESET mid-read...
  const int victim = connect_unix_retry(worker.path);
  ASSERT_GE(victim, 0);
  ASSERT_TRUE(send_all(victim, job_line(0)));
  std::string buf;
  std::string line;
  EXPECT_FALSE(read_line(victim, buf, line)) << "reset never surfaced";
  ::close(victim);
  // ...and the loop (not the process) absorbed it: a fresh connection
  // is served normally.
  EXPECT_EQ(closed_loop_ok(worker.path, 3), 3);
  EXPECT_EQ(
      worker.service->metrics().counter("net_open_connections").value(), 0);
}

TEST(NetFault, DelayedWakeupsLoseNoResponses) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build with -DCVB_FAULT_INJECTION=ON";
  }
  ScopedFaultInjection scoped(0x5e1f);
  // Every cross-thread completion wakeup delayed 10 ms: responses may
  // be late, never lost (the eventfd tick outlives the delay).
  FaultSpec spec;
  spec.rate = 1.0;
  spec.hang_ms = 10.0;
  FaultInjector::global().arm("net.wakeup", spec);
  TestWorker worker("cvb_nf_wakeup.sock");
  ASSERT_TRUE(worker.listening);
  EXPECT_EQ(closed_loop_ok(worker.path, 5), 5);
  EXPECT_GE(FaultInjector::global().triggered("net.wakeup"), 5);
}

TEST(NetFault, RouterSurvivesInjectedUpstreamEintrAndTornWrites) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build with -DCVB_FAULT_INJECTION=ON";
  }
  ScopedFaultInjection scoped(0x5e1f);
  arm_transient("router.upstream_read.eintr", 0.3);
  arm_transient("router.upstream_write.eintr", 0.3);
  arm_transient("router.upstream_write.torn", 0.8);
  TestWorker worker("cvb_nf_rt_w.sock");
  ASSERT_TRUE(worker.listening);
  const std::string front = testing::TempDir() + "cvb_nf_rt_front.sock";
  net::RouterOptions ropts;
  ropts.listen_path = front;
  ropts.workers = {worker.path};
  net::Router router(std::move(ropts));
  std::ostringstream rerr;
  std::thread rt([&] { (void)router.run(rerr); });
  ASSERT_TRUE(router.wait_until_listening()) << rerr.str();
  EXPECT_EQ(closed_loop_ok(front, 10), 10);
  router.request_shutdown();
  rt.join();
}

TEST(NetFault, InjectedUpstreamDropYieldsTypedTransientThenRecovers) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build with -DCVB_FAULT_INJECTION=ON";
  }
  ScopedFaultInjection scoped(0x5e1f);
  arm_transient("router.upstream_write.drop", 1.0, /*max_triggers=*/1);
  TestWorker worker("cvb_nf_drop_w.sock");
  ASSERT_TRUE(worker.listening);
  const std::string front = testing::TempDir() + "cvb_nf_drop_front.sock";
  net::RouterOptions ropts;
  ropts.listen_path = front;
  ropts.workers = {worker.path};
  net::Router router(std::move(ropts));
  std::ostringstream rerr;
  std::thread rt([&] { (void)router.run(rerr); });
  ASSERT_TRUE(router.wait_until_listening()) << rerr.str();

  const int fd = connect_unix_retry(front);
  ASSERT_GE(fd, 0);
  std::string buf;
  std::string line;
  // Request 1 rides the dropped connection: a typed transient answer,
  // never silence and never a half-frame to the worker (the site
  // shuts the socket down so the stream cannot desynchronize).
  ASSERT_TRUE(send_all(fd, job_line(0)));
  ASSERT_TRUE(read_line(fd, buf, line));
  const JsonValue first = JsonValue::parse(line);
  ASSERT_NE(first.find("fault_class"), nullptr) << line;
  EXPECT_EQ(first.find("fault_class")->as_string(), "transient");
  // Give the reader thread a moment to reap the dead upstream, then
  // the session must reconnect and serve normally.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(send_all(fd, job_line(1)));
  ASSERT_TRUE(read_line(fd, buf, line));
  EXPECT_EQ(JsonValue::parse(line).find("status")->as_string(), "ok") << line;
  ::close(fd);
  router.request_shutdown();
  rt.join();
}

TEST(NetFault, InjectedConnectFailuresExhaustRetriesThenRecover) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build with -DCVB_FAULT_INJECTION=ON";
  }
  ScopedFaultInjection scoped(0x5e1f);
  arm_transient("router.connect", 1.0);
  TestWorker worker("cvb_nf_conn_w.sock");
  ASSERT_TRUE(worker.listening);
  const std::string front = testing::TempDir() + "cvb_nf_conn_front.sock";
  net::RouterOptions ropts;
  ropts.listen_path = front;
  ropts.workers = {worker.path};
  ropts.max_connect_attempts = 2;
  ropts.backoff_base_ms = 0.5;
  ropts.backoff_cap_ms = 2.0;
  net::Router router(std::move(ropts));
  std::ostringstream rerr;
  std::thread rt([&] { (void)router.run(rerr); });
  ASSERT_TRUE(router.wait_until_listening()) << rerr.str();

  const int fd = connect_unix_retry(front);
  ASSERT_GE(fd, 0);
  std::string buf;
  std::string line;
  // Every connect attempt is intercepted: bounded retries, then a
  // typed transient failure — the worker being perfectly healthy is
  // exactly the point (the fault is the path to it).
  ASSERT_TRUE(send_all(fd, job_line(0)));
  ASSERT_TRUE(read_line(fd, buf, line));
  const JsonValue first = JsonValue::parse(line);
  ASSERT_NE(first.find("fault_class"), nullptr) << line;
  EXPECT_EQ(first.find("fault_class")->as_string(), "transient");
  FaultInjector::global().disarm("router.connect");
  ASSERT_TRUE(send_all(fd, job_line(1)));
  ASSERT_TRUE(read_line(fd, buf, line));
  EXPECT_EQ(JsonValue::parse(line).find("status")->as_string(), "ok") << line;
  ::close(fd);
  router.request_shutdown();
  rt.join();
}

#endif  // CVB_TEST_NET_FAULT_E2E

}  // namespace
}  // namespace cvb
