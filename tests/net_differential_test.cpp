// The PR acceptance differential: every bundled benchmark DFG ×
// machine shape, submitted through
//   (1) the in-process NDJSON stream loop   (ground truth),
//   (2) the epoll socket server, NDJSON     protocol,
//   (3) the epoll socket server, binary     frames,
//   (4) cvrouter fronting two workers,      NDJSON,
// must produce byte-identical response JSON per request id once the
// wall-clock timing fields (queue_ms / run_ms / timings) are stripped.
// Anything else — float formatting, field order, binding contents,
// status strings — differing between transports is a wire-protocol bug.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "kernels/kernels.hpp"
#include "support/json.hpp"

#if defined(__linux__)
#define CVB_TEST_NET_DIFFERENTIAL 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "net/frame.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "service/service.hpp"
#endif

#if defined(CVB_TEST_NET_DIFFERENTIAL)

namespace cvb::net {
namespace {

/// Re-dumps a response line with the nondeterministic timing fields
/// removed, preserving every other field and their order.
std::string canonicalize(const std::string& line) {
  const JsonValue parsed = JsonValue::parse(line);
  JsonValue out = JsonValue::object();
  for (const auto& [key, value] : parsed.as_object()) {
    if (key == "queue_ms" || key == "run_ms" || key == "timings") {
      continue;
    }
    out.set(key, value);
  }
  return out.dump();
}

/// id -> canonical response text, from a blob of NDJSON lines.
std::map<std::string, std::string> canonical_by_id(const std::string& text) {
  std::map<std::string, std::string> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) {
      continue;
    }
    const JsonValue parsed = JsonValue::parse(line);
    const JsonValue* id = parsed.find("id");
    if (id == nullptr) {
      continue;  // shutdown/snapshot acks
    }
    out[id->as_string()] = canonicalize(line);
  }
  return out;
}

int connect_unix_retry(const std::string& path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return -1;
    }
    path.copy(addr.sun_path, path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[8192];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// Every benchmark kernel × machine shape as NDJSON request lines.
std::vector<std::string> request_lines() {
  const char* machines[] = {"[1,1|1,1]", "[2,2|2,1]"};
  std::vector<std::string> lines;
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    for (int m = 0; m < 2; ++m) {
      lines.push_back(R"({"id":")" + kernel.name + "@" + std::to_string(m) +
                      R"(","kernel":")" + kernel.name +
                      R"(","datapath":")" + machines[m] +
                      R"(","effort":"fast"})");
    }
  }
  return lines;
}

std::map<std::string, std::string> ground_truth(
    const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line + "\n";
  }
  text += "{\"cmd\":\"quit\"}\n";
  std::istringstream in(text);
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_serve_cli({"--workers", "1"}, in, out, err), 0) << err.str();
  return canonical_by_id(out.str());
}

void expect_same_responses(const std::map<std::string, std::string>& truth,
                           const std::map<std::string, std::string>& got,
                           const char* transport) {
  EXPECT_EQ(got.size(), truth.size()) << transport;
  for (const auto& [id, expected] : truth) {
    const auto it = got.find(id);
    if (it == got.end()) {
      ADD_FAILURE() << transport << ": no response for " << id;
      continue;
    }
    EXPECT_EQ(it->second, expected) << transport << ": " << id;
  }
}

TEST(NetDifferential, AllTransportsMatchStreamLoop) {
  const std::vector<std::string> lines = request_lines();
  ASSERT_GE(lines.size(), 10u);
  const std::map<std::string, std::string> truth = ground_truth(lines);
  ASSERT_EQ(truth.size(), lines.size());

  // --- (2) + (3): one epoll server, an NDJSON and a binary client.
  {
    const std::string path = testing::TempDir() + "cvb_diff_direct.sock";
    ServiceOptions sopts;
    sopts.num_workers = 1;
    Service service(sopts);
    NetServerOptions nopts;
    nopts.socket_path = path;
    NetServer server(service, nopts);
    std::ostringstream err;
    std::thread serving([&] { (void)server.run(err); });
    ASSERT_TRUE(server.wait_until_listening()) << err.str();

    {
      const int fd = connect_unix_retry(path);
      ASSERT_GE(fd, 0);
      std::string text;
      for (const std::string& line : lines) {
        text += line + "\n";
      }
      text += "{\"cmd\":\"quit\"}\n";
      ASSERT_TRUE(send_all(fd, text));
      const std::map<std::string, std::string> got =
          canonical_by_id(read_to_eof(fd));
      ::close(fd);
      expect_same_responses(truth, got, "socket-ndjson");
    }
    {
      const int fd = connect_unix_retry(path);
      ASSERT_GE(fd, 0);
      std::string wire;
      for (const std::string& line : lines) {
        append_frame(wire, FrameType::kRequest, line);
      }
      append_frame(wire, FrameType::kRequest, R"({"cmd":"quit"})");
      ASSERT_TRUE(send_all(fd, wire));
      // Collect response frames until the server closes after quit.
      const std::string raw = read_to_eof(fd);
      ::close(fd);
      std::string ndjson;
      std::string_view rest = raw;
      while (!rest.empty()) {
        const DecodeResult decoded = decode_frame(rest);
        ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
        ASSERT_EQ(decoded.frame.type, FrameType::kResponse);
        ndjson += std::string(decoded.frame.payload) + "\n";
        rest = rest.substr(decoded.consumed);
      }
      expect_same_responses(truth, canonical_by_id(ndjson), "socket-binary");
    }

    server.request_shutdown();
    serving.join();
  }

  // --- (4): router in front of two workers, NDJSON client.
  {
    const std::string w0_path = testing::TempDir() + "cvb_diff_w0.sock";
    const std::string w1_path = testing::TempDir() + "cvb_diff_w1.sock";
    const std::string front = testing::TempDir() + "cvb_diff_front.sock";
    ServiceOptions sopts;
    sopts.num_workers = 1;
    Service s0(sopts);
    Service s1(sopts);
    NetServerOptions n0;
    n0.socket_path = w0_path;
    NetServerOptions n1;
    n1.socket_path = w1_path;
    NetServer worker0(s0, n0);
    NetServer worker1(s1, n1);
    std::ostringstream err0;
    std::ostringstream err1;
    std::thread t0([&] { (void)worker0.run(err0); });
    std::thread t1([&] { (void)worker1.run(err1); });
    ASSERT_TRUE(worker0.wait_until_listening()) << err0.str();
    ASSERT_TRUE(worker1.wait_until_listening()) << err1.str();

    RouterOptions ropts;
    ropts.listen_path = front;
    ropts.workers = {w0_path, w1_path};
    Router router(ropts);
    std::ostringstream rerr;
    std::thread rt([&] { (void)router.run(rerr); });
    ASSERT_TRUE(router.wait_until_listening()) << rerr.str();

    const int fd = connect_unix_retry(front);
    ASSERT_GE(fd, 0);
    std::string text;
    for (const std::string& line : lines) {
      text += line + "\n";
    }
    text += "{\"cmd\":\"quit\"}\n";
    ASSERT_TRUE(send_all(fd, text));
    const std::map<std::string, std::string> got =
        canonical_by_id(read_to_eof(fd));
    ::close(fd);
    expect_same_responses(truth, got, "router-2-workers");

    router.request_shutdown();
    rt.join();
    worker0.request_shutdown();
    worker1.request_shutdown();
    t0.join();
    t1.join();
    // The router actually spread the suite: both workers served jobs.
    const long long jobs0 = s0.metrics().counter("net_responses_out").value();
    const long long jobs1 = s1.metrics().counter("net_responses_out").value();
    EXPECT_EQ(jobs0 + jobs1, static_cast<long long>(lines.size()));
  }
}

}  // namespace
}  // namespace cvb::net

#else

TEST(NetDifferential, SkippedWithoutEpoll) { GTEST_SKIP(); }

#endif  // CVB_TEST_NET_DIFFERENTIAL
