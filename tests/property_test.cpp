// Property-based tests: randomized DFGs and datapath configurations
// pushed through the full pipeline, checking the invariants that must
// hold for *every* input (schedule legality, latency bounds, algorithm
// dominance relations, determinism of move accounting).
#include <gtest/gtest.h>

#include <tuple>

#include "bind/binding.hpp"
#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "graph/analysis.hpp"
#include "graph/components.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

struct PropertyConfig {
  std::uint64_t seed;
  int num_ops;
  int num_layers;
  std::string datapath;
  int buses;
  int move_latency;
};

std::ostream& operator<<(std::ostream& out, const PropertyConfig& c) {
  return out << "seed=" << c.seed << " ops=" << c.num_ops << " dp="
             << c.datapath;
}

class RandomPipeline : public ::testing::TestWithParam<PropertyConfig> {
 protected:
  Dfg make_graph() const {
    Rng rng(GetParam().seed);
    RandomDagParams params;
    params.num_ops = GetParam().num_ops;
    params.num_layers = GetParam().num_layers;
    params.mul_fraction = 0.35;
    return make_random_layered(params, rng);
  }
  Datapath make_dp() const {
    return parse_datapath(GetParam().datapath, GetParam().buses,
                          GetParam().move_latency);
  }
};

TEST_P(RandomPipeline, FullPipelineInvariants) {
  const Dfg g = make_graph();
  const Datapath dp = make_dp();
  const int lcp = critical_path_length(g, dp.latencies());

  const BindResult init = bind_initial_best(g, dp);
  const BindResult full = bind_full(g, dp);

  // 1. Bindings are valid and schedules legal.
  EXPECT_EQ(check_binding(g, init.binding, dp), "");
  EXPECT_EQ(check_binding(g, full.binding, dp), "");
  EXPECT_EQ(verify_schedule(init.bound, dp, init.schedule), "");
  EXPECT_EQ(verify_schedule(full.bound, dp, full.schedule), "");

  // 2. Latency bounded below by the dependence bound.
  EXPECT_GE(init.schedule.latency, lcp);
  EXPECT_GE(full.schedule.latency, lcp);

  // 3. B-ITER never loses to B-INIT.
  EXPECT_LE(full.schedule.latency, init.schedule.latency);

  // 4. Move accounting consistent: moves in the bound graph equal the
  //    schedule's record and never exceed the binding's cut edges.
  EXPECT_EQ(full.bound.num_moves, full.schedule.num_moves);
  EXPECT_LE(full.bound.num_moves, count_cut_edges(g, full.binding));

  // 5. All-on-one-cluster binding (when feasible) has zero moves.
  bool cluster0_universal = true;
  for (OpId v = 0; v < g.num_ops(); ++v) {
    cluster0_universal = cluster0_universal && dp.supports(0, g.type(v));
  }
  if (cluster0_universal) {
    const Binding all0(static_cast<std::size_t>(g.num_ops()), 0);
    EXPECT_EQ(build_bound_dfg(g, all0, dp).num_moves, 0);
  }
}

TEST_P(RandomPipeline, PccInvariants) {
  const Dfg g = make_graph();
  const Datapath dp = make_dp();
  const BindResult pcc = pcc_binding(g, dp);
  EXPECT_EQ(check_binding(g, pcc.binding, dp), "");
  EXPECT_EQ(verify_schedule(pcc.bound, dp, pcc.schedule), "");
  EXPECT_GE(pcc.schedule.latency, critical_path_length(g, dp.latencies()));
}

TEST_P(RandomPipeline, SchedulerLatencyWithinSerialBound) {
  const Dfg g = make_graph();
  const Datapath dp = make_dp();
  const BindResult full = bind_full(g, dp);
  // Upper bound: complete serialization of every op plus every move at
  // the slowest latency.
  long serial = 0;
  for (OpId v = 0; v < full.bound.graph.num_ops(); ++v) {
    serial += lat_of(dp.latencies(), full.bound.graph.type(v));
  }
  EXPECT_LE(full.schedule.latency, serial);
}

TEST_P(RandomPipeline, ReversedGraphSameCriticalPath) {
  const Dfg g = make_graph();
  const Datapath dp = make_dp();
  // With symmetric (unit) op latencies the reversed graph has the same
  // critical path — the property the reverse binding mode relies on.
  EXPECT_EQ(critical_path_length(g, dp.latencies()),
            critical_path_length(g.reversed(), dp.latencies()));
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, RandomPipeline,
    ::testing::Values(
        PropertyConfig{1, 12, 4, "[1,1|1,1]", 2, 1},
        PropertyConfig{2, 20, 5, "[1,1|1,1]", 2, 1},
        PropertyConfig{3, 20, 5, "[2,1|1,1]", 1, 1},
        PropertyConfig{4, 28, 6, "[2,1|2,1]", 2, 1},
        PropertyConfig{5, 28, 4, "[1,1|1,1|1,1]", 2, 1},
        PropertyConfig{6, 36, 6, "[1,1|1,1|1,1]", 1, 2},
        PropertyConfig{7, 36, 8, "[2,2|2,1]", 2, 1},
        PropertyConfig{8, 44, 7, "[3,1|2,2|1,3]", 2, 1},
        PropertyConfig{9, 44, 9, "[1,1|1,1|1,1|1,1]", 2, 2},
        PropertyConfig{10, 52, 8, "[2,1|2,1|1,2]", 1, 1}),
    [](const ::testing::TestParamInfo<PropertyConfig>& info) {
      return "cfg" + std::to_string(info.param.seed);
    });

// ------------------------------------------------ cross-kernel properties

TEST(KernelProperties, MoveLatencyMonotone) {
  // Raising lat(move) can never make the best achievable schedule
  // faster on the same datapath (checked on the full algorithm's
  // output as a sanity property, kernel by kernel).
  for (const std::string name : {"FFT", "ARF"}) {
    const Dfg g = benchmark_by_name(name).dfg;
    const BindResult fast =
        bind_full(g, parse_datapath("[2,1|2,1]", 2, 1));
    const BindResult slow =
        bind_full(g, parse_datapath("[2,1|2,1]", 2, 3));
    EXPECT_LE(fast.schedule.latency, slow.schedule.latency) << name;
  }
}

TEST(KernelProperties, MoreBusesNeverHurt) {
  for (const std::string name : {"DCT-DIF", "FFT"}) {
    const Dfg g = benchmark_by_name(name).dfg;
    const BindResult one_bus =
        bind_full(g, parse_datapath("[1,1|1,1|1,1]", 1, 1));
    const BindResult four_bus =
        bind_full(g, parse_datapath("[1,1|1,1|1,1]", 4, 1));
    EXPECT_LE(four_bus.schedule.latency, one_bus.schedule.latency) << name;
  }
}

TEST(KernelProperties, SingleClusterIsMoveFree) {
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const Datapath dp = parse_datapath("[3,3]");
    const BindResult r = bind_full(kernel.dfg, dp);
    EXPECT_EQ(r.schedule.num_moves, 0) << kernel.name;
    EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "") << kernel.name;
  }
}

TEST(KernelProperties, IndependentComponentsDontTransferOnTwoClusters) {
  // DCT-DIF and DCT-LEE have two independent components; with two
  // identical clusters the best binding should need few or no moves.
  for (const std::string name : {"DCT-DIF", "DCT-LEE"}) {
    const BenchmarkKernel kernel = benchmark_by_name(name);
    ASSERT_EQ(num_components(kernel.dfg), 2) << name;
    const BindResult r = bind_full(kernel.dfg, parse_datapath("[2,2|2,2]"));
    EXPECT_LE(r.schedule.num_moves, 6) << name;
  }
}

TEST(KernelProperties, UnrolledKernelLatencyAtLeastBase) {
  const BindResult base =
      bind_full(make_dct_dit(), parse_datapath("[2,1|2,1]"));
  const BindResult unrolled =
      bind_full(make_dct_dit2(), parse_datapath("[2,1|2,1]"));
  EXPECT_GE(unrolled.schedule.latency, base.schedule.latency);
}

}  // namespace
}  // namespace cvb
