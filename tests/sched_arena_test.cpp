// SchedArena reuse tests: after one warm-up evaluation, neither the
// full scheduling path (list_schedule_into) nor the DeltaEvaluator
// overlay path may allocate again — asserted through the arena's
// grow-count hook (SchedArena::total_grows aggregates vector capacity
// growth and every occupancy table's row growth).
#include <gtest/gtest.h>

#include <string>

#include "bind/bound_dfg.hpp"
#include "bind/delta_eval.hpp"
#include "bind/driver.hpp"
#include "bind/eval_engine.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"

namespace cvb {
namespace {

Binding init_binding(const Dfg& dfg, const Datapath& dp) {
  DriverParams init_only;
  init_only.run_iterative = false;
  return bind_initial_best(dfg, dp, init_only).binding;
}

TEST(SchedArena, FullPathNoReallocationAfterWarmUp) {
  // Per-kernel steady state: repeated scheduling of the same bound DFG
  // into a retained arena must not grow anything after the first call.
  const Datapath dp = parse_datapath("[2,1|1,2]");
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const Binding binding = init_binding(kernel.dfg, dp);
    const BoundDfg bound = build_bound_dfg(kernel.dfg, binding, dp);
    SchedArena arena;
    Schedule sched;
    list_schedule_into(bound, dp, {}, arena, sched);
    const std::uint64_t warm = arena.total_grows();
    const Schedule first = sched;
    for (int round = 0; round < 5; ++round) {
      list_schedule_into(bound, dp, {}, arena, sched);
      EXPECT_EQ(arena.total_grows(), warm)
          << kernel.name << " round " << round;
      EXPECT_EQ(sched.start, first.start) << kernel.name;
    }
  }
}

TEST(SchedArena, FullPathSharedArenaAcrossWholeSuite) {
  // A single arena serving the whole benchmark suite (the EvalEngine
  // worker pattern): once every kernel has been seen, a second sweep
  // must be allocation-free.
  const Datapath dp = parse_datapath("[3,1|2,2|1,3]");
  SchedArena arena;
  Schedule sched;
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const BoundDfg bound =
        build_bound_dfg(kernel.dfg, init_binding(kernel.dfg, dp), dp);
    list_schedule_into(bound, dp, {}, arena, sched);
  }
  const std::uint64_t warm = arena.total_grows();
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const BoundDfg bound =
        build_bound_dfg(kernel.dfg, init_binding(kernel.dfg, dp), dp);
    list_schedule_into(bound, dp, {}, arena, sched);
    EXPECT_EQ(arena.total_grows(), warm) << kernel.name;
  }
}

TEST(SchedArena, DeltaPathNoReallocationAfterWarmUp) {
  // The overlay path: candidates differ in move count, so the arena
  // may legitimately grow during the first sweep of the candidate set
  // (the warm-up round of a B-ITER iteration). A second sweep of the
  // same candidates must then run entirely out of the retained arena.
  for (const std::string name : {"EWF", "DCT-LEE", "FFT"}) {
    const BenchmarkKernel kernel = benchmark_by_name(name);
    const Datapath dp = parse_datapath("[2,1|1,2]");
    const Binding incumbent = init_binding(kernel.dfg, dp);
    DeltaEvaluator evaluator;
    evaluator.set_incumbent(kernel.dfg, dp, incumbent);

    const auto sweep = [&](const char* round, std::uint64_t* freeze) {
      int evaluated = 0;
      for (OpId v = 0; v < kernel.dfg.num_ops(); ++v) {
        for (const ClusterId c : dp.target_set(kernel.dfg.type(v))) {
          if (c == incumbent[static_cast<std::size_t>(v)]) {
            continue;
          }
          (void)evaluator.evaluate({{v, c}}, {});
          ++evaluated;
          if (freeze != nullptr) {
            EXPECT_EQ(evaluator.sched_arena().total_grows(), *freeze)
                << name << " " << round << " op " << v << " -> cluster " << c;
          }
        }
      }
      return evaluated;
    };
    EXPECT_GT(sweep("warm-up", nullptr), 1) << name;
    std::uint64_t warm = evaluator.sched_arena().total_grows();
    sweep("steady", &warm);
  }
}

TEST(SchedArena, GrowCountIncludesOccupancyTables) {
  // total_grows must see growth inside the occupancy tables, not just
  // the arena's own vectors: scheduling a much deeper graph after
  // warm-up forces new cycle rows and must be visible in the count.
  const Datapath dp = parse_datapath("[1,1|1,1]");
  SchedArena arena;
  Schedule sched;
  const BoundDfg small =
      build_bound_dfg(make_fir(3), init_binding(make_fir(3), dp), dp);
  list_schedule_into(small, dp, {}, arena, sched);
  const std::uint64_t warm = arena.total_grows();
  const Dfg big = make_fir(48);  // serial spine: far more cycle rows
  const BoundDfg big_bound = build_bound_dfg(big, init_binding(big, dp), dp);
  list_schedule_into(big_bound, dp, {}, arena, sched);
  EXPECT_GT(arena.total_grows(), warm);
}

}  // namespace
}  // namespace cvb
