// Circuit-breaker unit tests (net/router.hpp BreakerBoard): the
// closed -> open -> half-open -> closed lifecycle driven by request
// outcomes and kPing probes, the half-open trial budget, ring
// preference order, and the reconnect backoff's decorrelated-jitter
// bounds. All pure in-process state-machine tests — the E2E
// kill/restart recovery lives in router_test.cpp.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "net/router.hpp"
#include "service/resilience.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace cvb::net {
namespace {

BreakerOptions small_breaker() {
  BreakerOptions opts;
  opts.failure_threshold = 3;
  opts.window = 8;
  opts.error_rate_threshold = 0.5;
  opts.half_open_trials = 2;
  return opts;
}

TEST(RouterBreaker, StartsClosedAndAllowsTraffic) {
  BreakerBoard board(2, small_breaker());
  EXPECT_EQ(board.state(0), BreakerState::kClosed);
  EXPECT_EQ(board.state(1), BreakerState::kClosed);
  EXPECT_TRUE(board.allow(0));
  EXPECT_TRUE(board.allow(1));
  const std::vector<bool> eligible = board.eligibility();
  EXPECT_TRUE(eligible[0]);
  EXPECT_TRUE(eligible[1]);
}

TEST(RouterBreaker, ConsecutiveFailuresOpen) {
  BreakerBoard board(2, small_breaker());
  board.record_failure(0);
  board.record_failure(0);
  EXPECT_EQ(board.state(0), BreakerState::kClosed) << "opened one early";
  board.record_failure(0);
  EXPECT_EQ(board.state(0), BreakerState::kOpen);
  EXPECT_FALSE(board.allow(0));
  // The other worker is untouched.
  EXPECT_EQ(board.state(1), BreakerState::kClosed);
  EXPECT_TRUE(board.allow(1));
}

TEST(RouterBreaker, SuccessResetsConsecutiveCount) {
  // Disable the window rule (a 2-in-3 failure mix is over 0.5) so this
  // isolates the consecutive-failure counter.
  BreakerOptions opts = small_breaker();
  opts.error_rate_threshold = 1.0;
  BreakerBoard board(1, opts);
  for (int round = 0; round < 5; ++round) {
    board.record_failure(0);
    board.record_failure(0);
    board.record_success(0);  // breaks the streak every time
  }
  EXPECT_EQ(board.state(0), BreakerState::kClosed);
}

TEST(RouterBreaker, ErrorRateOverFullWindowOpens) {
  // A worker failing every other request never reaches 3 consecutive
  // failures; the rolling-window error rate must catch it instead.
  BreakerOptions opts = small_breaker();
  opts.failure_threshold = 100;  // isolate the window rule
  BreakerBoard board(1, opts);
  for (int i = 0; i < 4; ++i) {
    board.record_success(0);
    board.record_failure(0);
  }
  EXPECT_EQ(board.state(0), BreakerState::kOpen);
}

TEST(RouterBreaker, ErrorRateNeedsFullWindow) {
  BreakerOptions opts = small_breaker();
  opts.failure_threshold = 100;
  BreakerBoard board(1, opts);
  // 2 failures in 3 outcomes is over the rate but the window (8) is
  // not full yet — a cold worker must not trip on its first wobble.
  board.record_failure(0);
  board.record_success(0);
  board.record_failure(0);
  EXPECT_EQ(board.state(0), BreakerState::kClosed);
}

TEST(RouterBreaker, ProbeFailuresTripIdleWorker) {
  // No traffic at all: failed kPing probes alone must open the
  // breaker, so a dead idle worker is fenced before a request burns
  // its connect budget on it.
  BreakerBoard board(1, small_breaker());
  board.on_probe(0, false);
  board.on_probe(0, false);
  board.on_probe(0, false);
  EXPECT_EQ(board.state(0), BreakerState::kOpen);
}

TEST(RouterBreaker, ProbeRecoveryHalfOpensThenCloses) {
  BreakerBoard board(1, small_breaker());
  for (int i = 0; i < 3; ++i) {
    board.record_failure(0);
  }
  ASSERT_EQ(board.state(0), BreakerState::kOpen);
  // First clean probe: open -> half-open.
  board.on_probe(0, true);
  EXPECT_EQ(board.state(0), BreakerState::kHalfOpen);
  // Probes count as trial successes, so a recovered worker closes
  // without waiting for client traffic (half_open_trials = 2).
  board.on_probe(0, true);
  board.on_probe(0, true);
  EXPECT_EQ(board.state(0), BreakerState::kClosed);
  EXPECT_TRUE(board.allow(0));
}

TEST(RouterBreaker, TrialSuccessesClose) {
  BreakerBoard board(1, small_breaker());
  for (int i = 0; i < 3; ++i) {
    board.record_failure(0);
  }
  board.on_probe(0, true);
  ASSERT_EQ(board.state(0), BreakerState::kHalfOpen);
  // Two trial requests succeed: closed again.
  ASSERT_TRUE(board.allow(0));
  board.record_success(0);
  ASSERT_TRUE(board.allow(0));
  board.record_success(0);
  EXPECT_EQ(board.state(0), BreakerState::kClosed);
}

TEST(RouterBreaker, HalfOpenTrialBudgetIsBounded) {
  BreakerBoard board(1, small_breaker());
  for (int i = 0; i < 3; ++i) {
    board.record_failure(0);
  }
  board.on_probe(0, true);
  ASSERT_EQ(board.state(0), BreakerState::kHalfOpen);
  // Exactly half_open_trials slots, then the tap closes until an
  // outcome or probe moves the state.
  EXPECT_TRUE(board.allow(0));
  EXPECT_TRUE(board.allow(0));
  EXPECT_FALSE(board.allow(0));
  // eligibility() is non-consuming: it reported true before the slots
  // ran out and false after, without ever taking a slot itself.
  EXPECT_FALSE(board.eligibility()[0]);
}

TEST(RouterBreaker, CancelTrialRepaysAbandonedSlot) {
  BreakerBoard board(1, small_breaker());
  for (int i = 0; i < 3; ++i) {
    board.record_failure(0);
  }
  board.on_probe(0, true);
  ASSERT_EQ(board.state(0), BreakerState::kHalfOpen);
  // Both trial slots granted, then one caller abandons its request
  // before sending (e.g. a hedge whose ledger entry was answered
  // while it connected). Without the repayment the slot would leak
  // and the breaker would refuse traffic forever.
  ASSERT_TRUE(board.allow(0));
  ASSERT_TRUE(board.allow(0));
  ASSERT_FALSE(board.allow(0));
  board.cancel_trial(0);
  EXPECT_TRUE(board.allow(0));
  EXPECT_FALSE(board.allow(0));
  // Outside half-open the repayment is a no-op (and never underflows).
  board.record_failure(0);
  ASSERT_EQ(board.state(0), BreakerState::kOpen);
  board.cancel_trial(0);
  EXPECT_FALSE(board.allow(0));
  board.cancel_trial(7);  // out of range: ignored
}

TEST(RouterBreaker, TrialFailureReopens) {
  BreakerBoard board(1, small_breaker());
  for (int i = 0; i < 3; ++i) {
    board.record_failure(0);
  }
  board.on_probe(0, true);
  ASSERT_EQ(board.state(0), BreakerState::kHalfOpen);
  board.record_failure(0);
  EXPECT_EQ(board.state(0), BreakerState::kOpen);
  // A failed probe while half-open re-opens too.
  board.on_probe(0, true);
  ASSERT_EQ(board.state(0), BreakerState::kHalfOpen);
  board.on_probe(0, false);
  EXPECT_EQ(board.state(0), BreakerState::kOpen);
}

TEST(RouterBreaker, TransitionsEmitMetrics) {
  MetricsRegistry metrics;
  BreakerBoard board(1, small_breaker(), &metrics);
  for (int i = 0; i < 3; ++i) {
    board.record_failure(0);
  }
  board.on_probe(0, true);
  board.on_probe(0, true);
  board.on_probe(0, true);
  EXPECT_EQ(metrics.counter("net_breaker_open_total").value(), 1);
  EXPECT_EQ(metrics.counter("net_breaker_half_open_total").value(), 1);
  EXPECT_EQ(metrics.counter("net_breaker_close_total").value(), 1);
  EXPECT_EQ(metrics.gauge("net_breaker_state_w0").value(), 0);  // closed
}

TEST(RouterBreaker, ToStringNames) {
  EXPECT_STREQ(to_string(BreakerState::kClosed), "closed");
  EXPECT_STREQ(to_string(BreakerState::kOpen), "open");
  EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half_open");
}

TEST(HashRingSequence, FirstMatchesPickAndCoversAll) {
  const std::vector<std::string> workers = {"/tmp/w0", "/tmp/w1", "/tmp/w2"};
  const HashRing ring(workers, 64);
  for (std::uint64_t key = 0; key < 500; ++key) {
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ULL + 7;
    const std::vector<int> order = ring.pick_sequence(h);
    ASSERT_EQ(order.size(), workers.size());
    // The hedging/breaker walk starts exactly where plain routing
    // routes, and visits every distinct worker exactly once.
    EXPECT_EQ(order.front(), ring.pick(h, {}));
    EXPECT_EQ(std::set<int>(order.begin(), order.end()).size(),
              workers.size());
    EXPECT_EQ(ring.pick_sequence(h), order) << "non-deterministic order";
  }
}

TEST(HashRingSequence, EmptyRing) {
  const HashRing ring({}, 16);
  EXPECT_TRUE(ring.pick_sequence(42).empty());
}

TEST(RouterBackoff, DecorrelatedJitterStaysInBounds) {
  // The reconnect backoff: always at least base, never past cap, and
  // at most 3x the previous sleep (the decorrelated-jitter recurrence).
  Rng rng(0xbac0ffULL);
  double prev = 1.0;
  for (int i = 0; i < 1000; ++i) {
    const double next = decorrelated_jitter_ms(1.0, 50.0, prev, rng);
    ASSERT_GE(next, 1.0);
    ASSERT_LE(next, 50.0);
    ASSERT_LE(next, std::max(3.0 * prev, 1.0) + 1e-9);
    prev = next;
  }
}

TEST(RouterBackoff, JitterIsSeedDeterministic) {
  Rng a(42);
  Rng b(42);
  double prev_a = 2.0;
  double prev_b = 2.0;
  for (int i = 0; i < 100; ++i) {
    prev_a = decorrelated_jitter_ms(1.0, 50.0, prev_a, a);
    prev_b = decorrelated_jitter_ms(1.0, 50.0, prev_b, b);
    ASSERT_EQ(prev_a, prev_b);
  }
}

}  // namespace
}  // namespace cvb::net
