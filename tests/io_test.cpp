// Unit tests for the DFG text serialization round trip and parser
// error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/analysis.hpp"
#include "io/dfg_text.hpp"
#include "kernels/kernels.hpp"

namespace cvb {
namespace {

TEST(DfgText, RoundTripsEveryBenchmark) {
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    std::stringstream buffer;
    write_dfg_text(buffer, kernel.dfg, kernel.name);
    const ParsedDfg parsed = parse_dfg_text(buffer);
    EXPECT_EQ(parsed.name, kernel.name);
    ASSERT_EQ(parsed.dfg.num_ops(), kernel.dfg.num_ops());
    EXPECT_EQ(parsed.dfg.num_edges(), kernel.dfg.num_edges());
    for (OpId v = 0; v < kernel.dfg.num_ops(); ++v) {
      EXPECT_EQ(parsed.dfg.type(v), kernel.dfg.type(v));
      EXPECT_EQ(parsed.dfg.name(v), kernel.dfg.name(v));
      for (const OpId s : kernel.dfg.succs(v)) {
        EXPECT_TRUE(parsed.dfg.has_edge(v, s));
      }
    }
    EXPECT_EQ(critical_path_length(parsed.dfg, unit_latencies()),
              kernel.paper_lcp);
  }
}

TEST(DfgText, ParsesHandWrittenInput) {
  std::istringstream in(R"(# a tiny kernel
dfg tiny

op 0 add s
op 1 mul p
edge 0 1
)");
  const ParsedDfg parsed = parse_dfg_text(in);
  EXPECT_EQ(parsed.name, "tiny");
  EXPECT_EQ(parsed.dfg.num_ops(), 2);
  EXPECT_EQ(parsed.dfg.type(1), OpType::kMul);
  EXPECT_TRUE(parsed.dfg.has_edge(0, 1));
}

TEST(DfgText, GeneratesNamesWhenOmitted) {
  std::istringstream in("dfg t\nop 0 add\n");
  const ParsedDfg parsed = parse_dfg_text(in);
  EXPECT_EQ(parsed.dfg.name(0), "add0");
}

TEST(DfgText, OpTypeLookup) {
  EXPECT_EQ(op_type_from_name("add"), OpType::kAdd);
  EXPECT_EQ(op_type_from_name("mov"), OpType::kMove);
  EXPECT_THROW((void)op_type_from_name("frobnicate"), std::invalid_argument);
}

struct BadInput {
  std::string name;
  std::string text;
  std::string expect_substring;
};

class DfgTextErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(DfgTextErrors, ReportsLineAndCause) {
  std::istringstream in(GetParam().text);
  try {
    (void)parse_dfg_text(in);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().expect_substring),
              std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DfgTextErrors,
    ::testing::Values(
        BadInput{"missing_header", "op 0 add x\n", "before 'dfg' header"},
        BadInput{"empty", "", "missing 'dfg <name>' header"},
        BadInput{"dup_header", "dfg a\ndfg b\n", "duplicate header"},
        BadInput{"sparse_ids", "dfg a\nop 5 add x\n", "dense"},
        BadInput{"bad_type", "dfg a\nop 0 quux x\n", "unknown operation"},
        BadInput{"dangling_edge", "dfg a\nop 0 add x\nedge 0 3\n",
                 "undeclared op"},
        BadInput{"negative_edge", "dfg a\nop 0 add x\nedge -1 0\n",
                 "undeclared op"},
        BadInput{"self_loop", "dfg a\nop 0 add x\nedge 0 0\n", "self loop"},
        BadInput{"dup_edge",
                 "dfg a\nop 0 add x\nop 1 add y\nedge 0 1\nedge 0 1\n",
                 "duplicate edge"},
        BadInput{"junk_keyword", "dfg a\nnode 0\n", "unknown keyword"},
        BadInput{"nameless_header", "dfg\n", "missing graph name"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(DfgText, ErrorMessagesCarryLineNumbers) {
  std::istringstream in("dfg a\nop 0 add x\nedge 0 9\n");
  try {
    (void)parse_dfg_text(in);
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace cvb
