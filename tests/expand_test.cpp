// Unit tests for pipeline expansion: the flattened overlapped schedule
// must pass the standard (non-modulo) verifier, hit the closed-form
// latency, and beat the non-pipelined loop execution.
#include <gtest/gtest.h>

#include "bind/driver.hpp"
#include "machine/parser.hpp"
#include "modulo/expand.hpp"
#include "modulo/loop_kernels.hpp"
#include "modulo/modulo_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

TEST(Expand, FlatScheduleIsVerifiablyLegal) {
  for (const auto& [name, loop] :
       {std::pair<std::string, CyclicDfg>{"biquad", make_iir_biquad_loop()},
        {"cmac", make_complex_mac_loop()},
        {"lattice", make_lattice_stage_loop(2)}}) {
    const Datapath dp = parse_datapath("[2,2|2,1]");
    const ModuloResult r = software_pipeline(loop, dp);
    for (const int n : {1, 2, 5}) {
      const ExpandedPipeline flat = expand_pipeline(r, dp, n);
      EXPECT_EQ(verify_schedule(flat.flat, dp, flat.schedule), "")
          << name << " x" << n;
      EXPECT_EQ(flat.schedule.latency, pipelined_latency(r, dp, n))
          << name << " x" << n;
    }
  }
}

TEST(Expand, OpCountScalesWithIterations) {
  const CyclicDfg loop = make_complex_mac_loop();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const ModuloResult r = software_pipeline(loop, dp);
  const ExpandedPipeline flat = expand_pipeline(r, dp, 4);
  EXPECT_EQ(flat.flat.graph.num_ops(), 4 * r.kernel.num_ops());
  EXPECT_EQ(flat.flat.num_moves, 4 * r.num_moves);
}

TEST(Expand, ThroughputApproachesII) {
  const CyclicDfg loop = make_iir_biquad_loop();
  const Datapath dp = parse_datapath("[2,2]");
  const ModuloResult r = software_pipeline(loop, dp);
  const int l10 = pipelined_latency(r, dp, 10);
  const int l20 = pipelined_latency(r, dp, 20);
  EXPECT_EQ(l20 - l10, 10 * r.ii);  // steady-state cost is II/iteration
}

TEST(Expand, PipeliningBeatsSequentialExecution) {
  // Non-pipelined execution repeats the list-scheduled body back to
  // back: N * L_body cycles. Pipelining must be strictly better for
  // loops whose body latency exceeds the II.
  const CyclicDfg loop = make_iir_biquad_loop();
  const Datapath dp = parse_datapath("[2,2|2,1]");
  const ModuloResult r = software_pipeline(loop, dp);

  const Dfg body = loop.body();
  const BindResult bound = bind_full(body, dp);
  const int sequential = 16 * bound.schedule.latency;
  const int pipelined = pipelined_latency(r, dp, 16);
  EXPECT_LT(pipelined, sequential);
}

TEST(Expand, SingleIterationMatchesKernelMakespan) {
  const CyclicDfg loop = make_complex_mac_loop();
  const Datapath dp = parse_datapath("[2,2]");
  const ModuloResult r = software_pipeline(loop, dp);
  const ExpandedPipeline flat = expand_pipeline(r, dp, 1);
  EXPECT_EQ(flat.schedule.latency, pipelined_latency(r, dp, 1));
  EXPECT_EQ(verify_schedule(flat.flat, dp, flat.schedule), "");
}

TEST(Expand, RejectsNonPositiveIterationCount) {
  const CyclicDfg loop = make_dot_product_loop();
  const Datapath dp = parse_datapath("[1,1]");
  const ModuloResult r = software_pipeline(loop, dp);
  EXPECT_THROW((void)expand_pipeline(r, dp, 0), std::invalid_argument);
  EXPECT_THROW((void)pipelined_latency(r, dp, 0), std::invalid_argument);
}

TEST(Expand, CrossIterationEdgesRespectDistance) {
  // dot product: acc#i depends on acc#(i-1); check the edge exists and
  // no edge reaches backwards in time.
  const CyclicDfg loop = make_dot_product_loop();
  const Datapath dp = parse_datapath("[1,1]");
  const ModuloResult r = software_pipeline(loop, dp);
  const ExpandedPipeline flat = expand_pipeline(r, dp, 3);
  // ids: regular ops iteration-major: p#0=0, acc#0=1, p#1=2, acc#1=3...
  EXPECT_TRUE(flat.flat.graph.has_edge(1, 3));  // acc#0 -> acc#1
  EXPECT_TRUE(flat.flat.graph.has_edge(3, 5));  // acc#1 -> acc#2
  EXPECT_FALSE(flat.flat.graph.has_edge(3, 1));
}

}  // namespace
}  // namespace cvb
