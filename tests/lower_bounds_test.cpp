// Unit tests for the binding-independent latency lower bounds, plus the
// global property that no binder result ever beats the bound.
#include <gtest/gtest.h>

#include "bind/driver.hpp"
#include "bind/lower_bounds.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

TEST(LowerBound, DependenceBoundIsCriticalPath) {
  const Dfg g = make_fir(8);  // chain-dominated: L_CP = 8
  const Datapath dp = parse_datapath("[4,4|4,4]");
  const LatencyLowerBound bound = latency_lower_bound(g, dp);
  EXPECT_EQ(bound.dependence, 8);
  EXPECT_EQ(bound.combined, 8);
}

TEST(LowerBound, ResourceBoundKicksInWhenStarved) {
  // 12 independent adds on a single ALU: resource bound 12.
  DfgBuilder bld;
  for (int i = 0; i < 12; ++i) {
    (void)bld.add(bld.input(), bld.input());
  }
  const Dfg g = std::move(bld).take();
  const LatencyLowerBound bound =
      latency_lower_bound(g, parse_datapath("[1,1]"));
  EXPECT_EQ(bound.dependence, 1);
  EXPECT_EQ(bound.resource, 12);
  EXPECT_EQ(bound.combined, 12);
}

TEST(LowerBound, ResourceBoundUsesCeilingDivision) {
  DfgBuilder bld;
  for (int i = 0; i < 7; ++i) {
    (void)bld.add(bld.input(), bld.input());
  }
  const Dfg g = std::move(bld).take();
  EXPECT_EQ(latency_lower_bound(g, parse_datapath("[2,1]")).resource, 4);
  EXPECT_EQ(latency_lower_bound(g, parse_datapath("[3,1]")).resource, 3);
}

TEST(LowerBound, MultiCycleOpsExtendTheBound) {
  DfgBuilder bld;
  (void)bld.mul(bld.input(), bld.input());
  (void)bld.mul(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 4;
  // Pipelined: two issues on one mult = 2 slots, + (lat-dii)=3 -> 5.
  std::array<int, kNumFuTypes> dii_piped{1, 1, 1};
  const Datapath piped({Cluster{{1, 1}}}, 1, lat, dii_piped);
  EXPECT_EQ(latency_lower_bound(g, piped).resource, 5);
  // Unpipelined (dii 4): 8 slots, no extra tail -> 8.
  std::array<int, kNumFuTypes> dii_serial{1, 4, 1};
  const Datapath serial({Cluster{{1, 1}}}, 1, lat, dii_serial);
  EXPECT_EQ(latency_lower_bound(g, serial).resource, 8);
}

TEST(LowerBound, EmptyGraphIsZero) {
  const LatencyLowerBound bound =
      latency_lower_bound(Dfg{}, parse_datapath("[1,1]"));
  EXPECT_EQ(bound.combined, 0);
}

TEST(LowerBound, NeverExceedsAchievedLatency) {
  // Global soundness check across the paper suite and several configs.
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    for (const std::string spec :
         {"[1,1|1,1]", "[2,1|1,1]", "[1,1|1,1|1,1]", "[3,1|2,2|1,3]"}) {
      const Datapath dp = parse_datapath(spec);
      const LatencyLowerBound bound = latency_lower_bound(kernel.dfg, dp);
      const BindResult r = bind_full(kernel.dfg, dp);
      EXPECT_LE(bound.combined, r.schedule.latency)
          << kernel.name << " on " << spec;
    }
  }
}

TEST(LowerBound, TightOnEmbarrassinglyParallelGraphs) {
  DfgBuilder bld;
  for (int i = 0; i < 8; ++i) {
    (void)bld.add(bld.input(), bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,1|2,1]");
  const LatencyLowerBound bound = latency_lower_bound(g, dp);
  const BindResult r = bind_full(g, dp);
  EXPECT_EQ(r.schedule.latency, bound.combined);  // binder achieves it
}

}  // namespace
}  // namespace cvb
