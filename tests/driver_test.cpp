// Unit tests for the driver: the L_PR / direction sweep, multi-start
// B-ITER seeding, and the BindResult contract.
#include <gtest/gtest.h>

#include "bind/driver.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

Dfg small_kernel() { return make_fir(10); }

TEST(Driver, InitialBestReturnsConsistentResult) {
  const Dfg g = small_kernel();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult r = bind_initial_best(g, dp);
  EXPECT_EQ(check_binding(g, r.binding, dp), "");
  EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "");
  EXPECT_EQ(r.bound.num_moves, r.schedule.num_moves);
  EXPECT_GE(r.init_ms, 0.0);
  EXPECT_EQ(r.iter_ms, 0.0);
}

TEST(Driver, FullNeverWorseThanInitialBest) {
  const Dfg g = small_kernel();
  for (const std::string spec : {"[1,1|1,1]", "[2,1|1,1]", "[1,1|1,1|1,1]"}) {
    const Datapath dp = parse_datapath(spec);
    const BindResult init = bind_initial_best(g, dp);
    const BindResult full = bind_full(g, dp);
    EXPECT_LE(full.schedule.latency, init.schedule.latency) << spec;
  }
}

TEST(Driver, SweepNeverWorseThanSingleRun) {
  // The driver's best-of-sweep must be at least as good as any fixed
  // parameter choice it covers.
  const Dfg g = benchmark_by_name("FFT").dfg;
  const Datapath dp = parse_datapath("[2,1|2,1]");

  DriverParams fixed;
  fixed.run_iterative = false;
  fixed.max_stretch = 0;
  fixed.try_reverse = false;
  const BindResult single = bind_initial_best(g, dp, fixed);

  DriverParams sweep;
  sweep.run_iterative = false;
  const BindResult best = bind_initial_best(g, dp, sweep);
  EXPECT_LE(best.schedule.latency, single.schedule.latency);
}

TEST(Driver, WinningParamsAreReported) {
  const Dfg g = small_kernel();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult r = bind_initial_best(g, dp);
  const int lcp = critical_path_length(g, dp.latencies());
  EXPECT_GE(r.best_init.profile_latency, lcp);
  EXPECT_LE(r.best_init.profile_latency, lcp + DriverParams{}.max_stretch);
}

TEST(Driver, IterativeDisabledMatchesInitial) {
  const Dfg g = small_kernel();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  DriverParams params;
  params.run_iterative = false;
  const BindResult full = bind_full(g, dp, params);
  const BindResult init = bind_initial_best(g, dp, params);
  EXPECT_EQ(full.binding, init.binding);
  EXPECT_EQ(full.iter_ms, 0.0);
}

TEST(Driver, MoreStartsNeverHurt) {
  const Dfg g = benchmark_by_name("DCT-DIF").dfg;
  const Datapath dp = parse_datapath("[2,1|1,1]");
  DriverParams one;
  one.iter_starts = 1;
  DriverParams six;
  six.iter_starts = 6;
  const BindResult r1 = bind_full(g, dp, one);
  const BindResult r6 = bind_full(g, dp, six);
  EXPECT_LE(r6.schedule.latency, r1.schedule.latency);
}

TEST(Driver, RejectsEmptyGraph) {
  const Datapath dp = parse_datapath("[1,1]");
  EXPECT_THROW((void)bind_initial_best(Dfg{}, dp), std::invalid_argument);
  EXPECT_THROW((void)bind_full(Dfg{}, dp), std::invalid_argument);
}

TEST(Driver, EvaluateBindingPackagesFields) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  (void)bld.add(x, bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult r = evaluate_binding(g, dp, {0, 1});
  EXPECT_EQ(r.binding, (Binding{0, 1}));
  EXPECT_EQ(r.bound.num_moves, 1);
  EXPECT_EQ(r.schedule.latency, 3);
}

TEST(Driver, IterStatsAccumulateAcrossStarts) {
  const Dfg g = benchmark_by_name("ARF").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult r = bind_full(g, dp);
  EXPECT_GT(r.iter_stats.candidates_evaluated, 0);
}

}  // namespace
}  // namespace cvb
