// End-to-end tests of the epoll NetServer: concurrent connections,
// the --once contract, mixed NDJSON/binary clients on one listener,
// framing-violation handling, and backpressure against a slow reader.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "net/frame.hpp"
#include "support/json.hpp"

#if defined(__linux__)
#define CVB_TEST_NET_SERVER 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "net/server.hpp"
#include "service/service.hpp"
#endif

#if defined(CVB_TEST_NET_SERVER)

namespace cvb::net {
namespace {

int connect_unix_retry(const std::string& path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return -1;
    }
    path.copy(addr.sun_path, path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

struct OwnedFrame {
  FrameType type;
  std::string payload;
};

/// Reads exactly `count` frames off `fd` (blocking).
std::vector<OwnedFrame> read_frames(int fd, std::size_t count) {
  std::vector<OwnedFrame> frames;
  std::string buf;
  char chunk[4096];
  while (frames.size() < count) {
    const DecodeResult decoded = decode_frame(buf);
    if (decoded.status == DecodeStatus::kFrame) {
      frames.push_back(
          OwnedFrame{decoded.frame.type, std::string(decoded.frame.payload)});
      buf.erase(0, decoded.consumed);
      continue;
    }
    if (decoded.status != DecodeStatus::kNeedMore) {
      ADD_FAILURE() << "decode error: "
                    << decode_status_message(decoded.status);
      break;
    }
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      ADD_FAILURE() << "EOF after " << frames.size() << " frames";
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  return frames;
}

std::string job_line(const std::string& id) {
  return R"({"id":")" + id +
         R"(","kernel":"ARF","datapath":"[1,1|1,1]","effort":"fast"})" "\n";
}

TEST(NetServer, ConcurrentConnectionsAllServed) {
  const std::string path = testing::TempDir() + "cvb_net_concurrent.sock";
  ServiceOptions sopts;
  sopts.num_workers = 2;
  Service service(sopts);
  NetServerOptions nopts;
  nopts.socket_path = path;
  NetServer server(service, nopts);
  std::ostringstream err;
  std::thread serving([&] { (void)server.run(err); });
  ASSERT_TRUE(server.wait_until_listening()) << err.str();

  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 3;
  std::vector<std::thread> clients;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_unix_retry(path);
      ASSERT_GE(fd, 0);
      std::string request;
      for (int j = 0; j < kJobsPerClient; ++j) {
        request += job_line("c" + std::to_string(c) + "-" + std::to_string(j));
      }
      request += "{\"cmd\":\"quit\"}\n";
      ASSERT_TRUE(send_all(fd, request));
      const std::string reply = read_to_eof(fd);
      ::close(fd);
      std::istringstream lines(reply);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) {
          continue;
        }
        const JsonValue response = JsonValue::parse(line);
        const JsonValue* id = response.find("id");
        ASSERT_NE(id, nullptr) << line;
        EXPECT_EQ(id->as_string().substr(0, 2), "c" + std::to_string(c))
            << "response crossed connections: " << line;
        if (response.find("status")->as_string() == "ok") {
          ++ok_counts[c];
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  server.request_shutdown();
  serving.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[c], kJobsPerClient) << "client " << c;
  }
  EXPECT_GE(service.metrics().counter("net_accepted").value(), kClients);
  EXPECT_EQ(service.metrics().gauge("net_open_connections").value(), 0);
}

TEST(NetServer, OnceServesFirstConnectionThenExits) {
  // The PR 2 --once contract, now on the epoll path: serve exactly the
  // first connection to completion, then return 0 without needing a
  // quit command or an explicit shutdown.
  const std::string path = testing::TempDir() + "cvb_net_once.sock";
  std::istringstream unused_in;
  std::ostringstream unused_out;
  std::ostringstream err;
  int rc = -1;
  std::thread serving([&] {
    rc = run_serve_cli({"--socket", path, "--once", "--workers", "1"},
                       unused_in, unused_out, err);
  });
  const int fd = connect_unix_retry(path);
  ASSERT_GE(fd, 0) << err.str();
  ASSERT_TRUE(send_all(fd, job_line("once")));
  // Half-close: the server must still deliver the response, then close.
  ::shutdown(fd, SHUT_WR);
  const std::string reply = read_to_eof(fd);
  ::close(fd);
  serving.join();
  EXPECT_EQ(rc, 0) << err.str();
  const JsonValue response = JsonValue::parse(reply);
  EXPECT_EQ(response.find("id")->as_string(), "once");
  EXPECT_EQ(response.find("status")->as_string(), "ok");
}

TEST(NetServer, MixedBinaryAndNdjsonClients) {
  const std::string path = testing::TempDir() + "cvb_net_mixed.sock";
  ServiceOptions sopts;
  sopts.num_workers = 1;
  Service service(sopts);
  NetServerOptions nopts;
  nopts.socket_path = path;
  NetServer server(service, nopts);
  std::ostringstream err;
  std::thread serving([&] { (void)server.run(err); });
  ASSERT_TRUE(server.wait_until_listening()) << err.str();

  // Binary client: ping, then a job request, as frames.
  const int bin_fd = connect_unix_retry(path);
  ASSERT_GE(bin_fd, 0);
  std::string wire;
  append_frame(wire, FrameType::kPing, "probe-7");
  append_frame(wire, FrameType::kRequest,
               R"({"id":"bin","kernel":"EWF","datapath":"[2,1|1,1]",)"
               R"("effort":"fast"})");
  ASSERT_TRUE(send_all(bin_fd, wire));

  // NDJSON client on the same listener at the same time.
  const int txt_fd = connect_unix_retry(path);
  ASSERT_GE(txt_fd, 0);
  ASSERT_TRUE(send_all(txt_fd, job_line("txt") + "{\"cmd\":\"quit\"}\n"));

  const std::vector<OwnedFrame> frames = read_frames(bin_fd, 2);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kPong);
  EXPECT_EQ(frames[0].payload, "probe-7");
  EXPECT_EQ(frames[1].type, FrameType::kResponse);
  const JsonValue bin_response = JsonValue::parse(frames[1].payload);
  EXPECT_EQ(bin_response.find("id")->as_string(), "bin");
  EXPECT_EQ(bin_response.find("status")->as_string(), "ok");
  ::close(bin_fd);

  const std::string txt_reply = read_to_eof(txt_fd);
  ::close(txt_fd);
  const JsonValue txt_response = JsonValue::parse(txt_reply);
  EXPECT_EQ(txt_response.find("id")->as_string(), "txt");
  EXPECT_EQ(txt_response.find("status")->as_string(), "ok");

  server.request_shutdown();
  serving.join();
  EXPECT_GE(service.metrics().counter("net_conns_binary").value(), 1);
  EXPECT_GE(service.metrics().counter("net_conns_ndjson").value(), 1);
  EXPECT_GE(service.metrics().counter("net_pings").value(), 1);
}

TEST(NetServer, FramingViolationGetsTypedErrorThenClose) {
  const std::string path = testing::TempDir() + "cvb_net_badframe.sock";
  ServiceOptions sopts;
  sopts.num_workers = 1;
  Service service(sopts);
  NetServerOptions nopts;
  nopts.socket_path = path;
  NetServer server(service, nopts);
  std::ostringstream err;
  std::thread serving([&] { (void)server.run(err); });
  ASSERT_TRUE(server.wait_until_listening()) << err.str();

  const int fd = connect_unix_retry(path);
  ASSERT_GE(fd, 0);
  // Valid magic, bogus version: sniffed as binary, then rejected.
  const std::string bad = {static_cast<char>(kFrameMagic0),
                           static_cast<char>(kFrameMagic1),
                           static_cast<char>(0x7F)};
  ASSERT_TRUE(send_all(fd, bad));
  const std::string reply = read_to_eof(fd);  // error frame, then EOF
  ::close(fd);
  const DecodeResult decoded = decode_frame(reply);
  ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
  EXPECT_EQ(decoded.frame.type, FrameType::kError);
  EXPECT_EQ(decoded.consumed, reply.size());
  const JsonValue error = JsonValue::parse(std::string(decoded.frame.payload));
  EXPECT_EQ(error.find("status")->as_string(), "invalid_request");

  server.request_shutdown();
  serving.join();
  EXPECT_GE(service.metrics().counter("net_protocol_errors").value(), 1);
}

TEST(NetServer, SlowReaderTriggersBackpressurePauseAndRecovers) {
  const std::string path = testing::TempDir() + "cvb_net_slow.sock";
  ServiceOptions sopts;
  sopts.num_workers = 1;
  Service service(sopts);
  NetServerOptions nopts;
  nopts.socket_path = path;
  nopts.write_budget_bytes = 16 * 1024;
  NetServer server(service, nopts);
  std::ostringstream err;
  std::thread serving([&] { (void)server.run(err); });
  ASSERT_TRUE(server.wait_until_listening()) << err.str();

  const int fd = connect_unix_retry(path);
  ASSERT_GE(fd, 0);
  // 2 MiB of pong traffic against a 16 KiB budget: once kernel socket
  // buffers fill, the server's write backlog crosses the budget and it
  // must stop reading us instead of buffering without bound.
  constexpr int kPings = 4096;
  const std::string payload(512, 'p');
  std::thread writer([&] {
    std::string wire;
    append_frame(wire, FrameType::kPing, payload);
    for (int i = 0; i < kPings; ++i) {
      if (!send_all(fd, wire)) {
        return;
      }
    }
  });
  // Let the backlog build while we (the slow reader) sit idle.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::vector<OwnedFrame> pongs = read_frames(fd, kPings);
  writer.join();
  ::close(fd);
  server.request_shutdown();
  serving.join();

  ASSERT_EQ(pongs.size(), static_cast<std::size_t>(kPings));
  for (const OwnedFrame& pong : pongs) {
    ASSERT_EQ(pong.type, FrameType::kPong);
    ASSERT_EQ(pong.payload, payload);
  }
  EXPECT_GE(service.metrics().counter("net_backpressure_pauses").value(), 1);
  EXPECT_GE(service.metrics().counter("net_backpressure_resumes").value(), 1);
}

TEST(NetServer, ShutdownCommandDrainsAndStops) {
  const std::string path = testing::TempDir() + "cvb_net_shutdown.sock";
  std::istringstream unused_in;
  std::ostringstream unused_out;
  std::ostringstream err;
  int rc = -1;
  std::thread serving([&] {
    rc = run_serve_cli({"--socket", path, "--workers", "1"}, unused_in,
                       unused_out, err);
  });
  const int fd = connect_unix_retry(path);
  ASSERT_GE(fd, 0) << err.str();
  ASSERT_TRUE(send_all(fd, job_line("last") + "{\"cmd\":\"shutdown\"}\n"));
  const std::string reply = read_to_eof(fd);
  ::close(fd);
  serving.join();
  EXPECT_EQ(rc, 0) << err.str();
  // Both the job response and the shutdown ack arrive before close.
  std::istringstream lines(reply);
  std::string line;
  bool saw_job = false;
  bool saw_ack = false;
  while (std::getline(lines, line)) {
    if (line.empty()) {
      continue;
    }
    const JsonValue response = JsonValue::parse(line);
    const JsonValue* id = response.find("id");
    if (id != nullptr && id->as_string() == "last") {
      saw_job = response.find("status")->as_string() == "ok";
    }
    const JsonValue* cmd = response.find("cmd");
    if (cmd != nullptr && cmd->as_string() == "shutdown") {
      saw_ack = true;
    }
  }
  EXPECT_TRUE(saw_job) << reply;
  EXPECT_TRUE(saw_ack) << reply;
}

}  // namespace
}  // namespace cvb::net

#endif  // CVB_TEST_NET_SERVER
