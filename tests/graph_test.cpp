// Unit tests for the DFG core and its analyses (topological order,
// ASAP/ALAP/mobility, critical path, components, reversal, DOT export).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/analysis.hpp"
#include "graph/components.hpp"
#include "graph/dfg.hpp"
#include "graph/dot.hpp"

namespace cvb {
namespace {

/// Small diamond: a -> b, a -> c, b -> d, c -> d.
Dfg diamond() {
  Dfg g;
  const OpId a = g.add_op(OpType::kAdd, "a");
  const OpId b = g.add_op(OpType::kAdd, "b");
  const OpId c = g.add_op(OpType::kMul, "c");
  const OpId d = g.add_op(OpType::kAdd, "d");
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

// ---------------------------------------------------------------- basics

TEST(Dfg, AddOpAssignsDenseIds) {
  Dfg g;
  EXPECT_EQ(g.add_op(OpType::kAdd), 0);
  EXPECT_EQ(g.add_op(OpType::kMul), 1);
  EXPECT_EQ(g.num_ops(), 2);
}

TEST(Dfg, GeneratedNamesUseMnemonic) {
  Dfg g;
  const OpId v = g.add_op(OpType::kMul);
  EXPECT_EQ(g.name(v), "mul0");
}

TEST(Dfg, ExplicitNamesAreKept) {
  Dfg g;
  const OpId v = g.add_op(OpType::kAdd, "my_op");
  EXPECT_EQ(g.name(v), "my_op");
}

TEST(Dfg, EdgesUpdateAdjacency) {
  const Dfg g = diamond();
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.preds(3).size(), 2u);
  EXPECT_EQ(g.succs(0).size(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Dfg, RejectsSelfLoop) {
  Dfg g;
  const OpId v = g.add_op(OpType::kAdd);
  EXPECT_THROW(g.add_edge(v, v), std::invalid_argument);
}

TEST(Dfg, RejectsDuplicateEdge) {
  Dfg g;
  const OpId a = g.add_op(OpType::kAdd);
  const OpId b = g.add_op(OpType::kAdd);
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), std::invalid_argument);
}

TEST(Dfg, RejectsInvalidIds) {
  Dfg g;
  const OpId a = g.add_op(OpType::kAdd);
  EXPECT_THROW(g.add_edge(a, 5), std::invalid_argument);
  EXPECT_THROW((void)g.type(-1), std::invalid_argument);
  EXPECT_THROW((void)g.preds(99), std::invalid_argument);
}

TEST(Dfg, SourcesAndSinks) {
  const Dfg g = diamond();
  EXPECT_EQ(g.sources(), std::vector<OpId>{0});
  EXPECT_EQ(g.sinks(), std::vector<OpId>{3});
}

TEST(Dfg, CountsByType) {
  const Dfg g = diamond();
  EXPECT_EQ(g.count_fu_type(FuType::kAlu), 3);
  EXPECT_EQ(g.count_fu_type(FuType::kMult), 1);
  EXPECT_EQ(g.count_op_type(OpType::kAdd), 3);
  EXPECT_EQ(g.count_op_type(OpType::kMove), 0);
}

TEST(Dfg, ValidatePassesOnDag) { EXPECT_NO_THROW(diamond().validate()); }

TEST(Dfg, ReversedFlipsEdges) {
  const Dfg g = diamond();
  const Dfg r = g.reversed();
  EXPECT_EQ(r.num_ops(), g.num_ops());
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(3, 2));
  EXPECT_EQ(r.type(2), OpType::kMul);  // types and ids preserved
}

TEST(Dfg, ReverseTwiceIsIdentity) {
  const Dfg g = diamond();
  const Dfg rr = g.reversed().reversed();
  for (OpId v = 0; v < g.num_ops(); ++v) {
    std::vector<OpId> a(g.succs(v).begin(), g.succs(v).end());
    std::vector<OpId> b(rr.succs(v).begin(), rr.succs(v).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

// ---------------------------------------------------------- topo + cycle

TEST(Analysis, TopologicalOrderRespectsEdges) {
  const Dfg g = diamond();
  const std::vector<OpId> order = topological_order(g);
  std::vector<int> position(static_cast<std::size_t>(g.num_ops()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (OpId v = 0; v < g.num_ops(); ++v) {
    for (const OpId s : g.succs(v)) {
      EXPECT_LT(position[static_cast<std::size_t>(v)],
                position[static_cast<std::size_t>(s)]);
    }
  }
}

TEST(Analysis, CycleDetected) {
  Dfg g;
  const OpId a = g.add_op(OpType::kAdd);
  const OpId b = g.add_op(OpType::kAdd);
  const OpId c = g.add_op(OpType::kAdd);
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_THROW((void)topological_order(g), std::logic_error);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(Analysis, EmptyGraphTopoIsEmpty) {
  EXPECT_TRUE(topological_order(Dfg{}).empty());
}

// ---------------------------------------------------------- asap / alap

TEST(Analysis, AsapOnDiamondUnitLatency) {
  const std::vector<int> asap = asap_starts(diamond(), unit_latencies());
  EXPECT_EQ(asap, (std::vector<int>{0, 1, 1, 2}));
}

TEST(Analysis, AsapHonorsLatencies) {
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 3;
  const std::vector<int> asap = asap_starts(diamond(), lat);
  // d waits for c (mul, starts at 1, takes 3) -> start 4.
  EXPECT_EQ(asap[3], 4);
}

TEST(Analysis, CriticalPathDiamond) {
  EXPECT_EQ(critical_path_length(diamond(), unit_latencies()), 3);
}

TEST(Analysis, CriticalPathEmptyGraphIsZero) {
  EXPECT_EQ(critical_path_length(Dfg{}, unit_latencies()), 0);
}

TEST(Analysis, AlapAtCriticalPathGivesZeroMobilityOnCriticalPath) {
  const Dfg g = diamond();
  const std::vector<int> alap = alap_starts(g, unit_latencies(), 3);
  EXPECT_EQ(alap[0], 0);
  EXPECT_EQ(alap[3], 2);
  // b and c are both on length-3 paths: zero mobility.
  EXPECT_EQ(alap[1], 1);
  EXPECT_EQ(alap[2], 1);
}

TEST(Analysis, AlapRejectsTargetBelowCriticalPath) {
  EXPECT_THROW((void)alap_starts(diamond(), unit_latencies(), 2),
               std::invalid_argument);
}

TEST(Analysis, MobilityGrowsWithTarget) {
  const Timing tight = compute_timing(diamond(), unit_latencies(), 3);
  const Timing loose = compute_timing(diamond(), unit_latencies(), 6);
  for (OpId v = 0; v < 4; ++v) {
    EXPECT_EQ(loose.mobility[static_cast<std::size_t>(v)],
              tight.mobility[static_cast<std::size_t>(v)] + 3);
  }
}

TEST(Analysis, ComputeTimingRaisesLowTargets) {
  const Timing t = compute_timing(diamond(), unit_latencies(), 0);
  EXPECT_EQ(t.target_latency, 3);
  EXPECT_EQ(t.critical_path, 3);
}

TEST(Analysis, MobilityNonNegativeEverywhere) {
  const Timing t = compute_timing(diamond(), unit_latencies(), 5);
  for (const int m : t.mobility) {
    EXPECT_GE(m, 0);
  }
}

TEST(Analysis, ConsumerCounts) {
  const std::vector<int> counts = consumer_counts(diamond());
  EXPECT_EQ(counts, (std::vector<int>{2, 1, 1, 0}));
}

// ------------------------------------------------------------ components

TEST(Components, SingleComponentDiamond) {
  EXPECT_EQ(num_components(diamond()), 1);
}

TEST(Components, CountsIsolatedOps) {
  Dfg g;
  g.add_op(OpType::kAdd);
  g.add_op(OpType::kAdd);
  EXPECT_EQ(num_components(g), 2);
}

TEST(Components, EmptyGraphHasZero) { EXPECT_EQ(num_components(Dfg{}), 0); }

TEST(Components, LabelsAreDenseAndConsistent) {
  Dfg g;
  const OpId a = g.add_op(OpType::kAdd);
  const OpId b = g.add_op(OpType::kAdd);
  const OpId c = g.add_op(OpType::kAdd);
  g.add_edge(a, b);
  const std::vector<int> labels = component_labels(g);
  EXPECT_EQ(labels[static_cast<std::size_t>(a)],
            labels[static_cast<std::size_t>(b)]);
  EXPECT_NE(labels[static_cast<std::size_t>(a)],
            labels[static_cast<std::size_t>(c)]);
  EXPECT_EQ(*std::max_element(labels.begin(), labels.end()), 1);
}

TEST(Components, UndirectedReachabilityJoins) {
  // a -> c <- b : one component despite no directed path a..b.
  Dfg g;
  const OpId a = g.add_op(OpType::kAdd);
  const OpId b = g.add_op(OpType::kAdd);
  const OpId c = g.add_op(OpType::kAdd);
  g.add_edge(a, c);
  g.add_edge(b, c);
  EXPECT_EQ(num_components(g), 1);
}

// -------------------------------------------------------------------- DOT

TEST(Dot, PlainExportMentionsEveryOpAndEdge) {
  std::ostringstream out;
  write_dot(out, diamond(), "g");
  const std::string text = out.str();
  EXPECT_NE(text.find("digraph g"), std::string::npos);
  EXPECT_NE(text.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(text.find("n2 -> n3"), std::string::npos);
  EXPECT_NE(text.find("mul"), std::string::npos);
}

TEST(Dot, BoundExportGroupsByCluster) {
  std::ostringstream out;
  write_dot_bound(out, diamond(), {0, 0, 1, 1}, "bg");
  const std::string text = out.str();
  EXPECT_NE(text.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(text.find("subgraph cluster_1"), std::string::npos);
}

TEST(Dot, BoundExportRejectsSizeMismatch) {
  std::ostringstream out;
  EXPECT_THROW(write_dot_bound(out, diamond(), {0, 1}),
               std::invalid_argument);
}

TEST(Dot, NegativeClusterRenderedOutsideClusters) {
  std::ostringstream out;
  write_dot_bound(out, diamond(), {0, 0, 0, -1});
  EXPECT_NE(out.str().find("shape=box"), std::string::npos);
}

}  // namespace
}  // namespace cvb
