// Unit tests for the functional executor, and the headline semantic
// property: binding + move insertion + scheduling never change what a
// basic block computes, on every paper kernel and every algorithm.
#include <gtest/gtest.h>

#include "baselines/annealing.hpp"
#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/executor.hpp"

namespace cvb {
namespace {

std::vector<std::int64_t> test_inputs() {
  return {3, -7, 11, 2, -1, 5, 13, -4, 9, 6, -8, 1};
}

TEST(Executor, ReferenceComputesArithmetic) {
  DfgBuilder b;
  const Value s = b.add(b.input(), b.input(), "s");    // 3 + (-7) = -4
  const Value d = b.sub(s, b.input(), "d");            // -4 - 11 = -15
  (void)b.mul(d, s, "p");                              // -15 * -4 = 60
  const Dfg g = std::move(b).take();
  const std::vector<std::int64_t> r = execute_reference(g, test_inputs());
  EXPECT_EQ(r[0], -4);
  EXPECT_EQ(r[1], -15);
  EXPECT_EQ(r[2], 60);
}

TEST(Executor, CoefficientMulIsDeterministicPerName) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  (void)b.cmul(x, "k");
  const Dfg g = std::move(b).take();
  const auto r1 = execute_reference(g, test_inputs());
  const auto r2 = execute_reference(g, test_inputs());
  EXPECT_EQ(r1[1], r2[1]);
  EXPECT_NE(r1[1], 0);
}

TEST(Executor, SquaringUsesSameValueTwice) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");  // -4
  (void)b.mul(x, x, "x2");                           // 16
  const Dfg g = std::move(b).take();
  EXPECT_EQ(execute_reference(g, test_inputs())[1], 16);
}

TEST(Executor, RejectsMissingOperandInfoAndEmptyInputs) {
  Dfg g;  // raw source op without operand records
  g.add_op(OpType::kAdd);
  EXPECT_THROW((void)execute_reference(g, test_inputs()),
               std::invalid_argument);
  DfgBuilder b;
  (void)b.add(b.input(), b.input());
  const Dfg g2 = std::move(b).take();
  EXPECT_THROW((void)execute_reference(g2, {}), std::invalid_argument);
}

TEST(Executor, ScheduledExecutionMatchesReferenceWithMoves) {
  DfgBuilder b;
  const Value s1 = b.add(b.input(), b.input(), "s1");
  const Value s2 = b.add(b.input(), b.input(), "s2");
  (void)b.mul(s1, s2, "p");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BoundDfg bound = build_bound_dfg(g, {0, 1, 0}, dp);
  ASSERT_GT(bound.num_moves, 0);
  const Schedule sched = list_schedule(bound, dp);
  EXPECT_EQ(check_semantics(g, bound, dp, sched, test_inputs()), "");
}

TEST(Executor, DetectsBrokenDataflow) {
  // Wire a bound graph by hand with the move reading the wrong
  // producer: the checker must notice the value difference.
  DfgBuilder b;
  const Value s1 = b.add(b.input(), b.input(), "s1");   // -4
  const Value s2 = b.sub(b.input(), b.input(), "s2");   // 11-2 = 9
  (void)b.mul(s1, s2, "p");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  BoundDfg bound;
  for (OpId v = 0; v < g.num_ops(); ++v) {
    bound.graph.add_op(g.type(v), g.name(v));
  }
  bound.graph.add_operand(0, kNoOp);  // s1 live-ins
  bound.graph.add_operand(0, kNoOp);
  bound.graph.add_operand(1, kNoOp);  // s2 live-ins
  bound.graph.add_operand(1, kNoOp);
  bound.place = {0, 1, 0};
  const OpId m = bound.graph.add_op(OpType::kMove, "t1");
  bound.place.push_back(kNoCluster);
  bound.num_moves = 1;
  bound.move_producer = {0};  // claims to carry s1
  bound.move_dest = {0};
  bound.graph.add_operand(m, 0);  // but actually carries s1 -> fine
  bound.graph.add_operand(2, 0);  // p reads s1 twice (wrong: wants s2)
  bound.graph.add_operand(2, m);
  const Schedule sched = list_schedule(bound, dp);
  EXPECT_NE(check_semantics(g, bound, dp, sched, test_inputs()), "");
}

TEST(Executor, EveryPaperKernelPreservesSemantics) {
  // The headline property: for every benchmark and several datapaths,
  // the fully bound and scheduled code computes exactly the original
  // dataflow values.
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    for (const std::string spec : {"[1,1|1,1]", "[2,1|1,1]",
                                   "[1,1|1,1|1,1]"}) {
      const Datapath dp = parse_datapath(spec);
      const BindResult r = bind_full(kernel.dfg, dp);
      EXPECT_EQ(check_semantics(kernel.dfg, r.bound, dp, r.schedule,
                                test_inputs()),
                "")
          << kernel.name << " on " << spec;
    }
  }
}

TEST(Executor, BaselineAlgorithmsPreserveSemanticsToo) {
  const Dfg g = benchmark_by_name("FFT").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult pcc = pcc_binding(g, dp);
  EXPECT_EQ(check_semantics(g, pcc.bound, dp, pcc.schedule, test_inputs()),
            "");
  const BindResult sa = annealing_binding(g, dp);
  EXPECT_EQ(check_semantics(g, sa.bound, dp, sa.schedule, test_inputs()),
            "");
}

TEST(Executor, MoveLatencyTwoStillPreservesSemantics) {
  const Dfg g = benchmark_by_name("ARF").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]", 1, 2);
  const BindResult r = bind_full(g, dp);
  EXPECT_EQ(check_semantics(g, r.bound, dp, r.schedule, test_inputs()), "");
}

}  // namespace
}  // namespace cvb
