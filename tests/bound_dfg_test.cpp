// Unit tests for bound-DFG construction: move insertion, per-destination
// transfer sharing, and the Figure 1 example from the paper.
#include <gtest/gtest.h>

#include "bind/bound_dfg.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

TEST(BoundDfg, NoMovesWhenCoLocated) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input());
  (void)b.mul(x, b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");

  const BoundDfg bound = build_bound_dfg(g, {0, 0}, dp);
  EXPECT_EQ(bound.num_moves, 0);
  EXPECT_EQ(bound.graph.num_ops(), 2);
  EXPECT_EQ(bound.graph.num_edges(), 1);
  EXPECT_EQ(bound.num_original_ops(), 2);
}

TEST(BoundDfg, Figure1Example) {
  // Paper Figure 1: v1 -> v2 -> v3 with v2 and v3 on different clusters
  // requires a transfer t1 between v2 and v3.
  DfgBuilder b;
  const Value v1 = b.add(b.input(), b.input(), "v1");
  const Value v2 = b.add(v1, b.input(), "v2");
  (void)b.add(v2, b.input(), "v3");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");

  const BoundDfg bound = build_bound_dfg(g, {0, 0, 1}, dp);
  ASSERT_EQ(bound.num_moves, 1);
  const OpId t1 = 3;
  EXPECT_EQ(bound.graph.type(t1), OpType::kMove);
  EXPECT_TRUE(bound.graph.has_edge(1, t1));   // v2 -> t1
  EXPECT_TRUE(bound.graph.has_edge(t1, 2));   // t1 -> v3
  EXPECT_FALSE(bound.graph.has_edge(1, 2));   // direct edge rewritten
  EXPECT_EQ(bound.place[static_cast<std::size_t>(t1)], kNoCluster);
  EXPECT_TRUE(bound.is_move_op(t1));
  EXPECT_FALSE(bound.is_move_op(1));
  EXPECT_EQ(bound.move_producer[0], 1);
  EXPECT_EQ(bound.move_dest[0], 1);
}

TEST(BoundDfg, TransferSharedPerDestinationCluster) {
  // One producer feeding two consumers in the same remote cluster needs
  // a single transfer.
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  (void)b.add(x, b.input(), "c1");
  (void)b.add(x, b.input(), "c2");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");

  const BoundDfg bound = build_bound_dfg(g, {0, 1, 1}, dp);
  EXPECT_EQ(bound.num_moves, 1);
  const OpId t = 3;
  EXPECT_TRUE(bound.graph.has_edge(t, 1));
  EXPECT_TRUE(bound.graph.has_edge(t, 2));
}

TEST(BoundDfg, SeparateTransfersPerDistinctDestination) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  (void)b.add(x, b.input(), "c1");
  (void)b.add(x, b.input(), "c2");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1|1,1]");

  const BoundDfg bound = build_bound_dfg(g, {0, 1, 2}, dp);
  EXPECT_EQ(bound.num_moves, 2);
}

TEST(BoundDfg, MixedLocalAndRemoteConsumers) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  (void)b.add(x, b.input(), "local");
  (void)b.add(x, b.input(), "remote");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");

  const BoundDfg bound = build_bound_dfg(g, {0, 0, 1}, dp);
  EXPECT_EQ(bound.num_moves, 1);
  EXPECT_TRUE(bound.graph.has_edge(0, 1));  // local edge kept
  EXPECT_FALSE(bound.graph.has_edge(0, 2));
}

TEST(BoundDfg, BoundGraphStaysAcyclic) {
  DfgBuilder b;
  Value acc = b.add(b.input(), b.input());
  for (int i = 0; i < 10; ++i) {
    acc = b.mul(acc, b.input());
  }
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  Binding alternating;
  for (OpId v = 0; v < g.num_ops(); ++v) {
    alternating.push_back(v % 2);
  }
  const BoundDfg bound = build_bound_dfg(g, alternating, dp);
  EXPECT_NO_THROW(bound.graph.validate());
  EXPECT_EQ(bound.num_moves, 10);  // every chain edge crosses
}

TEST(BoundDfg, CriticalPathGrowsByMoveLatency) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input());
  (void)b.add(x, b.input());
  const Dfg g = std::move(b).take();

  const Datapath dp = parse_datapath("[1,1|1,1]", 2, /*move_latency=*/2);
  const BoundDfg split = build_bound_dfg(g, {0, 1}, dp);
  EXPECT_EQ(critical_path_length(split.graph, dp.latencies()), 4);  // 1+2+1
  const BoundDfg together = build_bound_dfg(g, {0, 0}, dp);
  EXPECT_EQ(critical_path_length(together.graph, dp.latencies()), 2);
}

TEST(BoundDfg, InvalidBindingRejected) {
  DfgBuilder b;
  (void)b.add(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1]");
  EXPECT_THROW((void)build_bound_dfg(g, {3}, dp), std::logic_error);
}

}  // namespace
}  // namespace cvb
