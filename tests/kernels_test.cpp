// Pins every benchmark generator to the paper's published graph
// statistics (Table 1 sub-headers): N_V, N_CC, and L_CP under unit
// latencies. These tests are the contract that our reconstructed DFGs
// exercise the binder the way the paper's benchmarks did.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/components.hpp"
#include "kernels/kernels.hpp"

namespace cvb {
namespace {

class BenchmarkStats : public ::testing::TestWithParam<BenchmarkKernel> {};

TEST_P(BenchmarkStats, MatchesPaperNv) {
  EXPECT_EQ(GetParam().dfg.num_ops(), GetParam().paper_nv);
}

TEST_P(BenchmarkStats, MatchesPaperNcc) {
  EXPECT_EQ(num_components(GetParam().dfg), GetParam().paper_ncc);
}

TEST_P(BenchmarkStats, MatchesPaperLcp) {
  EXPECT_EQ(critical_path_length(GetParam().dfg, unit_latencies()),
            GetParam().paper_lcp);
}

TEST_P(BenchmarkStats, IsAcyclic) {
  EXPECT_NO_THROW(GetParam().dfg.validate());
}

TEST_P(BenchmarkStats, HasNoMoveOps) {
  EXPECT_EQ(GetParam().dfg.count_op_type(OpType::kMove), 0);
}

TEST_P(BenchmarkStats, OpsHaveAtMostTwoOperands) {
  const Dfg& dfg = GetParam().dfg;
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    EXPECT_LE(dfg.preds(v).size(), 2u) << dfg.name(v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSuite, BenchmarkStats, ::testing::ValuesIn(benchmark_suite()),
    [](const ::testing::TestParamInfo<BenchmarkKernel>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(KernelMix, EwfHasPaperOpMix) {
  const Dfg ewf = make_ewf();
  EXPECT_EQ(ewf.count_fu_type(FuType::kAlu), 26);   // additions
  EXPECT_EQ(ewf.count_fu_type(FuType::kMult), 8);   // multiplications
}

TEST(KernelMix, ArfHasPaperOpMix) {
  const Dfg arf = make_arf();
  EXPECT_EQ(arf.count_fu_type(FuType::kAlu), 12);
  EXPECT_EQ(arf.count_fu_type(FuType::kMult), 16);
}

TEST(KernelMix, DctDit2IsTwoDisjointCopies) {
  const Dfg dit = make_dct_dit();
  const Dfg dit2 = make_dct_dit2();
  EXPECT_EQ(dit2.num_ops(), 2 * dit.num_ops());
  EXPECT_EQ(dit2.num_edges(), 2 * dit.num_edges());
  // Second copy mirrors the first exactly.
  const OpId base = dit.num_ops();
  for (OpId v = 0; v < dit.num_ops(); ++v) {
    EXPECT_EQ(dit2.type(base + v), dit.type(v));
    EXPECT_EQ(dit2.succs(base + v).size(), dit.succs(v).size());
  }
}

TEST(KernelFir, StructureIsMultiplyBankPlusAccumulateChain) {
  const Dfg fir = make_fir(8);
  EXPECT_EQ(fir.num_ops(), 15);  // 8 muls + 7 adds
  EXPECT_EQ(fir.count_fu_type(FuType::kMult), 8);
  EXPECT_EQ(fir.count_fu_type(FuType::kAlu), 7);
  EXPECT_EQ(critical_path_length(fir, unit_latencies()), 8);  // m0 + chain
  EXPECT_EQ(num_components(fir), 1);
}

TEST(KernelFir, SingleTapIsOneMul) {
  const Dfg fir = make_fir(1);
  EXPECT_EQ(fir.num_ops(), 1);
  EXPECT_EQ(fir.count_fu_type(FuType::kMult), 1);
}

TEST(KernelFir, RejectsNonPositiveTaps) {
  EXPECT_THROW((void)make_fir(0), std::invalid_argument);
}

TEST(KernelUnroll, FactorOneIsIdentity) {
  const Dfg ewf = make_ewf();
  const Dfg copy = unroll(ewf, 1);
  EXPECT_EQ(copy.num_ops(), ewf.num_ops());
  EXPECT_EQ(copy.num_edges(), ewf.num_edges());
}

TEST(KernelUnroll, RejectsNonPositiveFactor) {
  EXPECT_THROW((void)unroll(make_fir(2), 0), std::invalid_argument);
}

TEST(KernelRandom, RespectsRequestedShape) {
  Rng rng(42);
  RandomDagParams params;
  params.num_ops = 40;
  params.num_layers = 7;
  const Dfg dag = make_random_layered(params, rng);
  EXPECT_EQ(dag.num_ops(), 40);
  EXPECT_EQ(critical_path_length(dag, unit_latencies()), 7);
  EXPECT_NO_THROW(dag.validate());
}

TEST(KernelRandom, IsDeterministicPerSeed) {
  RandomDagParams params;
  Rng rng_a(7);
  Rng rng_b(7);
  const Dfg a = make_random_layered(params, rng_a);
  const Dfg b = make_random_layered(params, rng_b);
  ASSERT_EQ(a.num_ops(), b.num_ops());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (OpId v = 0; v < a.num_ops(); ++v) {
    EXPECT_EQ(a.type(v), b.type(v));
  }
}

TEST(KernelRandom, RejectsBadParams) {
  Rng rng(1);
  RandomDagParams params;
  params.num_ops = 3;
  params.num_layers = 5;
  EXPECT_THROW((void)make_random_layered(params, rng), std::invalid_argument);
}

TEST(KernelRegistry, LookupByNameFindsEveryEntry) {
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    EXPECT_EQ(benchmark_by_name(kernel.name).dfg.num_ops(),
              kernel.dfg.num_ops());
  }
}

TEST(KernelRegistry, LookupRejectsUnknownName) {
  EXPECT_THROW((void)benchmark_by_name("NOPE"), std::invalid_argument);
}

}  // namespace
}  // namespace cvb
