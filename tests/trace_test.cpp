// Unit tests for the tracing layer (support/trace.hpp): span
// recording and nesting, cross-thread parent links, the disabled-path
// zero-allocation guarantee, drop accounting, the Chrome trace_event
// exporter, and the end-to-end `cvbind --trace-out` golden run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cli/cli.hpp"
#include "support/json.hpp"
#include "support/trace.hpp"

// Global allocation counter for the zero-cost-when-disabled test. A
// TU-local definition of the replaceable global operator new covers
// the whole test binary; gtest_discover_tests runs each test in its
// own process, so the counter is quiescent while a test body runs.
namespace {
std::atomic<long long> g_allocations{0};
}  // namespace

// GCC pairs call sites of the replaced operator new with the default
// deallocator during inlining and emits a false-positive
// -Wmismatched-new-delete; the pairing here is malloc/free throughout.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace cvb {
namespace {

TEST(Trace, SameThreadNestingIsImplicit) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner");
      inner.attr("k", 7);
    }
    outer.attr("done", true);
  }
  const std::vector<TraceSpan> spans = tracer.drain();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_LE(spans[0].start_us, spans[1].start_us);
  EXPECT_GE(spans[0].end_us, spans[1].end_us);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_STREQ(spans[1].attrs[0].key, "k");
  EXPECT_EQ(spans[1].attrs[0].int_value, 7);
}

TEST(Trace, CrossThreadSpansUseExplicitParent) {
  Tracer tracer;
  {
    ScopedSpan root(&tracer, "root");
    const std::uint64_t root_id = root.id();
    std::thread worker([&tracer, root_id] {
      ScopedSpan task(&tracer, "task", root_id);
      task.attr("on_pool", true);
    });
    worker.join();
  }
  const std::vector<TraceSpan> spans = tracer.drain();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& root = spans[0];
  const TraceSpan& task = spans[1];
  EXPECT_STREQ(root.name, "root");
  EXPECT_STREQ(task.name, "task");
  EXPECT_EQ(task.parent, root.id);
  // Different recording threads get different dense indices.
  EXPECT_NE(task.thread, root.thread);
}

TEST(Trace, HotTracerSurvivesTlsCacheChurn) {
  // Regression: the per-thread tracer cache evicts least-recently-used
  // entries, so touching many short-lived tracers must not displace a
  // tracer this thread keeps recording into — eviction would split its
  // open-span stack (breaking implicit parenting) and allocate it a
  // second thread index.
  Tracer hot;
  ScopedSpan root(&hot, "root");
  const std::uint64_t root_id = root.id();
  for (int burst = 0; burst < 4; ++burst) {
    // Each burst pushes 16 fresh tracer entries into the TLS cache
    // (cap 32); re-touching `hot` between bursts keeps it recent.
    std::vector<std::unique_ptr<Tracer>> churn;
    for (int i = 0; i < 16; ++i) {
      churn.push_back(std::make_unique<Tracer>());
      ScopedSpan s(churn.back().get(), "churn");
    }
    ScopedSpan keepalive(&hot, "keepalive");
  }
  { ScopedSpan child(&hot, "child"); }
  root.finish();
  const std::vector<TraceSpan> spans = hot.drain();
  ASSERT_FALSE(spans.empty());
  for (const TraceSpan& span : spans) {
    // One recording thread -> one dense thread index, throughout.
    EXPECT_EQ(span.thread, spans[0].thread) << span.name;
    // Implicit nesting intact: everything under the still-open root.
    if (span.id != root_id) {
      EXPECT_EQ(span.parent, root_id) << span.name;
    }
  }
}

TEST(Trace, DisabledSpanIsFreeAndAllocationFree) {
  long long enabled_ids = 0;
  const long long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span(nullptr, "disabled");
    span.attr("count", 42);
    span.attr("ratio", 0.5);
    if (span.enabled()) {
      // The string overloads allocate at the call site; instrumented
      // code guards them exactly like this.
      span.attr("name", std::string("guarded"));
      ++enabled_ids;
    }
    enabled_ids += span.id() != 0 ? 1 : 0;
    span.finish();
  }
  const long long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(enabled_ids, 0);
}

TEST(Trace, PerThreadCapDropsAndCounts) {
  Tracer tracer(/*max_spans_per_thread=*/2);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span(&tracer, "burst");
  }
  EXPECT_EQ(tracer.dropped(), 3);
  EXPECT_EQ(tracer.drain().size(), 2u);
}

TEST(Trace, DrainClearsSnapshotDoesNot) {
  Tracer tracer;
  { ScopedSpan span(&tracer, "one"); }
  EXPECT_EQ(tracer.snapshot().size(), 1u);
  EXPECT_EQ(tracer.snapshot().size(), 1u);
  EXPECT_EQ(tracer.drain().size(), 1u);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(Trace, FinishIsIdempotentAndOutOfOrderCloseIsSafe) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    ScopedSpan inner(&tracer, "inner");
    outer.finish();  // closed before inner, and again by its destructor
    outer.finish();
  }
  const std::vector<TraceSpan> spans = tracer.drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
}

TEST(Trace, ChromeExportIsValidJson) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    ScopedSpan inner(&tracer, "inner");
    inner.attr("hits", 3);
    inner.attr("label", std::string("batch"));
  }
  const JsonValue doc = chrome_trace_json(tracer.drain(), /*dropped=*/1);
  // Round-trips through the project's own JSON parser.
  const JsonValue reparsed = JsonValue::parse(doc.dump());
  EXPECT_EQ(reparsed, doc);
  const JsonValue* events_value = reparsed.find("traceEvents");
  ASSERT_NE(events_value, nullptr);
  const auto& events = events_value->as_array();
  ASSERT_EQ(events.size(), 2u);
  double prev_ts = -1.0;
  for (const JsonValue& event : events) {
    EXPECT_EQ(event.find("ph")->as_string(), "X");
    EXPECT_GE(event.find("dur")->as_number(), 0.0);
    const double ts = event.find("ts")->as_number();
    EXPECT_GE(ts, prev_ts);  // sorted by timestamp
    prev_ts = ts;
    ASSERT_NE(event.find("args"), nullptr);
    EXPECT_NE(event.find("args")->find("span"), nullptr);
  }
  EXPECT_EQ(reparsed.find("droppedSpans")->as_number(), 1.0);
  // The inner span carries its attributes and its parent link.
  const JsonValue& inner = events[1];
  EXPECT_EQ(inner.find("name")->as_string(), "inner");
  EXPECT_EQ(inner.find("args")->find("hits")->as_number(), 3.0);
  EXPECT_EQ(inner.find("args")->find("label")->as_string(), "batch");
  EXPECT_EQ(inner.find("args")->find("parent")->as_number(),
            events[0].find("args")->find("span")->as_number());
}

// Golden end-to-end run: `cvbind EWF --datapath [2,1|1,1] --trace-out`
// must produce a well-formed Chrome trace with the full span hierarchy
// of a b-iter run and monotonically ordered, properly nested
// timestamps.
TEST(Trace, CvbindTraceOutGolden) {
  const std::string path = "trace_test_golden.json";
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli({"EWF", "--datapath", "[2,1|1,1]", "--trace-out",
                            path},
                           out, err);
  ASSERT_EQ(code, 0) << err.str();

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream text;
  text << file.rdbuf();
  const JsonValue doc = JsonValue::parse(text.str());
  const JsonValue* events_value = doc.find("traceEvents");
  ASSERT_NE(events_value, nullptr);
  const auto& events = events_value->as_array();
  ASSERT_GT(events.size(), 0u);

  std::unordered_map<long long, std::pair<double, double>> interval;
  std::vector<std::string> names;
  double prev_ts = -1.0;
  for (const JsonValue& event : events) {
    const double ts = event.find("ts")->as_number();
    const double dur = event.find("dur")->as_number();
    EXPECT_GE(ts, prev_ts) << "events must be sorted by timestamp";
    prev_ts = ts;
    names.push_back(event.find("name")->as_string());
    const long long span =
        static_cast<long long>(event.find("args")->find("span")->as_number());
    interval[span] = {ts, ts + dur};
  }
  // The whole request hierarchy is present.
  for (const char* expected :
       {"bind.request", "b-init.sweep", "b-init.candidate", "b-iter.start",
        "b-iter.round", "eval.batch", "sched.list"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // Exactly one root, and every parented span nests inside its parent's
  // interval.
  int roots = 0;
  for (const JsonValue& event : events) {
    const JsonValue* parent = event.find("args")->find("parent");
    if (parent == nullptr) {
      ++roots;
      EXPECT_EQ(event.find("name")->as_string(), "bind.request");
      continue;
    }
    const auto it = interval.find(static_cast<long long>(parent->as_number()));
    ASSERT_NE(it, interval.end());
    const double ts = event.find("ts")->as_number();
    const double end = ts + event.find("dur")->as_number();
    EXPECT_GE(ts, it->second.first);
    EXPECT_LE(end, it->second.second);
  }
  EXPECT_EQ(roots, 1);
  // Evaluation batches expose their cache-hit counters.
  bool saw_cache_attr = false;
  for (const JsonValue& event : events) {
    if (event.find("name")->as_string() == "eval.batch" &&
        event.find("args")->find("cache_hits") != nullptr) {
      saw_cache_attr = true;
    }
  }
  EXPECT_TRUE(saw_cache_attr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cvb
