// Frozen reference implementation of the list-scheduler core, exactly
// as it stood before the data-oriented rewrite (PR 6) of
// src/sched/list_scheduler_core.hpp.
//
// This copy is the *differential oracle*: the rewritten core must
// produce bit-identical schedules (same per-op start cycles, same
// latency, same move placement) for every input, and the tests in
// sched_core_diff_test.cpp plus the `bench/sched_core --check` gate
// compare the two implementations schedule-by-schedule on the bundled
// benchmark DFGs and on fuzzed DFG/machine pairs. bench/sched_core also
// times this core to report the rewrite's speedup, so the perf
// trajectory in BENCH_PR<N>.json is always measured against the same
// frozen baseline.
//
// Do not "improve" this file. It intentionally preserves the old
// algorithmic structure (AoS ready vector re-sorted per cycle, counted
// per-cycle resource windows, per-call pool construction); its only
// edits relative to the original are the cvb::testref namespace, the
// Ref-prefixed type names, and the removal of tracing spans (tracing
// never affected results).
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "machine/datapath.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/list_scheduler_core.hpp"
#include "sched/schedule.hpp"
#include "support/fault.hpp"

namespace cvb::testref {

/// The pre-rewrite scheduler scratch (AoS ready vector, per-pool
/// issue-count vectors).
struct RefSchedArena {
  std::vector<int> topo_pending;
  std::vector<OpId> topo;
  std::vector<OpId> frontier;
  std::vector<int> asap;
  std::vector<int> tail;
  std::vector<int> alap;
  std::vector<int> mobility;
  std::vector<int> consumers;
  std::vector<int> pending;
  std::vector<int> ready_at;
  std::vector<OpId> ready;
  std::vector<OpId> newly_ready;
  std::vector<std::vector<int>> pool_issues;  // per resource pool
};

/// Issue bookkeeping for one resource pool, checked by counting issues
/// inside the trailing dii-cycle window (the pre-rewrite organization).
class RefResourcePool {
 public:
  RefResourcePool(int capacity, int dii, std::vector<int>* issues)
      : capacity_(capacity), dii_(dii), issues_(issues) {}

  [[nodiscard]] bool can_issue(int cycle) const {
    int in_flight = 0;
    const int lo = std::max(0, cycle - dii_ + 1);
    for (int s = lo; s <= cycle; ++s) {
      if (s < static_cast<int>(issues_->size())) {
        in_flight += (*issues_)[static_cast<std::size_t>(s)];
      }
    }
    return in_flight < capacity_;
  }

  void issue(int cycle) {
    if (cycle >= static_cast<int>(issues_->size())) {
      issues_->resize(static_cast<std::size_t>(cycle) + 1, 0);
    }
    ++(*issues_)[static_cast<std::size_t>(cycle)];
  }

 private:
  int capacity_;
  int dii_;
  std::vector<int>* issues_;
};

/// Pre-rewrite priority computation (identical math to the live core).
template <typename G>
void ref_compute_priorities(const G& g, const LatencyTable& lat,
                            RefSchedArena& arena) {
  const int n = g.num_ops();
  const auto sn = static_cast<std::size_t>(n);

  arena.topo_pending.assign(sn, 0);
  arena.topo.clear();
  arena.topo.reserve(sn);
  arena.frontier.clear();
  for (OpId v = 0; v < n; ++v) {
    arena.topo_pending[static_cast<std::size_t>(v)] =
        static_cast<int>(g.preds(v).size());
    if (arena.topo_pending[static_cast<std::size_t>(v)] == 0) {
      arena.frontier.push_back(v);
    }
  }
  while (!arena.frontier.empty()) {
    const OpId v = arena.frontier.back();
    arena.frontier.pop_back();
    arena.topo.push_back(v);
    for (const OpId s : g.succs(v)) {
      if (--arena.topo_pending[static_cast<std::size_t>(s)] == 0) {
        arena.frontier.push_back(s);
      }
    }
  }
  if (static_cast<int>(arena.topo.size()) != n) {
    throw std::logic_error("list_schedule: graph has a cycle");
  }

  arena.asap.assign(sn, 0);
  int lcp = 0;
  for (const OpId v : arena.topo) {
    const auto sv = static_cast<std::size_t>(v);
    int start = 0;
    for (const OpId p : g.preds(v)) {
      start = std::max(start, arena.asap[static_cast<std::size_t>(p)] +
                                  lat_of(lat, g.type(p)));
    }
    arena.asap[sv] = start;
    lcp = std::max(lcp, start + lat_of(lat, g.type(v)));
  }

  arena.tail.assign(sn, 0);
  for (auto it = arena.topo.rbegin(); it != arena.topo.rend(); ++it) {
    const OpId v = *it;
    int longest_succ = 0;
    for (const OpId s : g.succs(v)) {
      longest_succ =
          std::max(longest_succ, arena.tail[static_cast<std::size_t>(s)]);
    }
    arena.tail[static_cast<std::size_t>(v)] =
        lat_of(lat, g.type(v)) + longest_succ;
  }
  arena.alap.resize(sn);
  arena.mobility.resize(sn);
  arena.consumers.resize(sn);
  for (OpId v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    arena.alap[sv] = lcp - arena.tail[sv];
    arena.mobility[sv] = arena.alap[sv] - arena.asap[sv];
    arena.consumers[sv] = static_cast<int>(g.succs(v).size());
  }
}

/// The pre-rewrite scheduling loop, byte-for-byte the old algorithm.
template <typename G>
void ref_list_schedule_core(const G& g, const Datapath& dp,
                            const ListSchedulerOptions& options,
                            RefSchedArena& arena, Schedule& out) {
  const int n = g.num_ops();
  const LatencyTable& lat = dp.latencies();

  ref_compute_priorities(g, lat, arena);
  const auto priority_less = [&arena](OpId a, OpId b) {
    const auto sa = static_cast<std::size_t>(a);
    const auto sb = static_cast<std::size_t>(b);
    return std::make_tuple(arena.alap[sa], arena.mobility[sa],
                           -arena.consumers[sa], a) <
           std::make_tuple(arena.alap[sb], arena.mobility[sb],
                           -arena.consumers[sb], b);
  };

  const int num_cluster_pools = dp.num_clusters() * kNumClusterFuTypes;
  const auto num_pools = static_cast<std::size_t>(num_cluster_pools) + 1;
  if (arena.pool_issues.size() < num_pools) {
    arena.pool_issues.resize(num_pools);
  }
  std::vector<RefResourcePool> pools;
  pools.reserve(num_pools);
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    for (int t = 0; t < kNumClusterFuTypes; ++t) {
      auto& issues = arena.pool_issues[static_cast<std::size_t>(pools.size())];
      issues.clear();
      pools.emplace_back(dp.fu_count(c, static_cast<FuType>(t)),
                         dp.dii(static_cast<FuType>(t)), &issues);
    }
  }
  const int bus_capacity = options.unbounded_bus ? n + 1 : dp.num_buses();
  auto& bus_issues = arena.pool_issues[static_cast<std::size_t>(pools.size())];
  bus_issues.clear();
  pools.emplace_back(bus_capacity, dp.dii(FuType::kBus), &bus_issues);
  const auto pool_index = [&](OpId v) -> int {
    const FuType t = fu_type_of(g.type(v));
    if (t == FuType::kBus) {
      return num_cluster_pools;
    }
    const ClusterId c = g.place(v);
    if (c < 0 || c >= dp.num_clusters()) {
      throw std::logic_error("list_schedule: op " + g.op_name(v) +
                             " has no cluster placement");
    }
    if (dp.fu_count(c, t) == 0) {
      throw std::logic_error("list_schedule: op " + g.op_name(v) +
                             " placed on cluster without a " +
                             std::string(fu_type_name(t)));
    }
    return c * kNumClusterFuTypes + static_cast<int>(t);
  };

  out.start.assign(static_cast<std::size_t>(n), -1);
  out.num_moves = g.num_moves();

  arena.pending.assign(static_cast<std::size_t>(n), 0);
  arena.ready_at.assign(static_cast<std::size_t>(n), 0);
  auto& ready = arena.ready;
  ready.clear();
  for (OpId v = 0; v < n; ++v) {
    arena.pending[static_cast<std::size_t>(v)] =
        static_cast<int>(g.preds(v).size());
    if (arena.pending[static_cast<std::size_t>(v)] == 0) {
      ready.push_back(v);
    }
  }
  std::sort(ready.begin(), ready.end(), priority_less);

  int scheduled = 0;
  long cycle_guard = 16;
  for (OpId v = 0; v < n; ++v) {
    cycle_guard += lat_of(lat, g.type(v)) + dp.dii_op(g.type(v));
  }

  long long steps = 0;
  auto& newly_ready = arena.newly_ready;
  for (int cycle = 0; scheduled < n; ++cycle) {
    if (cycle > cycle_guard) {
      throw std::logic_error("list_schedule: no progress (malformed graph?)");
    }
    newly_ready.clear();
    for (std::size_t i = 0; i < ready.size();) {
      if (options.step_budget > 0 && ++steps > options.step_budget) {
        throw ResourceLimitError(
            "list_schedule: step budget exhausted (" +
            std::to_string(options.step_budget) + " candidate visits)");
      }
      const OpId v = ready[i];
      if (arena.ready_at[static_cast<std::size_t>(v)] > cycle) {
        ++i;
        continue;
      }
      const int pool = pool_index(v);
      if (!pools[static_cast<std::size_t>(pool)].can_issue(cycle)) {
        ++i;
        continue;
      }
      pools[static_cast<std::size_t>(pool)].issue(cycle);
      out.start[static_cast<std::size_t>(v)] = cycle;
      ++scheduled;
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(i));
      const int done = cycle + lat_of(lat, g.type(v));
      for (const OpId s : g.succs(v)) {
        const auto ss = static_cast<std::size_t>(s);
        arena.ready_at[ss] = std::max(arena.ready_at[ss], done);
        if (--arena.pending[ss] == 0) {
          newly_ready.push_back(s);
        }
      }
    }
    if (!newly_ready.empty()) {
      ready.insert(ready.end(), newly_ready.begin(), newly_ready.end());
      std::sort(ready.begin(), ready.end(), priority_less);
    }
  }

  int latency = 0;
  for (OpId v = 0; v < n; ++v) {
    latency = std::max(latency, out.start[static_cast<std::size_t>(v)] +
                                    lat_of(lat, g.type(v)));
  }
  out.latency = latency;
}

/// Convenience wrapper matching cvb::list_schedule's shape.
[[nodiscard]] inline Schedule ref_list_schedule(
    const BoundDfg& bound, const Datapath& dp,
    const ListSchedulerOptions& options = {}) {
  RefSchedArena arena;
  Schedule sched;
  ref_list_schedule_core(cvb::detail::BoundDfgView{&bound}, dp, options, arena,
                         sched);
  return sched;
}

/// Arena-reusing wrapper (for the bench's steady-state timing).
inline void ref_list_schedule_into(const BoundDfg& bound, const Datapath& dp,
                                   const ListSchedulerOptions& options,
                                   RefSchedArena& arena, Schedule& out) {
  ref_list_schedule_core(cvb::detail::BoundDfgView{&bound}, dp, options, arena,
                         out);
}

}  // namespace cvb::testref
