// Unit tests for per-cluster linear-scan register allocation, including
// the pressure-equivalence property (linear scan on interval lifetimes
// is optimal, so files are sized exactly at max-live).
#include <gtest/gtest.h>

#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/reg_pressure.hpp"

namespace cvb {
namespace {

struct Allocated {
  BoundDfg bound;
  Schedule sched;
  RegAllocation alloc;
};

Allocated allocate(const Dfg& g, const Binding& b, const Datapath& dp) {
  Allocated out{build_bound_dfg(g, b, dp), {}, {}};
  out.sched = list_schedule(out.bound, dp);
  out.alloc = allocate_registers(out.bound, dp, out.sched);
  return out;
}

TEST(RegAlloc, ChainReusesOneRegister) {
  DfgBuilder bld;
  Value acc = bld.add(bld.input(), bld.input());
  for (int i = 0; i < 7; ++i) {
    acc = bld.add(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1]");
  const Allocated a = allocate(g, Binding(8, 0), dp);
  // Each intermediate dies exactly when the next consumes it; two
  // registers suffice (producer + consumer overlap at the read cycle).
  EXPECT_LE(a.alloc.regs_used[0], 2);
  EXPECT_EQ(verify_allocation(a.bound, dp, a.sched, a.alloc), "");
}

TEST(RegAlloc, FileSizeEqualsMaxLivePressure) {
  for (const std::string name : {"EWF", "ARF", "DCT-DIT", "FFT"}) {
    const Dfg g = benchmark_by_name(name).dfg;
    const Datapath dp = parse_datapath("[1,1|1,1]");
    const BindResult r = bind_full(g, dp);
    const RegAllocation alloc = allocate_registers(r.bound, dp, r.schedule);
    const RegPressure pressure =
        compute_reg_pressure(r.bound, dp, r.schedule);
    ASSERT_EQ(verify_allocation(r.bound, dp, r.schedule, alloc), "") << name;
    for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
      EXPECT_EQ(alloc.regs_used[static_cast<std::size_t>(c)],
                pressure.max_live[static_cast<std::size_t>(c)])
          << name << " cluster " << c;
    }
  }
}

TEST(RegAlloc, MoveResultsLiveInDestinationFile) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  (void)bld.add(x, bld.input(), "y");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Allocated a = allocate(g, {0, 1}, dp);
  const OpId move = 2;
  EXPECT_EQ(a.alloc.home_of[static_cast<std::size_t>(move)], 1);
  EXPECT_EQ(verify_allocation(a.bound, dp, a.sched, a.alloc), "");
}

TEST(RegAlloc, DisjointLifetimesShareRegisters) {
  // Two back-to-back producer/consumer pairs: second pair can reuse the
  // first pair's register.
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input(), "a");
  const Value b = bld.add(a, bld.input(), "b");
  const Value c = bld.add(b, bld.input(), "c");
  (void)bld.add(c, bld.input(), "d");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1]");
  const Allocated al = allocate(g, Binding(4, 0), dp);
  EXPECT_LE(al.alloc.regs_used[0], 2);
}

TEST(RegAlloc, VerifierCatchesSharingViolation) {
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input(), "a");
  const Value b = bld.add(bld.input(), bld.input(), "b");
  (void)bld.add(a, b, "c");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,1]");
  Allocated al = allocate(g, Binding(3, 0), dp);
  ASSERT_EQ(verify_allocation(al.bound, dp, al.sched, al.alloc), "");
  // a and b are simultaneously live; force them into one register.
  al.alloc.reg_of[1] = al.alloc.reg_of[0];
  EXPECT_NE(verify_allocation(al.bound, dp, al.sched, al.alloc), "");
}

TEST(RegAlloc, VerifierCatchesBadHome) {
  DfgBuilder bld;
  (void)bld.add(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  Allocated al = allocate(g, {0}, dp);
  al.alloc.home_of[0] = 1;
  EXPECT_NE(verify_allocation(al.bound, dp, al.sched, al.alloc), "");
}

TEST(RegAlloc, ClusteringShrinksWorstFile) {
  // The end-to-end version of the paper's Section-2 assumption: after
  // binding, the worst per-cluster file is no bigger than (and usually
  // smaller than) the centralized machine's single file.
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const Datapath clustered = parse_datapath("[1,1|1,1]");
    const BindResult r = bind_full(kernel.dfg, clustered);
    const RegAllocation alloc =
        allocate_registers(r.bound, clustered, r.schedule);
    const RegPressure p = compute_reg_pressure(r.bound, clustered, r.schedule);
    EXPECT_LE(alloc.worst_file(), p.centralized_max_live) << kernel.name;
  }
}

}  // namespace
}  // namespace cvb
