// Unit + property tests for the binary frame codec (net/frame.hpp).
// The decoder fronts an untrusted byte stream, so the suite leans on
// adversarial inputs: truncation at every byte boundary, oversized
// declared lengths, garbage headers, and the NDJSON/binary
// auto-detection boundary. The chunked-feeding property pins the
// incremental-decode contract the server relies on: feeding a stream
// byte-by-byte must yield exactly the same frames as feeding it whole.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace cvb::net {
namespace {

TEST(Frame, RoundTripAllTypes) {
  const FrameType types[] = {
      FrameType::kRequest,        FrameType::kResponse, FrameType::kError,
      FrameType::kPing,           FrameType::kPong,     FrameType::kSnapshotHeader,
      FrameType::kSnapshotEntry,  FrameType::kSnapshotTrailer,
  };
  for (const FrameType type : types) {
    const std::string payload = "hello\nworld\x00 with\nnewlines";
    const std::string wire = encode_frame(type, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());
    const DecodeResult decoded = decode_frame(wire);
    ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
    EXPECT_EQ(decoded.frame.type, type);
    EXPECT_EQ(decoded.frame.payload, payload);
    EXPECT_EQ(decoded.consumed, wire.size());
  }
}

TEST(Frame, EmptyPayload) {
  const std::string wire = encode_frame(FrameType::kPing, "");
  ASSERT_EQ(wire.size(), kFrameHeaderSize);
  const DecodeResult decoded = decode_frame(wire);
  ASSERT_EQ(decoded.status, DecodeStatus::kFrame);
  EXPECT_TRUE(decoded.frame.payload.empty());
}

TEST(Frame, TruncatedAtEveryBoundary) {
  const std::string wire = encode_frame(FrameType::kRequest, "{\"id\":\"x\"}");
  // Every proper prefix must be kNeedMore — never a frame, never an
  // error, never a read past the buffer.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const DecodeResult decoded = decode_frame(std::string_view(wire).substr(0, len));
    EXPECT_EQ(decoded.status, DecodeStatus::kNeedMore) << "prefix " << len;
    EXPECT_EQ(decoded.consumed, 0u);
  }
}

TEST(Frame, BadMagicRejectedImmediately) {
  // Auto-detection depends on a wrong *first* byte failing without
  // waiting for a full header: one byte of '{' must already be
  // kBadMagic, not kNeedMore.
  EXPECT_EQ(decode_frame("{").status, DecodeStatus::kBadMagic);
  EXPECT_EQ(decode_frame(" ").status, DecodeStatus::kBadMagic);
  // Right magic0, wrong magic1: rejected as soon as byte 2 arrives.
  std::string wire = encode_frame(FrameType::kRequest, "x");
  wire[1] = 'X';
  EXPECT_EQ(decode_frame(wire).status, DecodeStatus::kBadMagic);
  EXPECT_EQ(decode_frame(wire.substr(0, 2)).status, DecodeStatus::kBadMagic);
}

TEST(Frame, BadVersionAndTypeRejected) {
  std::string wire = encode_frame(FrameType::kRequest, "x");
  std::string bad_version = wire;
  bad_version[2] = 0x7F;
  EXPECT_EQ(decode_frame(bad_version).status, DecodeStatus::kBadVersion);
  // Progressive: version is validated before the rest of the header
  // arrives.
  EXPECT_EQ(decode_frame(bad_version.substr(0, 3)).status,
            DecodeStatus::kBadVersion);
  std::string bad_type = wire;
  bad_type[3] = 0x7E;
  EXPECT_EQ(decode_frame(bad_type).status, DecodeStatus::kBadType);
}

TEST(Frame, OversizedLengthRejectedWithoutAllocating) {
  // Header declaring a payload beyond the cap: rejected from the
  // header alone; the decoder must not wait for (or try to buffer)
  // the declared bytes.
  std::string header;
  header.push_back(static_cast<char>(kFrameMagic0));
  header.push_back(static_cast<char>(kFrameMagic1));
  header.push_back(static_cast<char>(kFrameVersion));
  header.push_back(0x01);
  const std::uint32_t huge = (1u << 20) + 1;
  for (int byte = 0; byte < 4; ++byte) {
    header.push_back(static_cast<char>((huge >> (8 * byte)) & 0xffU));
  }
  EXPECT_EQ(decode_frame(header).status, DecodeStatus::kOversized);
  // 0xFFFFFFFF too.
  for (int byte = 0; byte < 4; ++byte) {
    header[4 + byte] = static_cast<char>(0xff);
  }
  EXPECT_EQ(decode_frame(header).status, DecodeStatus::kOversized);
}

TEST(Frame, EncodeRejectsOversizedPayload) {
  const std::string big(kMaxFramePayload + 1, 'x');
  std::string out;
  EXPECT_THROW(append_frame(out, FrameType::kRequest, big),
               std::invalid_argument);
  // Exactly at the cap is legal.
  const std::string max(kMaxFramePayload, 'x');
  append_frame(out, FrameType::kRequest, max);
  EXPECT_EQ(decode_frame(out).status, DecodeStatus::kFrame);
}

TEST(Frame, AutoDetectionBoundary) {
  // 0xC5 and only 0xC5 selects the binary transport. Every byte a
  // legal NDJSON line can start with (whitespace, '{', digits, ASCII)
  // must sniff as NDJSON.
  EXPECT_TRUE(looks_binary(kFrameMagic0));
  for (int byte = 0; byte < 256; ++byte) {
    if (byte == kFrameMagic0) {
      continue;
    }
    EXPECT_FALSE(looks_binary(static_cast<unsigned char>(byte))) << byte;
  }
}

TEST(Frame, ErrorStatusClassification) {
  EXPECT_FALSE(is_decode_error(DecodeStatus::kFrame));
  EXPECT_FALSE(is_decode_error(DecodeStatus::kNeedMore));
  EXPECT_TRUE(is_decode_error(DecodeStatus::kBadMagic));
  EXPECT_TRUE(is_decode_error(DecodeStatus::kBadVersion));
  EXPECT_TRUE(is_decode_error(DecodeStatus::kBadType));
  EXPECT_TRUE(is_decode_error(DecodeStatus::kOversized));
  EXPECT_STREQ(decode_status_message(DecodeStatus::kFrame), "");
  EXPECT_NE(std::string(decode_status_message(DecodeStatus::kBadMagic)), "");
}

/// Decodes a whole buffer into (type, payload) pairs in one pass.
std::vector<std::pair<FrameType, std::string>> decode_all(
    const std::string& bytes) {
  std::vector<std::pair<FrameType, std::string>> frames;
  std::string_view rest = bytes;
  while (true) {
    const DecodeResult decoded = decode_frame(rest);
    if (decoded.status != DecodeStatus::kFrame) {
      EXPECT_EQ(decoded.status, DecodeStatus::kNeedMore);
      EXPECT_TRUE(rest.empty());
      break;
    }
    frames.emplace_back(decoded.frame.type, std::string(decoded.frame.payload));
    rest = rest.substr(decoded.consumed);
  }
  return frames;
}

TEST(Frame, ChunkedFeedingEqualsWholeBuffer) {
  // Property: however a frame stream is fragmented (mid-header,
  // mid-payload, several frames per chunk), incremental decoding
  // yields exactly the frames of a one-shot decode. This is the
  // mid-frame-disconnect / short-read contract the epoll server uses.
  Rng rng(0xF4A3E5ULL);
  for (int trial = 0; trial < 50; ++trial) {
    std::string stream;
    std::vector<std::pair<FrameType, std::string>> expected;
    const int num_frames = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int i = 0; i < num_frames; ++i) {
      const FrameType type =
          (rng.next_u64() % 2 == 0) ? FrameType::kRequest : FrameType::kPing;
      std::string payload(rng.next_u64() % 300, '\0');
      for (char& c : payload) {
        c = static_cast<char>(rng.next_u64() & 0xff);  // any byte, incl. 0xC5
      }
      append_frame(stream, type, payload);
      expected.emplace_back(type, payload);
    }
    // Feed in random chunks, buffering like a socket reader.
    std::string buf;
    std::vector<std::pair<FrameType, std::string>> got;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk =
          1 + static_cast<std::size_t>(rng.next_u64() % 17);
      const std::size_t take = std::min(chunk, stream.size() - pos);
      buf.append(stream, pos, take);
      pos += take;
      while (true) {
        const DecodeResult decoded = decode_frame(buf);
        if (decoded.status != DecodeStatus::kFrame) {
          ASSERT_EQ(decoded.status, DecodeStatus::kNeedMore);
          break;
        }
        got.emplace_back(decoded.frame.type,
                         std::string(decoded.frame.payload));
        buf.erase(0, decoded.consumed);
      }
    }
    EXPECT_TRUE(buf.empty()) << "trial " << trial;
    EXPECT_EQ(got, expected) << "trial " << trial;
    EXPECT_EQ(decode_all(stream), expected) << "trial " << trial;
  }
}

TEST(Frame, GarbageNeverDecodesAndNeverOverreads) {
  // Random byte salad: the decoder must return *something* sane for
  // every prefix and never claim to consume more than it was given.
  Rng rng(0xBADF00DULL);
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk(rng.next_u64() % 64, '\0');
    for (char& c : junk) {
      c = static_cast<char>(rng.next_u64() & 0xff);
    }
    const DecodeResult decoded = decode_frame(junk);
    EXPECT_LE(decoded.consumed, junk.size());
    if (decoded.status == DecodeStatus::kFrame) {
      EXPECT_LE(kFrameHeaderSize + decoded.frame.payload.size(), junk.size());
    }
  }
}

}  // namespace
}  // namespace cvb::net
