// Unit tests for the minimal JSON value/parser/writer in support/json.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "support/json.hpp"

namespace cvb {
namespace {

TEST(Json, ScalarKindsAndAccessors) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).as_bool());
  EXPECT_EQ(JsonValue(2.5).as_number(), 2.5);
  EXPECT_EQ(JsonValue(42).as_number(), 42.0);
  EXPECT_EQ(JsonValue(std::size_t{7}).as_number(), 7.0);
  EXPECT_EQ(JsonValue("hi").as_string(), "hi");
  EXPECT_THROW((void)JsonValue(true).as_number(), std::logic_error);
  EXPECT_THROW((void)JsonValue(1.0).as_string(), std::logic_error);
  EXPECT_THROW((void)JsonValue("x").as_array(), std::logic_error);
}

TEST(Json, IntegralNumbersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(-3.0).dump(), "-3");
  EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
}

TEST(Json, ArrayPushBackAndDump) {
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(JsonValue());
  EXPECT_EQ(arr.dump(), "[1,\"two\",null]");
  EXPECT_EQ(arr.as_array().size(), 3u);
  EXPECT_THROW((void)JsonValue(1.0).push_back(2), std::logic_error);
}

TEST(Json, ObjectSetReplacesAndFindLooksUp) {
  JsonValue obj = JsonValue::object();
  obj.set("a", 1);
  obj.set("b", true);
  obj.set("a", 2);  // replace, not duplicate
  EXPECT_EQ(obj.as_object().size(), 2u);
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("a")->as_number(), 2.0);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_EQ(obj.dump(), "{\"a\":2,\"b\":true}");
  EXPECT_EQ(JsonValue(1.0).find("a"), nullptr);  // non-object: absent
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonValue("a\"b\\c\n\t").dump(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(json_escape(std::string("\x01")), "\\u0001");
}

TEST(Json, ParseRoundTripsDocument) {
  const std::string text =
      R"({"name":"EWF","n":34,"ok":true,"none":null,"xs":[1,2.5,-3],)"
      R"("nested":{"k":"v"}})";
  const JsonValue doc = JsonValue::parse(text);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->as_string(), "EWF");
  EXPECT_EQ(doc.find("n")->as_number(), 34.0);
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_TRUE(doc.find("none")->is_null());
  EXPECT_EQ(doc.find("xs")->as_array()[2].as_number(), -3.0);
  EXPECT_EQ(doc.find("nested")->find("k")->as_string(), "v");
  EXPECT_EQ(JsonValue::parse(doc.dump()), doc);
}

TEST(Json, ParseDecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(JsonValue::parse(R"("a\u0041\n")").as_string(), "aA\n");
  // U+1F600 via a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(JsonValue::parse(R"("\uD83D\uDE00")").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(Json, ParseKeepsLastDuplicateKey) {
  const JsonValue doc = JsonValue::parse(R"({"k":1,"k":2})");
  EXPECT_EQ(doc.find("k")->as_number(), 2.0);
}

TEST(Json, ParseRejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\"",
                          "nan", "+1", "\"unterminated", "[1] trailing",
                          "\"\\uD83D\""}) {
    EXPECT_THROW((void)JsonValue::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(Json, PrettyPrintIndents) {
  JsonValue obj = JsonValue::object();
  obj.set("a", 1);
  std::ostringstream out;
  obj.write(out, 2);
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(JsonValue::array().dump(), "[]");
  EXPECT_EQ(JsonValue::object().dump(), "{}");
  EXPECT_EQ(JsonValue::parse("[]"), JsonValue::array());
  EXPECT_EQ(JsonValue::parse(" {} "), JsonValue::object());
}

}  // namespace
}  // namespace cvb
