// Unit tests for the ASCII Gantt renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "bind/bound_dfg.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"

namespace cvb {
namespace {

TEST(Gantt, RendersRowsForEveryUnitAndBus) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  (void)bld.mul(x, bld.input(), "y");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,1|1,1]", 2);
  const BoundDfg bound = build_bound_dfg(g, {0, 0}, dp);
  const Schedule s = list_schedule(bound, dp);

  std::ostringstream out;
  write_gantt(out, bound, dp, s);
  const std::string text = out.str();
  EXPECT_NE(text.find("c0.ALU0"), std::string::npos);
  EXPECT_NE(text.find("c0.ALU1"), std::string::npos);
  EXPECT_NE(text.find("c0.MULT0"), std::string::npos);
  EXPECT_NE(text.find("c1.ALU0"), std::string::npos);
  EXPECT_NE(text.find("BUS0"), std::string::npos);
  EXPECT_NE(text.find("BUS1"), std::string::npos);
  EXPECT_NE(text.find("x"), std::string::npos);
  EXPECT_NE(text.find("y"), std::string::npos);
}

TEST(Gantt, MovesAppearOnBusRow) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  (void)bld.add(x, bld.input(), "y");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]", 1);
  const BoundDfg bound = build_bound_dfg(g, {0, 1}, dp);
  const Schedule s = list_schedule(bound, dp);

  std::ostringstream out;
  write_gantt(out, bound, dp, s);
  const std::string text = out.str();
  // The move t1 must render on the BUS0 row.
  const std::size_t bus_row = text.find("BUS0");
  ASSERT_NE(bus_row, std::string::npos);
  const std::size_t eol = text.find('\n', bus_row);
  EXPECT_NE(text.substr(bus_row, eol - bus_row).find("t1"),
            std::string::npos);
}

TEST(Gantt, UnpipelinedOpOccupiesMultipleCells) {
  DfgBuilder bld;
  (void)bld.mul(bld.input(), bld.input(), "mm");
  const Dfg g = std::move(bld).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 2;
  std::array<int, kNumFuTypes> dii{1, 2, 1};
  const Datapath dp({Cluster{{1, 1}}}, 1, lat, dii);
  const BoundDfg bound = build_bound_dfg(g, {0}, dp);
  const Schedule s = list_schedule(bound, dp);

  std::ostringstream out;
  write_gantt(out, bound, dp, s);
  const std::string text = out.str();
  const std::size_t first = text.find("mm");
  const std::size_t second = text.find("mm", first + 1);
  EXPECT_NE(second, std::string::npos);  // occupies two cells
}

TEST(Gantt, ThrowsOnOversubscribedSchedule) {
  DfgBuilder bld;
  (void)bld.add(bld.input(), bld.input());
  (void)bld.add(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = build_bound_dfg(g, {0, 0}, dp);
  Schedule s = list_schedule(bound, dp);
  s.start = {0, 0};  // both on the single ALU at once
  s.latency = 1;
  std::ostringstream out;
  EXPECT_THROW(write_gantt(out, bound, dp, s), std::logic_error);
}

TEST(Gantt, EmptyScheduleStillRendersHeader) {
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = build_bound_dfg(Dfg{}, {}, dp);
  Schedule s;
  std::ostringstream out;
  write_gantt(out, bound, dp, s);
  EXPECT_NE(out.str().find("cycle"), std::string::npos);
}

}  // namespace
}  // namespace cvb
