// Tests of cvb::Service: result correctness against the direct driver,
// admission control under saturation (typed shed outcomes, no lost
// futures), deadlines, cancellation, shutdown, and metrics accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <vector>

#include "bind/driver.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"
#include "service/service.hpp"

namespace cvb {
namespace {

BindJob make_job(const std::string& kernel, const std::string& dp_spec,
                 std::string id = "") {
  BindJob job;
  job.id = std::move(id);
  job.dfg = benchmark_by_name(kernel).dfg;
  job.datapath = parse_datapath(dp_spec);
  return job;
}

void expect_valid_result(const BindOutcome& outcome, const Dfg& g,
                         const Datapath& dp) {
  ASSERT_TRUE(has_result(outcome.status)) << to_string(outcome.status);
  EXPECT_EQ(check_binding(g, outcome.binding, dp), "");
  const BindResult check = evaluate_binding(g, dp, outcome.binding);
  EXPECT_EQ(verify_schedule(check.bound, dp, check.schedule), "");
  EXPECT_EQ(check.schedule.latency, outcome.latency);
  EXPECT_EQ(check.schedule.num_moves, outcome.moves);
}

TEST(Service, MatchesDirectDriverRun) {
  Service service;
  const BindJob job = make_job("EWF", "[1,1|1,1]", "ewf");
  const BindOutcome outcome = service.submit(job).get();
  ASSERT_EQ(outcome.status, BindStatus::kOk);
  EXPECT_EQ(outcome.id, "ewf");
  expect_valid_result(outcome, job.dfg, job.datapath);

  // Same binding as running the driver directly with the same effort:
  // the shared engine's cache never changes algorithmic results.
  const BindResult direct =
      bind_full(job.dfg, job.datapath, driver_params_for(job.strategy.effort));
  EXPECT_EQ(outcome.binding, direct.binding);
  EXPECT_EQ(outcome.latency, direct.schedule.latency);
}

TEST(Service, AutoAssignsJobIds) {
  Service service;
  const BindOutcome a = service.submit(make_job("ARF", "[1,1|1,1]")).get();
  const BindOutcome b = service.submit(make_job("ARF", "[1,1|1,1]")).get();
  EXPECT_EQ(a.id, "job-0");
  EXPECT_EQ(b.id, "job-1");
}

TEST(Service, CallbackFlavourDelivers) {
  Service service;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  BindOutcome received;
  service.submit(make_job("FFT", "[2,1|1,1]", "cb"), [&](BindOutcome outcome) {
    const std::lock_guard<std::mutex> lock(mutex);
    received = std::move(outcome);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(received.id, "cb");
  EXPECT_EQ(received.status, BindStatus::kOk);
}

TEST(Service, ZeroCapacityShedsEveryJobTyped) {
  // queue_capacity 0 is the degenerate saturation case: admission
  // control sheds deterministically, and the future still resolves.
  for (const OverflowPolicy policy :
       {OverflowPolicy::kReject, OverflowPolicy::kShedOldest}) {
    ServiceOptions options;
    options.num_workers = 1;
    options.queue_capacity = 0;
    options.overflow = policy;
    Service service(options);
    const BindOutcome outcome =
        service.submit(make_job("ARF", "[1,1|1,1]", "full")).get();
    EXPECT_EQ(outcome.status, BindStatus::kShed);
    EXPECT_FALSE(outcome.error.empty());
    EXPECT_TRUE(outcome.binding.empty());
    EXPECT_EQ(service.metrics().counter("jobs_shed").value(), 1);
  }
}

TEST(Service, SaturationNeverLosesAJob) {
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  Service service(options);

  constexpr int kJobs = 12;
  std::vector<std::future<BindOutcome>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(
        service.submit(make_job("DCT-DIF", "[2,1|1,1]", "j" + std::to_string(i))));
  }
  int ok = 0;
  int shed = 0;
  for (std::future<BindOutcome>& future : futures) {
    const BindOutcome outcome = future.get();  // every future resolves
    if (outcome.status == BindStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(outcome.status, BindStatus::kShed) << outcome.id;
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kJobs);
  EXPECT_GE(ok, 1);  // the worker made progress
  EXPECT_EQ(service.metrics().counter("jobs_submitted").value(), kJobs);
  EXPECT_EQ(service.metrics().counter("jobs_completed").value(), ok);
  EXPECT_EQ(service.metrics().counter("jobs_shed").value(), shed);
}

TEST(Service, ShedOldestAdmitsTheNewestJob) {
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.overflow = OverflowPolicy::kShedOldest;
  Service service(options);

  std::vector<std::future<BindOutcome>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        service.submit(make_job("EWF", "[1,1|1,1]", "s" + std::to_string(i))));
  }
  int shed = 0;
  std::string last_status;
  for (std::future<BindOutcome>& future : futures) {
    const BindOutcome outcome = future.get();
    last_status = to_string(outcome.status);
    shed += outcome.status == BindStatus::kShed ? 1 : 0;
  }
  // The last-submitted job is never the one dropped under head-drop; it
  // either ran (ok) or was still queued at drain time (ok after drain).
  EXPECT_EQ(last_status, "ok");
  EXPECT_EQ(service.metrics().counter("jobs_shed").value(), shed);
}

TEST(Service, DeadlineJobStillReturnsUsableBinding) {
  ServiceOptions options;
  options.num_workers = 1;
  Service service(options);
  BindJob job = make_job("DCT-DIT-2", "[2,1|2,1]", "tight");
  job.strategy.effort = BindEffort::kMax;
  job.deadline_ms = 5;
  const BindOutcome outcome = service.submit(std::move(job)).get();
  // Tight budget: either the binder finished in time (ok) or it hit the
  // deadline — in both cases the binding is complete and verifier-clean.
  const BenchmarkKernel kernel = benchmark_by_name("DCT-DIT-2");
  expect_valid_result(outcome, kernel.dfg, parse_datapath("[2,1|2,1]"));
  if (outcome.status == BindStatus::kDeadlineExceeded) {
    EXPECT_EQ(service.metrics().counter("jobs_deadline_miss").value(), 1);
  }
}

TEST(Service, DefaultDeadlineAppliesWhenJobHasNone) {
  ServiceOptions options;
  options.num_workers = 1;
  options.default_deadline_ms = 0.001;
  Service service(options);
  BindJob job = make_job("DCT-DIT-2", "[2,1|2,1]");
  job.strategy.effort = BindEffort::kMax;
  const BindOutcome outcome = service.submit(std::move(job)).get();
  EXPECT_EQ(outcome.status, BindStatus::kDeadlineExceeded);
  const BenchmarkKernel kernel = benchmark_by_name("DCT-DIT-2");
  expect_valid_result(outcome, kernel.dfg, parse_datapath("[2,1|2,1]"));
}

TEST(Service, CancelByIdResolvesCooperatively) {
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  Service service(options);
  // Keep the worker busy so "target" sits in the queue when cancelled.
  BindJob slow = make_job("DCT-DIT-2", "[2,1|2,1]", "slow");
  slow.strategy.effort = BindEffort::kMax;
  std::future<BindOutcome> slow_future = service.submit(std::move(slow));
  std::future<BindOutcome> target_future =
      service.submit(make_job("EWF", "[1,1|1,1]", "target"));

  EXPECT_TRUE(service.cancel("target"));
  EXPECT_FALSE(service.cancel("no-such-job"));

  const BindOutcome target = target_future.get();
  // The manual token fires before (queued) or during its run; either
  // way the outcome is typed kCancelled and the future resolved.
  EXPECT_EQ(target.status, BindStatus::kCancelled);
  (void)slow_future.get();
  EXPECT_GE(service.metrics().counter("jobs_cancelled").value(), 1);
}

TEST(Service, AbortShutdownResolvesQueuedJobsAsCancelled) {
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  Service service(options);
  std::vector<std::future<BindOutcome>> futures;
  for (int i = 0; i < 5; ++i) {
    BindJob job = make_job("DCT-DIT-2", "[2,1|2,1]", "a" + std::to_string(i));
    job.strategy.effort = BindEffort::kMax;
    futures.push_back(service.submit(std::move(job)));
  }
  service.shutdown(/*drain=*/false);
  int cancelled = 0;
  for (std::future<BindOutcome>& future : futures) {
    const BindOutcome outcome = future.get();
    EXPECT_TRUE(outcome.status == BindStatus::kCancelled ||
                outcome.status == BindStatus::kOk)
        << to_string(outcome.status);
    cancelled += outcome.status == BindStatus::kCancelled ? 1 : 0;
  }
  EXPECT_GE(cancelled, 3);  // at most the in-flight + finished escape

  // Submissions after shutdown are typed shed, not lost.
  const BindOutcome late = service.submit(make_job("ARF", "[1,1|1,1]")).get();
  EXPECT_EQ(late.status, BindStatus::kShed);
}

TEST(Service, DrainShutdownFinishesQueuedJobs) {
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 16;
  Service service(options);
  std::vector<std::future<BindOutcome>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit(make_job("ARF", "[1,1|1,1]")));
  }
  service.shutdown(/*drain=*/true);
  for (std::future<BindOutcome>& future : futures) {
    EXPECT_EQ(future.get().status, BindStatus::kOk);
  }
  EXPECT_EQ(service.metrics().counter("jobs_completed").value(), 6);
}

TEST(Service, MetricsSnapshotShape) {
  Service service;
  (void)service.submit(make_job("FFT", "[2,1|1,1]")).get();
  const JsonValue snap = service.metrics_snapshot();
  const JsonValue* svc = snap.find("service");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->find("counters")->find("jobs_submitted")->as_number(), 1.0);
  EXPECT_NE(svc->find("histograms")->find("run_ms"), nullptr);
  const JsonValue* eval = snap.find("eval");
  ASSERT_NE(eval, nullptr);
  EXPECT_GT(eval->find("candidates")->as_number(), 0.0);
  EXPECT_NE(eval->find("cache_hit_rate"), nullptr);
}

TEST(Service, SharedEngineCachesAcrossIdenticalJobs) {
  Service service;
  (void)service.submit(make_job("EWF", "[1,1|1,1]")).get();
  (void)service.submit(make_job("EWF", "[1,1|1,1]")).get();
  // The second identical job replays the first one's schedule cache.
  EXPECT_GT(service.engine().stats().cache_hits, 0);
}

TEST(Service, RunBindJobClassifiesInvalidInput) {
  EvalEngine engine;
  // mincut cannot bind heterogeneous clusters: a typed invalid request.
  BindJob job = make_job("ARF", "[2,1|1,1]");
  job.strategy.kind = StrategyKind::kMinCut;
  const BindOutcome outcome = run_bind_job(job, engine, CancelToken());
  EXPECT_EQ(outcome.status, BindStatus::kInvalidRequest);
  EXPECT_FALSE(outcome.error.empty());

  BindJob empty;
  empty.datapath = parse_datapath("[1,1|1,1]");
  EXPECT_EQ(run_bind_job(empty, engine, CancelToken()).status,
            BindStatus::kInvalidRequest);
}

TEST(Service, ShedAndDeadlineRaceFulfilsExactlyOnce) {
  // Deadlines expire in the same window shed-oldest drops queued jobs:
  // every future must still resolve with exactly one consistent status.
  // (A double fulfilment would throw std::future_error out of finish();
  // the test also pins that the accounting never double-counts.)
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.overflow = OverflowPolicy::kShedOldest;
  options.default_deadline_ms = 8.0;  // expires while jobs sit queued
  Service service(options);

  constexpr int kJobs = 24;
  std::vector<std::future<BindOutcome>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    futures.push_back(service.submit(
        make_job("DCT-DIF", "[2,1|1,1]", "race" + std::to_string(i))));
  }
  int ok = 0;
  int shed = 0;
  int deadline = 0;
  int cancelled = 0;
  for (std::future<BindOutcome>& future : futures) {
    const BindOutcome outcome = future.get();  // resolves exactly once
    switch (outcome.status) {
      case BindStatus::kOk:
        ++ok;
        break;
      case BindStatus::kShed:
        EXPECT_TRUE(outcome.binding.empty()) << outcome.id;
        ++shed;
        break;
      case BindStatus::kDeadlineExceeded:
        // Anytime contract: a miss still carries a usable binding.
        EXPECT_FALSE(outcome.binding.empty()) << outcome.id;
        ++deadline;
        break;
      case BindStatus::kCancelled:
        ++cancelled;
        break;
      default:
        FAIL() << outcome.id << ": unexpected status "
               << to_string(outcome.status);
    }
  }
  EXPECT_EQ(ok + shed + deadline + cancelled, kJobs);
  EXPECT_GE(shed, 1);  // capacity 1 with 24 jobs must have dropped some
  const auto counter = [&](const char* name) {
    return service.metrics().counter(name).value();
  };
  EXPECT_EQ(counter("jobs_submitted"), kJobs);
  EXPECT_EQ(counter("jobs_completed") + counter("jobs_shed") +
                counter("jobs_cancelled") + counter("jobs_failed"),
            kJobs);
  EXPECT_EQ(counter("jobs_shed"), shed);
  EXPECT_EQ(counter("jobs_deadline_miss"), deadline);
}

TEST(Service, RejectsZeroWorkers) {
  ServiceOptions options;
  options.num_workers = 0;
  EXPECT_THROW(Service{options}, std::invalid_argument);
}

TEST(ServiceStatus, StringsRoundTripAndExitCodes) {
  for (const BindStatus status :
       {BindStatus::kOk, BindStatus::kDeadlineExceeded, BindStatus::kCancelled,
        BindStatus::kShed, BindStatus::kInvalidRequest,
        BindStatus::kInternalError}) {
    EXPECT_EQ(bind_status_from_string(to_string(status)), status);
  }
  EXPECT_EQ(exit_code_for(BindStatus::kOk), 0);
  EXPECT_EQ(exit_code_for(BindStatus::kInvalidRequest), 1);
  EXPECT_EQ(exit_code_for(BindStatus::kInternalError), 2);
  EXPECT_EQ(exit_code_for(BindStatus::kDeadlineExceeded), 3);
  EXPECT_EQ(exit_code_for(BindStatus::kCancelled), 4);
  EXPECT_EQ(exit_code_for(BindStatus::kShed), 5);
  EXPECT_TRUE(has_result(BindStatus::kOk));
  EXPECT_TRUE(has_result(BindStatus::kDeadlineExceeded));
  EXPECT_FALSE(has_result(BindStatus::kShed));
  EXPECT_THROW((void)bind_status_from_string("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace cvb
