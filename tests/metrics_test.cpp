// Unit tests for the metrics registry: counters, gauges, histogram
// quantile estimation, and the JSON snapshot shape.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"

namespace cvb {
namespace {

TEST(Metrics, CounterIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5);
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge g;
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10'000; ++i) {
        c.inc();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), 40'000);
}

TEST(Metrics, HistogramBasicAccounting) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(Metrics, HistogramQuantilesAreMonotonicAndBounded) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) {
    h.observe(0.5 + (i % 7));
  }
  double prev = 0.0;
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << q;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, h.max());
    prev = v;
  }
}

TEST(Metrics, HistogramOverflowBucketReportsMax) {
  Histogram h({1.0});
  h.observe(100.0);
  h.observe(250.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 250.0);
}

TEST(Metrics, HistogramSingleBucketInterpolates) {
  Histogram h({10.0});
  for (int i = 0; i < 10; ++i) {
    h.observe(5.0);
  }
  // All mass in [0, 10): the p50 estimate interpolates inside it.
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 10.0);
}

TEST(Metrics, HistogramSnapshotShape) {
  Histogram h;
  h.observe(3.0);
  const JsonValue snap = h.snapshot();
  for (const char* key : {"count", "sum", "max", "p50", "p95", "p99"}) {
    EXPECT_NE(snap.find(key), nullptr) << key;
  }
  EXPECT_EQ(snap.find("count")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(snap.find("max")->as_number(), 3.0);
}

TEST(Metrics, RegistryReturnsStableInstruments) {
  MetricsRegistry registry;
  Counter& a = registry.counter("jobs");
  a.inc();
  Counter& b = registry.counter("jobs");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1);
  Gauge& g1 = registry.gauge("depth");
  EXPECT_EQ(&g1, &registry.gauge("depth"));
  Histogram& h1 = registry.histogram("lat");
  EXPECT_EQ(&h1, &registry.histogram("lat"));
}

TEST(Metrics, RegistrySnapshotDocument) {
  MetricsRegistry registry;
  registry.counter("done").inc(3);
  registry.gauge("depth").set(2);
  registry.histogram("lat").observe(1.5);
  const JsonValue snap = registry.snapshot();
  EXPECT_EQ(snap.find("counters")->find("done")->as_number(), 3.0);
  EXPECT_EQ(snap.find("gauges")->find("depth")->as_number(), 2.0);
  EXPECT_EQ(snap.find("histograms")->find("lat")->find("count")->as_number(),
            1.0);
  // Round-trips through the writer/parser.
  EXPECT_EQ(JsonValue::parse(snap.dump()), snap);
}

TEST(Metrics, HistogramBucketsAreCumulative) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(100.0);
  const HistogramSnapshot snap = h.buckets();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.cumulative.size(), 4u);
  EXPECT_EQ(snap.cumulative[0], 1);  // <= 1.0
  EXPECT_EQ(snap.cumulative[1], 2);  // <= 2.0
  EXPECT_EQ(snap.cumulative[2], 3);  // <= 4.0
  EXPECT_EQ(snap.cumulative[3], 4);  // +inf
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 105.0);
}

TEST(Metrics, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.counter("jobs_completed").inc(3);
  registry.gauge("queue_depth").set(2);
  Histogram& h = registry.histogram("run_ms");
  h.observe(0.05);
  h.observe(42.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE cvb_jobs_completed counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cvb_jobs_completed 3"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE cvb_queue_depth gauge"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cvb_queue_depth 2"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE cvb_run_ms histogram"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cvb_run_ms_bucket{le=\"0.1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cvb_run_ms_bucket{le=\"+Inf\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cvb_run_ms_count 2"), std::string::npos) << text;
  EXPECT_NE(text.find("cvb_run_ms_sum 42.05"), std::string::npos) << text;
  // Every line is either a comment or "name{labels} value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(Metrics, PrometheusNamesAreSanitized) {
  MetricsRegistry registry;
  registry.counter("cache.hit-rate total").inc();
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("cvb_cache_hit_rate_total 1"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("cache.hit"), std::string::npos);
}

}  // namespace
}  // namespace cvb
