// Differential tests for incremental candidate evaluation: the
// DeltaEvaluator and the engine's evaluate_batch_delta entry point must
// be bit-identical — same (L, M), same Q_U tail vector, same tie-break
// outcomes — to the from-scratch evaluate_uncached path, on every
// bundled benchmark DFG. bind_full through the sharded, multi-threaded
// delta pipeline must reproduce the serial cache-off result exactly.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "bind/delta_eval.hpp"
#include "bind/driver.hpp"
#include "bind/eval_engine.hpp"
#include "bind/initial_binder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

const char* const kDatapaths[] = {"[1,1]", "[1,1|1,1]", "[2,1|1,2]"};

/// All single-op re-bindings of `base` (the B-ITER move neighbourhood).
std::vector<BindingDelta> single_move_deltas(const Dfg& dfg,
                                             const Datapath& dp,
                                             const Binding& base) {
  std::vector<BindingDelta> deltas;
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    for (const ClusterId c : dp.target_set(dfg.type(v))) {
      if (c != base[static_cast<std::size_t>(v)]) {
        deltas.push_back({{v, c}});
      }
    }
  }
  return deltas;
}

Binding materialize(const Binding& base, const BindingDelta& delta) {
  Binding out = base;
  for (const auto& [v, c] : delta) {
    out[static_cast<std::size_t>(v)] = c;
  }
  return out;
}

TEST(EvalEngineDelta, EvaluatorMatchesUncachedOnAllBenchmarks) {
  const ListSchedulerOptions sched;
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    for (const char* dp_text : kDatapaths) {
      const Datapath dp = parse_datapath(dp_text);
      const Binding base = initial_binding(kernel.dfg, dp);
      DeltaEvaluator ev;
      ev.set_incumbent(kernel.dfg, dp, base);

      std::vector<BindingDelta> deltas =
          single_move_deltas(kernel.dfg, dp, base);
      // A sample of pair deltas (B-ITER's plateau perturbations).
      for (std::size_t i = 0; i + 1 < deltas.size(); i += 5) {
        BindingDelta pair = deltas[i];
        pair.push_back(deltas[i + 1][0]);
        deltas.push_back(std::move(pair));
      }
      // The empty delta re-evaluates the incumbent itself.
      deltas.push_back({});

      for (const BindingDelta& delta : deltas) {
        const EvalResult got = ev.evaluate(delta, sched);
        const EvalResult want = EvalEngine::evaluate_uncached(
            kernel.dfg, dp, materialize(base, delta), sched);
        ASSERT_EQ(got, want)
            << kernel.name << " on " << dp_text << ", delta size "
            << delta.size();
        ASSERT_EQ(ev.incumbent(), base) << "incumbent must be restored";
      }
    }
  }
}

TEST(EvalEngineDelta, InvalidDeltaThrowsAndPreservesIncumbent) {
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding base = initial_binding(kernel.dfg, dp);
  DeltaEvaluator ev;
  ev.set_incumbent(kernel.dfg, dp, base);

  const ListSchedulerOptions sched;
  EXPECT_THROW((void)ev.evaluate({{kernel.dfg.num_ops(), 0}}, sched),
               std::logic_error)
      << "out-of-range op id";
  EXPECT_THROW((void)ev.evaluate({{0, dp.num_clusters()}}, sched),
               std::logic_error)
      << "out-of-range cluster";
  EXPECT_EQ(ev.incumbent(), base);

  // The evaluator still works after a rejected delta.
  const EvalResult got = ev.evaluate({{0, 1 - base[0]}}, sched);
  EXPECT_EQ(got, EvalEngine::evaluate_uncached(kernel.dfg, dp,
                                               materialize(base, {{0, 1 - base[0]}}),
                                               sched));
}

TEST(EvalEngineDelta, EvaluatorRetargetsAcrossIncumbents) {
  const BenchmarkKernel arf = benchmark_by_name("ARF");
  const BenchmarkKernel ewf = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[2,1|1,2]");
  const ListSchedulerOptions sched;
  DeltaEvaluator ev;

  for (const BenchmarkKernel* kernel : {&arf, &ewf, &arf}) {
    const Binding base = initial_binding(kernel->dfg, dp);
    ev.set_incumbent(kernel->dfg, dp, base);
    const BindingDelta delta = {{0, 1 - base[0]}};
    EXPECT_EQ(ev.evaluate(delta, sched),
              EvalEngine::evaluate_uncached(kernel->dfg, dp,
                                            materialize(base, delta), sched))
        << kernel->name;
  }
}

TEST(EvalEngineDelta, BatchDeltaMatchesBatchFull) {
  const BenchmarkKernel kernel = benchmark_by_name("DCT-LEE");
  const Datapath dp = parse_datapath("[2,1|1,2]");
  const Binding base = initial_binding(kernel.dfg, dp);
  const std::vector<BindingDelta> deltas =
      single_move_deltas(kernel.dfg, dp, base);
  std::vector<Binding> materialized;
  materialized.reserve(deltas.size());
  for (const BindingDelta& delta : deltas) {
    materialized.push_back(materialize(base, delta));
  }

  for (const int threads : {1, 2, 8}) {
    EvalEngineOptions opts;
    opts.num_threads = threads;
    EvalEngine full_engine(opts);
    EvalEngine delta_engine(opts);

    const std::vector<EvalResult> full =
        full_engine.evaluate_batch(kernel.dfg, dp, materialized);
    const std::vector<EvalResult> cold =
        delta_engine.evaluate_batch_delta(kernel.dfg, dp, base, deltas);
    EXPECT_EQ(cold, full) << threads << " threads, cold cache";
    const std::vector<EvalResult> warm =
        delta_engine.evaluate_batch_delta(kernel.dfg, dp, base, deltas);
    EXPECT_EQ(warm, full) << threads << " threads, warm cache";

    // Identical accounting too: the delta path classifies candidates
    // exactly like the materialized path.
    const EvalStats fs = full_engine.stats();
    const EvalStats ds = delta_engine.stats();
    EXPECT_EQ(ds.cache_hits + ds.batch_dedup + ds.cache_misses,
              ds.candidates);
    EXPECT_EQ(ds.cache_misses, fs.cache_misses) << threads << " threads";
  }
}

TEST(EvalEngineDelta, BindFullShardedMatchesSerialUncached) {
  DriverParams params;
  params.max_stretch = 2;
  params.iter_starts = 2;

  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const Datapath dp = parse_datapath("[1,1|1,1]");

    EvalEngineOptions serial_opts;
    serial_opts.num_threads = 1;
    serial_opts.cache_capacity = 0;  // every candidate from scratch
    EvalEngine serial_engine(serial_opts);
    DriverParams serial_params = params;
    serial_params.engine = &serial_engine;
    const BindResult want = bind_full(kernel.dfg, dp, serial_params);

    EvalEngineOptions fast_opts;
    fast_opts.num_threads = 8;  // sharded cache + L1 + delta pipeline
    EvalEngine fast_engine(fast_opts);
    DriverParams fast_params = params;
    fast_params.engine = &fast_engine;
    const BindResult got = bind_full(kernel.dfg, dp, fast_params);

    EXPECT_EQ(got.binding, want.binding) << kernel.name;
    EXPECT_EQ(got.schedule.latency, want.schedule.latency) << kernel.name;
    EXPECT_EQ(got.schedule.num_moves, want.schedule.num_moves) << kernel.name;
    EXPECT_EQ(got.schedule.start, want.schedule.start) << kernel.name;
  }
}

}  // namespace
}  // namespace cvb
