// Unit tests for the binding report.
#include <gtest/gtest.h>

#include <sstream>

#include "bind/bound_dfg.hpp"
#include "bind/report.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"

namespace cvb {
namespace {

BindingReport report_for(const Dfg& g, const Binding& b, const Datapath& dp) {
  const BoundDfg bound = build_bound_dfg(g, b, dp);
  return make_binding_report(bound, dp, list_schedule(bound, dp));
}

Dfg split_graph() {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  const Value y = bld.mul(x, bld.input(), "y");
  (void)bld.add(y, bld.input(), "z");
  return std::move(bld).take();
}

TEST(Report, CountsOpsPerClusterAndType) {
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindingReport r = report_for(split_graph(), {0, 0, 1}, dp);
  EXPECT_EQ(r.ops_per_cluster, (std::vector<int>{2, 1}));
  // cluster 0: 1 add + 1 mul; cluster 1: 1 add.
  EXPECT_EQ(r.fu_usage[0].num_ops, 1);  // c0 ALU
  EXPECT_EQ(r.fu_usage[1].num_ops, 1);  // c0 MULT
  EXPECT_EQ(r.fu_usage[2].num_ops, 1);  // c1 ALU
  EXPECT_EQ(r.fu_usage[3].num_ops, 0);  // c1 MULT
}

TEST(Report, TransferAndBoundaryAccounting) {
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindingReport r = report_for(split_graph(), {0, 0, 1}, dp);
  EXPECT_EQ(r.num_moves, 1);
  EXPECT_EQ(r.cut_edges, 1);
  EXPECT_EQ(r.boundary_ops, 2);  // y (producer) and z (consumer)
}

TEST(Report, NoTransfersMeansNoBoundary) {
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindingReport r = report_for(split_graph(), {0, 0, 0}, dp);
  EXPECT_EQ(r.num_moves, 0);
  EXPECT_EQ(r.cut_edges, 0);
  EXPECT_EQ(r.boundary_ops, 0);
  EXPECT_DOUBLE_EQ(r.bus_utilization, 0.0);
}

TEST(Report, UtilizationIsBusySlotsOverCapacity) {
  // 4 adds on 2 ALUs over a 2-cycle schedule: utilization 4/(2*2)=1.0.
  DfgBuilder bld;
  for (int i = 0; i < 4; ++i) {
    (void)bld.add(bld.input(), bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,1]");
  const BindingReport r = report_for(g, {0, 0, 0, 0}, dp);
  EXPECT_EQ(r.latency, 2);
  EXPECT_DOUBLE_EQ(r.fu_usage[0].utilization, 1.0);
  EXPECT_DOUBLE_EQ(r.fu_usage[1].utilization, 0.0);
}

TEST(Report, SharedTransferCountsItsCutEdges) {
  // One producer, two remote consumers: one move, two cut edges.
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  (void)bld.add(x, bld.input());
  (void)bld.add(x, bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|2,1]");
  const BindingReport r = report_for(g, {0, 1, 1}, dp);
  EXPECT_EQ(r.num_moves, 1);
  EXPECT_EQ(r.cut_edges, 2);
  EXPECT_EQ(r.boundary_ops, 3);
}

TEST(Report, PrintsReadableText) {
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindingReport r = report_for(split_graph(), {0, 0, 1}, dp);
  std::ostringstream out;
  write_binding_report(out, r, dp);
  const std::string text = out.str();
  EXPECT_NE(text.find("binding report"), std::string::npos);
  EXPECT_NE(text.find("BUS"), std::string::npos);
  EXPECT_NE(text.find("%"), std::string::npos);
}

}  // namespace
}  // namespace cvb
