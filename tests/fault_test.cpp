// Tests of the fault-injection framework (support/fault.*): the
// taxonomy strings, site registry, deterministic seeded draws, rate
// semantics, trigger budgets, CLI flag parsing, and the compiled-in
// injection sites themselves (the latter gated on
// -DCVB_FAULT_INJECTION=ON builds).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/dfg_text.hpp"
#include "kernels/kernels.hpp"
#include "support/fault.hpp"

namespace cvb {
namespace {

TEST(FaultClassNames, RoundTrip) {
  for (const FaultClass fault_class :
       {FaultClass::kNone, FaultClass::kTransient, FaultClass::kPoison,
        FaultClass::kFatal}) {
    EXPECT_EQ(fault_class_from_string(to_string(fault_class)), fault_class);
  }
  EXPECT_THROW((void)fault_class_from_string("flaky"), std::invalid_argument);
}

TEST(FaultSites, RegistryRejectsUnknownNames) {
  EXPECT_FALSE(fault_sites().empty());
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 0.5;
  EXPECT_THROW(FaultInjector::global().arm("no.such.site", spec),
               std::invalid_argument);
  spec.rate = 1.5;
  EXPECT_THROW(FaultInjector::global().arm("eval.task", spec),
               std::invalid_argument);
  spec.rate = -0.1;
  EXPECT_THROW(FaultInjector::global().arm("eval.task", spec),
               std::invalid_argument);
}

// Calls check() n times and returns the fire pattern. check() is a
// plain method, so this works on every build — only the CVB_INJECT
// macro itself is compiled out without the CMake option.
std::vector<bool> fire_pattern(const std::string& site, int n) {
  std::vector<bool> fired;
  fired.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    try {
      FaultInjector::global().check(site);
      fired.push_back(false);
    } catch (const FaultInjectedError&) {
      fired.push_back(true);
    }
  }
  return fired;
}

TEST(FaultInjector, SameSeedSameFirePattern) {
  ScopedFaultInjection scoped(42);
  FaultSpec spec;
  spec.rate = 0.5;
  FaultInjector::global().arm("eval.task", spec);
  const std::vector<bool> first = fire_pattern("eval.task", 64);

  FaultInjector::global().set_seed(42);  // reset counters + stream
  const std::vector<bool> second = fire_pattern("eval.task", 64);
  EXPECT_EQ(first, second);

  FaultInjector::global().set_seed(43);
  const std::vector<bool> reseeded = fire_pattern("eval.task", 64);
  EXPECT_NE(first, reseeded);  // 2^-64 false-failure chance
}

TEST(FaultInjector, SitesDrawIndependently) {
  // The pattern of one site must not depend on how often other sites
  // are checked in between (each site keys its own check counter).
  ScopedFaultInjection scoped(7);
  FaultSpec spec;
  spec.rate = 0.5;
  FaultInjector::global().arm("eval.task", spec);
  FaultInjector::global().arm("service.worker", spec);
  const std::vector<bool> alone = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 32; ++i) {
      try {
        FaultInjector::global().check("eval.task");
        fired.push_back(false);
      } catch (const FaultInjectedError&) {
        fired.push_back(true);
      }
    }
    return fired;
  }();
  FaultInjector::global().set_seed(7);
  std::vector<bool> interleaved;
  for (int i = 0; i < 32; ++i) {
    (void)fire_pattern("service.worker", 3);  // noise between checks
    try {
      FaultInjector::global().check("eval.task");
      interleaved.push_back(false);
    } catch (const FaultInjectedError&) {
      interleaved.push_back(true);
    }
  }
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultInjector, RateEndpointsAndDisarm) {
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = FaultClass::kPoison;
  FaultInjector::global().arm("eval.task", spec);
  EXPECT_TRUE(FaultInjector::global().any_armed());
  try {
    FaultInjector::global().check("eval.task");
    FAIL() << "rate-1.0 site did not fire";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.site(), "eval.task");
    EXPECT_EQ(e.fault_class(), FaultClass::kPoison);
  }

  spec.rate = 0.0;  // rate 0 disarms
  FaultInjector::global().arm("eval.task", spec);
  EXPECT_FALSE(FaultInjector::global().any_armed());
  EXPECT_NO_THROW(FaultInjector::global().check("eval.task"));
  EXPECT_EQ(FaultInjector::global().triggered("eval.task"), 0);
}

TEST(FaultInjector, MaxTriggersModelsASubsidingStorm) {
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  spec.max_triggers = 3;
  FaultInjector::global().arm("eval.task", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      FaultInjector::global().check("eval.task");
    } catch (const FaultInjectedError&) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(FaultInjector::global().triggered("eval.task"), 3);
  EXPECT_EQ(FaultInjector::global().total_triggered(), 3);
}

TEST(FaultInjector, HangSpecSleepsInsteadOfThrowing) {
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  spec.hang_ms = 2.0;  // short: just proves the no-throw path
  FaultInjector::global().arm("service.hang", spec);
  EXPECT_NO_THROW(FaultInjector::global().check("service.hang"));
  EXPECT_EQ(FaultInjector::global().triggered("service.hang"), 1);
}

TEST(FaultInjector, ArmFromFlagParsesAllForms) {
  ScopedFaultInjection scoped;
  FaultInjector& injector = FaultInjector::global();

  injector.arm_from_flag("eval.task:1");
  try {
    injector.check("eval.task");
    FAIL() << "armed site did not fire";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.fault_class(), FaultClass::kTransient);  // the default
  }

  injector.arm_from_flag("eval.task:1:poison");
  try {
    injector.check("eval.task");
    FAIL() << "armed site did not fire";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.fault_class(), FaultClass::kPoison);
  }

  injector.arm_from_flag("service.hang:1:transient:2");
  EXPECT_NO_THROW(injector.check("service.hang"));

  EXPECT_THROW(injector.arm_from_flag("eval.task"), std::invalid_argument);
  EXPECT_THROW(injector.arm_from_flag("eval.task:nope"),
               std::invalid_argument);
  EXPECT_THROW(injector.arm_from_flag("bogus.site:0.5"),
               std::invalid_argument);
  EXPECT_THROW(injector.arm_from_flag("eval.task:0.5:flaky"),
               std::invalid_argument);
}

TEST(FaultInjector, ScopedGuardDisarmsOnExit) {
  {
    ScopedFaultInjection scoped;
    FaultSpec spec;
    spec.rate = 1.0;
    FaultInjector::global().arm("eval.task", spec);
    EXPECT_TRUE(FaultInjector::global().any_armed());
  }
  EXPECT_FALSE(FaultInjector::global().any_armed());
}

// The compiled-in sites: only meaningful when the build defines
// CVB_FAULT_INJECTION (the CVB_INJECT macros are no-ops otherwise).
TEST(FaultInjectionSites, ParserSiteFiresWhenCompiledIn) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build has -DCVB_FAULT_INJECTION=OFF";
  }
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = FaultClass::kPoison;
  FaultInjector::global().arm("parse.dfg", spec);
  std::istringstream in("dfg t\nop 0 add a\n");
  EXPECT_THROW((void)parse_dfg_text(in), FaultInjectedError);
  EXPECT_EQ(FaultInjector::global().triggered("parse.dfg"), 1);
}

}  // namespace
}  // namespace cvb
