// Unit tests for the Section-4 related-work baselines: the
// Leupers-style simulated annealing binder and the Capitanio-style
// min-cut partitioner.
#include <gtest/gtest.h>

#include "baselines/annealing.hpp"
#include "baselines/mincut.hpp"
#include "bind/binding.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

// ------------------------------------------------------------- annealing

TEST(Annealing, ProducesValidVerifiedResult) {
  const Dfg g = benchmark_by_name("ARF").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  AnnealingInfo info;
  const BindResult r = annealing_binding(g, dp, {}, &info);
  EXPECT_EQ(check_binding(g, r.binding, dp), "");
  EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "");
  EXPECT_GT(info.moves_tried, 0);
  EXPECT_GT(info.moves_accepted, 0);
}

TEST(Annealing, DeterministicPerSeed) {
  const Dfg g = make_fir(10);
  const Datapath dp = parse_datapath("[1,1|1,1]");
  AnnealingParams params;
  params.seed = 99;
  const BindResult a = annealing_binding(g, dp, params);
  const BindResult b = annealing_binding(g, dp, params);
  EXPECT_EQ(a.binding, b.binding);
}

TEST(Annealing, BeatsItsRandomStartOnStructuredGraphs) {
  // Two independent chains: random bindings scatter them (many moves);
  // the anneal must find something clearly better than the serial
  // latency of a chain pair on one ALU.
  DfgBuilder bld;
  for (int c = 0; c < 2; ++c) {
    Value acc = bld.add(bld.input(), bld.input());
    for (int i = 0; i < 5; ++i) {
      acc = bld.add(acc, bld.input());
    }
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult r = annealing_binding(g, dp);
  EXPECT_LE(r.schedule.latency, 8);  // optimum 6; generous margin
}

TEST(Annealing, RespectsTargetSets) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  (void)bld.mul(x, bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,0|1,1]");
  const BindResult r = annealing_binding(g, dp);
  EXPECT_EQ(r.binding[1], 1);  // only cluster with a multiplier
}

TEST(Annealing, RejectsEmptyAndInfeasible) {
  const Datapath dp = parse_datapath("[1,1]");
  EXPECT_THROW((void)annealing_binding(Dfg{}, dp), std::invalid_argument);
  DfgBuilder bld;
  (void)bld.mul(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  EXPECT_THROW((void)annealing_binding(g, parse_datapath("[1,0]")),
               std::invalid_argument);
}

// ---------------------------------------------------------------- mincut

TEST(MinCut, HomogeneityCheck) {
  EXPECT_TRUE(is_homogeneous(parse_datapath("[1,1|1,1]")));
  EXPECT_TRUE(is_homogeneous(parse_datapath("[2,1|2,1|2,1]")));
  EXPECT_FALSE(is_homogeneous(parse_datapath("[2,1|1,1]")));
}

TEST(MinCut, RejectsHeterogeneousDatapath) {
  EXPECT_THROW((void)mincut_binding(make_fir(6), parse_datapath("[2,1|1,1]")),
               std::invalid_argument);
}

TEST(MinCut, ProducesValidBalancedResult) {
  const Dfg g = benchmark_by_name("DCT-DIT").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  MinCutInfo info;
  const BindResult r = mincut_binding(g, dp, {}, &info);
  EXPECT_EQ(check_binding(g, r.binding, dp), "");
  EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "");
  EXPECT_LE(info.final_cut, info.initial_cut);

  int on0 = 0;
  for (const ClusterId c : r.binding) {
    on0 += (c == 0) ? 1 : 0;
  }
  // Balance within the default 15% (+ rounding slack).
  EXPECT_NEAR(on0, g.num_ops() / 2, g.num_ops() * 0.2 + 1);
}

TEST(MinCut, SplitsIndependentComponentsWithZeroCut) {
  const Dfg g = benchmark_by_name("DCT-DIF").dfg;  // two components
  const Datapath dp = parse_datapath("[1,1|1,1]");
  MinCutInfo info;
  (void)mincut_binding(g, dp, {}, &info);
  EXPECT_EQ(info.final_cut, 0);
}

TEST(MinCut, CutNeverBelowMinimumForConnectedGraphs) {
  const Dfg g = make_fir(12);  // connected chain: any 2-way split cuts >= 1
  MinCutInfo info;
  (void)mincut_binding(g, parse_datapath("[1,1|1,1]"), {}, &info);
  EXPECT_GE(info.final_cut, 1);
}

TEST(MinCut, WorksAcrossClusterCounts) {
  const Dfg g = benchmark_by_name("FFT").dfg;
  for (const std::string spec : {"[2,2]", "[1,1|1,1]", "[1,1|1,1|1,1]"}) {
    const Datapath dp = parse_datapath(spec);
    const BindResult r = mincut_binding(g, dp);
    EXPECT_EQ(check_binding(g, r.binding, dp), "") << spec;
  }
}

}  // namespace
}  // namespace cvb
