// Unit tests for the ISA tables, the Datapath model and the "[i,j|...]"
// configuration parser.
#include <gtest/gtest.h>

#include "machine/datapath.hpp"
#include "machine/isa.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

// ------------------------------------------------------------------- ISA

TEST(Isa, FuTypePartitionCoversAllOpTypes) {
  for (const OpType op : all_op_types()) {
    const FuType fu = fu_type_of(op);
    EXPECT_TRUE(fu == FuType::kAlu || fu == FuType::kMult ||
                fu == FuType::kBus);
  }
}

TEST(Isa, MoveMapsToBusAndNothingElseDoes) {
  for (const OpType op : all_op_types()) {
    EXPECT_EQ(fu_type_of(op) == FuType::kBus, is_move(op));
  }
}

TEST(Isa, ArithmeticMapping) {
  EXPECT_EQ(fu_type_of(OpType::kAdd), FuType::kAlu);
  EXPECT_EQ(fu_type_of(OpType::kSub), FuType::kAlu);
  EXPECT_EQ(fu_type_of(OpType::kMul), FuType::kMult);
  EXPECT_EQ(fu_type_of(OpType::kMac), FuType::kMult);
}

TEST(Isa, NamesAreNonEmptyAndDistinctive) {
  EXPECT_EQ(op_type_name(OpType::kAdd), "add");
  EXPECT_EQ(op_type_name(OpType::kMove), "mov");
  EXPECT_EQ(fu_type_name(FuType::kBus), "BUS");
  for (const OpType op : all_op_types()) {
    EXPECT_FALSE(op_type_name(op).empty());
  }
}

// -------------------------------------------------------------- Datapath

Datapath two_cluster() { return parse_datapath("[1,1|2,1]"); }

TEST(Datapath, CountsPerClusterAndTotal) {
  const Datapath dp = two_cluster();
  EXPECT_EQ(dp.num_clusters(), 2);
  EXPECT_EQ(dp.fu_count(0, FuType::kAlu), 1);
  EXPECT_EQ(dp.fu_count(1, FuType::kAlu), 2);
  EXPECT_EQ(dp.fu_count(1, FuType::kMult), 1);
  EXPECT_EQ(dp.total_fu_count(FuType::kAlu), 3);
  EXPECT_EQ(dp.total_fu_count(FuType::kMult), 2);
  EXPECT_EQ(dp.total_fu_count(FuType::kBus), 2);
}

TEST(Datapath, UniformDefaultsAreUnitAndPipelined) {
  const Datapath dp = two_cluster();
  EXPECT_EQ(dp.lat(OpType::kAdd), 1);
  EXPECT_EQ(dp.lat(OpType::kMul), 1);
  EXPECT_EQ(dp.move_latency(), 1);
  EXPECT_EQ(dp.dii(FuType::kAlu), 1);
  EXPECT_EQ(dp.dii_op(OpType::kMove), 1);
}

TEST(Datapath, MoveLatencyOverride) {
  const Datapath dp = parse_datapath("[1,1|1,1]", 2, 3);
  EXPECT_EQ(dp.move_latency(), 3);
  EXPECT_EQ(dp.lat(OpType::kAdd), 1);
}

TEST(Datapath, SupportsChecksFuAvailability) {
  const Datapath dp = parse_datapath("[1,0|0,1]");
  EXPECT_TRUE(dp.supports(0, OpType::kAdd));
  EXPECT_FALSE(dp.supports(0, OpType::kMul));
  EXPECT_FALSE(dp.supports(1, OpType::kAdd));
  EXPECT_TRUE(dp.supports(1, OpType::kMul));
  EXPECT_FALSE(dp.supports(0, OpType::kMove));
}

TEST(Datapath, TargetSets) {
  const Datapath dp = parse_datapath("[1,0|1,1]");
  EXPECT_EQ(dp.target_set(OpType::kAdd), (std::vector<ClusterId>{0, 1}));
  EXPECT_EQ(dp.target_set(OpType::kMul), (std::vector<ClusterId>{1}));
  EXPECT_TRUE(dp.target_set(OpType::kMove).empty());
}

TEST(Datapath, ToStringRoundTrips) {
  EXPECT_EQ(two_cluster().to_string(), "[1,1|2,1]");
  EXPECT_EQ(parse_datapath("3,1|2,2|1,3").to_string(), "[3,1|2,2|1,3]");
}

TEST(Datapath, RejectsBadConstruction) {
  EXPECT_THROW(Datapath({}, 1, unit_latencies(), {1, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(Datapath({Cluster{{1, 1}}}, 0, unit_latencies(), {1, 1, 1}),
               std::invalid_argument);
  LatencyTable zero_lat{};
  EXPECT_THROW(Datapath({Cluster{{1, 1}}}, 1, zero_lat, {1, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(Datapath({Cluster{{1, 1}}}, 1, unit_latencies(), {0, 1, 1}),
               std::invalid_argument);
}

TEST(Datapath, ParseRejectsNonPositiveBusesAndMoveLatency) {
  // The message must name the offending field, not just throw.
  try {
    (void)parse_datapath("[1,1|1,1]", 0);
    FAIL() << "num_buses 0 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("num_buses"), std::string::npos);
  }
  try {
    (void)parse_datapath("[1,1|1,1]", 2, 0);
    FAIL() << "move_latency 0 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("move_latency"), std::string::npos);
  }
  EXPECT_THROW((void)parse_datapath("[1,1]", -2), std::invalid_argument);
}

TEST(Datapath, FuCountRejectsBusQueriesAndBadIds) {
  const Datapath dp = two_cluster();
  EXPECT_THROW((void)dp.fu_count(0, FuType::kBus), std::invalid_argument);
  EXPECT_THROW((void)dp.fu_count(5, FuType::kAlu), std::invalid_argument);
  EXPECT_THROW((void)dp.fu_count(-1, FuType::kAlu), std::invalid_argument);
}

// ---------------------------------------------------------------- parser

TEST(Parser, ParsesWithAndWithoutBrackets) {
  EXPECT_EQ(parse_datapath("[1,1|1,1]").num_clusters(), 2);
  EXPECT_EQ(parse_datapath("1,1|1,1").num_clusters(), 2);
  EXPECT_EQ(parse_datapath(" [ 2,1 | 1,3 ] ").fu_count(1, FuType::kMult), 3);
}

TEST(Parser, SingleCluster) {
  const Datapath dp = parse_datapath("[3,2]");
  EXPECT_EQ(dp.num_clusters(), 1);
  EXPECT_EQ(dp.fu_count(0, FuType::kAlu), 3);
}

TEST(Parser, PaperFiveClusterConfig) {
  const Datapath dp = parse_datapath("[2,2|2,1|2,2|3,1|1,1]");
  EXPECT_EQ(dp.num_clusters(), 5);
  EXPECT_EQ(dp.total_fu_count(FuType::kAlu), 10);
  EXPECT_EQ(dp.total_fu_count(FuType::kMult), 7);
}

TEST(Parser, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_datapath(""), std::invalid_argument);
  EXPECT_THROW((void)parse_datapath("[ ]"), std::invalid_argument);
  EXPECT_THROW((void)parse_datapath("[1|1,1]"), std::invalid_argument);
  EXPECT_THROW((void)parse_datapath("[1,1,1]"), std::invalid_argument);
  EXPECT_THROW((void)parse_datapath("[1,a]"), std::invalid_argument);
  EXPECT_THROW((void)parse_datapath("[1,1"), std::invalid_argument);
  EXPECT_THROW((void)parse_datapath("1,1]"), std::invalid_argument);
}

TEST(Parser, BusCountPassedThrough) {
  EXPECT_EQ(parse_datapath("[1,1]", 5).num_buses(), 5);
  EXPECT_THROW((void)parse_datapath("[1,1]", 0), std::invalid_argument);
}

}  // namespace
}  // namespace cvb
