// Unit tests for the operand-list model and the symbolic VLIW emitter.
#include <gtest/gtest.h>

#include <sstream>

#include "bind/bound_dfg.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"
#include "sched/emit.hpp"
#include "sched/list_scheduler.hpp"

namespace cvb {
namespace {

// --------------------------------------------------------- operand model

TEST(Operands, BuilderRecordsSlotsInOrder) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  (void)bld.sub(x, bld.input(), "y");
  const Dfg g = std::move(bld).take();
  ASSERT_EQ(g.operands(0).size(), 2u);
  EXPECT_EQ(g.operands(0)[0], kNoOp);
  EXPECT_EQ(g.operands(0)[1], kNoOp);
  ASSERT_EQ(g.operands(1).size(), 2u);
  EXPECT_EQ(g.operands(1)[0], 0);
  EXPECT_EQ(g.operands(1)[1], kNoOp);
}

TEST(Operands, SquaringKeepsBothSlotsOneEdge) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  (void)bld.mul(x, x, "x2");
  const Dfg g = std::move(bld).take();
  EXPECT_EQ(g.num_edges(), 1);
  ASSERT_EQ(g.operands(1).size(), 2u);
  EXPECT_EQ(g.operands(1)[0], 0);
  EXPECT_EQ(g.operands(1)[1], 0);
}

TEST(Operands, AddEdgeSyncsOperands) {
  Dfg g;
  const OpId a = g.add_op(OpType::kAdd);
  const OpId b = g.add_op(OpType::kAdd);
  g.add_edge(a, b);
  ASSERT_EQ(g.operands(b).size(), 1u);
  EXPECT_EQ(g.operands(b)[0], a);
}

TEST(Operands, BoundDfgRewritesRemoteOperandsThroughMove) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  (void)bld.sub(x, bld.input(), "y");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BoundDfg bound = build_bound_dfg(g, {0, 1}, dp);
  // y's first operand is now the move; the live-in slot survives.
  ASSERT_EQ(bound.graph.operands(1).size(), 2u);
  EXPECT_EQ(bound.graph.operands(1)[0], 2);  // the inserted move
  EXPECT_EQ(bound.graph.operands(1)[1], kNoOp);
  // the move reads the original producer
  ASSERT_EQ(bound.graph.operands(2).size(), 1u);
  EXPECT_EQ(bound.graph.operands(2)[0], 0);
}

// ---------------------------------------------------------------- emitter

TEST(Emit, EmitsOneLinePerCycleWithSlots) {
  DfgBuilder bld;
  const Value s1 = bld.add(bld.input(), bld.input(), "s1");
  const Value s2 = bld.add(bld.input(), bld.input(), "s2");
  (void)bld.mul(s1, s2, "p");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,1]");
  const BoundDfg bound = build_bound_dfg(g, {0, 0, 0}, dp);
  const Schedule s = list_schedule(bound, dp);

  std::ostringstream out;
  emit_vliw_asm(out, bound, dp, s);
  const std::string text = out.str();
  EXPECT_NE(text.find("cycle 0 :"), std::string::npos);
  EXPECT_NE(text.find("add %s1 <- %in0, %in1"), std::string::npos);
  EXPECT_NE(text.find("mul %p <- %s1, %s2"), std::string::npos);
}

TEST(Emit, MovesShowSourceAndDestination) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  (void)bld.add(x, bld.input(), "y");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BoundDfg bound = build_bound_dfg(g, {0, 1}, dp);
  const Schedule s = list_schedule(bound, dp);

  std::ostringstream out;
  emit_vliw_asm(out, bound, dp, s);
  const std::string text = out.str();
  EXPECT_NE(text.find("bus { mov %t1 <- %x -> c1 }"), std::string::npos);
  EXPECT_NE(text.find("add %y <- %t1"), std::string::npos);
}

TEST(Emit, SquaredOperandEmitsTwice) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input(), "x");
  (void)bld.mul(x, x, "x2");
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = build_bound_dfg(g, {0, 0}, dp);
  const Schedule s = list_schedule(bound, dp);
  std::ostringstream out;
  emit_vliw_asm(out, bound, dp, s);
  EXPECT_NE(out.str().find("mul %x2 <- %x, %x"), std::string::npos);
}

TEST(Emit, IdleCyclesPrintNop) {
  // A chain through a move leaves cluster FUs idle at the move cycle,
  // but the bus is busy, so no nop there; instead force a real gap with
  // a 3-cycle mul.
  DfgBuilder bld;
  const Value x = bld.mul(bld.input(), bld.input(), "x");
  (void)bld.add(x, bld.input(), "y");
  const Dfg g = std::move(bld).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 3;
  std::array<int, kNumFuTypes> dii{1, 1, 1};
  const Datapath dp({Cluster{{1, 1}}}, 1, lat, dii);
  const BoundDfg bound = build_bound_dfg(g, {0, 0}, dp);
  const Schedule s = list_schedule(bound, dp);
  std::ostringstream out;
  emit_vliw_asm(out, bound, dp, s);
  EXPECT_NE(out.str().find("nop"), std::string::npos);
}

TEST(Emit, RejectsCorruptSchedule) {
  DfgBuilder bld;
  (void)bld.add(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = build_bound_dfg(g, {0}, dp);
  Schedule s = list_schedule(bound, dp);
  s.start[0] = 7;  // outside the recorded latency
  std::ostringstream out;
  EXPECT_THROW(emit_vliw_asm(out, bound, dp, s), std::logic_error);
}

}  // namespace
}  // namespace cvb
