// Differential oracle for the data-oriented list-scheduler core: the
// rewritten core (src/sched/list_scheduler_core.hpp) is compared
// schedule-by-schedule — same latency, same per-op start slot, same
// move placement — against the frozen pre-rewrite reference core
// (tests/reference_scheduler.hpp) on every bundled benchmark DFG and on
// fuzzed DFG/machine pairs, over both consumers: the full
// list_schedule path and the DeltaEvaluator overlay path. Step-budget
// accounting parity is pinned too, so resource-guard behaviour cannot
// silently drift.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "bind/delta_eval.hpp"
#include "bind/driver.hpp"
#include "bind/eval_engine.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/quality.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "tests/reference_scheduler.hpp"

namespace cvb {
namespace {

/// Schedules `bound` with both cores and asserts bit-identity:
/// schedule length, every per-op start slot (regular ops and moves
/// alike), and the move count.
void expect_identical_schedules(const BoundDfg& bound, const Datapath& dp,
                                const ListSchedulerOptions& options,
                                const std::string& context) {
  const Schedule ours = list_schedule(bound, dp, options);
  const Schedule reference = testref::ref_list_schedule(bound, dp, options);
  ASSERT_EQ(ours.latency, reference.latency) << context;
  ASSERT_EQ(ours.num_moves, reference.num_moves) << context;
  ASSERT_EQ(ours.start.size(), reference.start.size()) << context;
  for (std::size_t v = 0; v < ours.start.size(); ++v) {
    ASSERT_EQ(ours.start[v], reference.start[v])
        << context << ": op " << v << " ("
        << bound.graph.name(static_cast<OpId>(v)) << ")";
  }
}

/// The B-INIT binding for (dfg, dp) — the binding every evaluation
/// consumer actually schedules.
Binding init_binding(const Dfg& dfg, const Datapath& dp) {
  DriverParams init_only;
  init_only.run_iterative = false;
  return bind_initial_best(dfg, dp, init_only).binding;
}

const std::vector<std::string> kDatapaths = {"[1,1|1,1]", "[2,1|1,2]",
                                             "[3,1|2,2|1,3]"};

TEST(SchedCoreDiff, BundledBenchmarksFullPath) {
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    for (const std::string& dp_text : kDatapaths) {
      const Datapath dp = parse_datapath(dp_text);
      const Binding binding = init_binding(kernel.dfg, dp);
      const BoundDfg bound = build_bound_dfg(kernel.dfg, binding, dp);
      expect_identical_schedules(bound, dp, {},
                                 kernel.name + " on " + dp_text);
      ListSchedulerOptions unbounded;
      unbounded.unbounded_bus = true;
      expect_identical_schedules(bound, dp, unbounded,
                                 kernel.name + " on " + dp_text +
                                     " (unbounded bus)");
    }
  }
}

TEST(SchedCoreDiff, BundledBenchmarksNonUnitLatencies) {
  // Non-unit latencies and unpipelined multipliers exercise the
  // occupancy tables' dii spans (> 1 busy row per issue).
  LatencyTable lat{};
  lat.fill(1);
  lat[static_cast<std::size_t>(OpType::kMul)] = 3;
  lat[static_cast<std::size_t>(OpType::kMac)] = 3;
  lat[static_cast<std::size_t>(OpType::kMove)] = 2;
  const std::array<int, kNumFuTypes> dii = {1, 3, 2};  // ALU, MULT, BUS
  const Datapath dp({Cluster{{2, 1}}, Cluster{{1, 1}}}, /*num_buses=*/1, lat,
                    dii);
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const Binding binding = init_binding(kernel.dfg, dp);
    const BoundDfg bound = build_bound_dfg(kernel.dfg, binding, dp);
    expect_identical_schedules(bound, dp, {}, kernel.name + " non-unit");
  }
}

TEST(SchedCoreDiff, BundledBenchmarksDeltaPath) {
  // The overlay path: every single-op re-binding candidate evaluated
  // through DeltaEvaluator must equal an EvalResult derived from the
  // *reference* core on a freshly built bound DFG of the materialized
  // binding — latency, move count, and the full Q_U tail vector.
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const Datapath dp = parse_datapath("[2,1|1,2]");
    const Binding incumbent = init_binding(kernel.dfg, dp);
    DeltaEvaluator evaluator;
    evaluator.set_incumbent(kernel.dfg, dp, incumbent);
    int candidates = 0;
    for (OpId v = 0; v < kernel.dfg.num_ops(); ++v) {
      for (const ClusterId c : dp.target_set(kernel.dfg.type(v))) {
        if (c == incumbent[static_cast<std::size_t>(v)]) {
          continue;
        }
        const BindingDelta delta = {{v, c}};
        const EvalResult ours = evaluator.evaluate(delta, {});

        Binding trial = incumbent;
        trial[static_cast<std::size_t>(v)] = c;
        const BoundDfg bound = build_bound_dfg(kernel.dfg, trial, dp);
        const Schedule sched = testref::ref_list_schedule(bound, dp, {});
        QualityU qu = compute_quality_u(bound, dp, sched);
        ASSERT_EQ(ours.latency, sched.latency)
            << kernel.name << " op " << v << " -> cluster " << c;
        ASSERT_EQ(ours.num_moves, sched.num_moves)
            << kernel.name << " op " << v << " -> cluster " << c;
        ASSERT_EQ(ours.tail_counts, qu.tail_counts)
            << kernel.name << " op " << v << " -> cluster " << c;
        ++candidates;
      }
    }
    EXPECT_GT(candidates, 0) << kernel.name;
  }
}

/// A random datapath that always hosts both FU types somewhere (so any
/// DFG has a feasible binding) and, on odd trials, non-unit latencies
/// and dii > 1.
Datapath random_datapath(Rng& rng, bool non_unit) {
  const int num_clusters = rng.uniform_int(1, 4);
  std::vector<Cluster> clusters;
  for (int c = 0; c < num_clusters; ++c) {
    clusters.push_back(
        Cluster{{rng.uniform_int(0, 2), rng.uniform_int(0, 2)}});
  }
  // Ensure both cluster FU types exist somewhere.
  const auto host = [&](int fu_type) {
    const std::size_t c = static_cast<std::size_t>(
        rng.uniform_int(0, num_clusters - 1));
    clusters[c].fu_count[static_cast<std::size_t>(fu_type)] = std::max(
        1, clusters[c].fu_count[static_cast<std::size_t>(fu_type)]);
  };
  host(0);
  host(1);
  const int buses = rng.uniform_int(1, 2);
  if (!non_unit) {
    return Datapath::uniform(clusters, buses, rng.uniform_int(1, 3));
  }
  LatencyTable lat{};
  lat.fill(rng.uniform_int(1, 2));
  lat[static_cast<std::size_t>(OpType::kMul)] = rng.uniform_int(1, 3);
  lat[static_cast<std::size_t>(OpType::kMac)] = rng.uniform_int(1, 3);
  lat[static_cast<std::size_t>(OpType::kMove)] = rng.uniform_int(1, 3);
  const std::array<int, kNumFuTypes> dii = {rng.uniform_int(1, 2),
                                            rng.uniform_int(1, 3),
                                            rng.uniform_int(1, 2)};
  return Datapath(clusters, buses, lat, dii);
}

/// A random feasible binding: every op on a uniformly drawn cluster
/// from its target set.
Binding random_binding(const Dfg& dfg, const Datapath& dp, Rng& rng) {
  Binding binding(static_cast<std::size_t>(dfg.num_ops()), 0);
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    const std::vector<ClusterId> targets = dp.target_set(dfg.type(v));
    binding[static_cast<std::size_t>(v)] = targets[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(targets.size()) - 1))];
  }
  return binding;
}

TEST(SchedCoreDiff, FuzzedDfgMachinePairs) {
  // 500 fuzzed (DFG, machine, binding) triples: random layered DAGs on
  // random datapaths (half with non-unit latencies / dii windows),
  // random feasible bindings, schedules compared start-by-start.
  Rng rng(60806);
  constexpr int kTrials = 500;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomDagParams params;
    params.num_ops = rng.uniform_int(3, 60);
    params.num_layers = rng.uniform_int(1, std::min(params.num_ops, 8));
    params.mul_fraction = rng.uniform01() * 0.6;
    params.extra_edge_prob = rng.uniform01() * 0.5;
    const Dfg dfg = make_random_layered(params, rng);
    const Datapath dp = random_datapath(rng, trial % 2 == 1);
    const Binding binding = random_binding(dfg, dp, rng);
    const BoundDfg bound = build_bound_dfg(dfg, binding, dp);
    ListSchedulerOptions options;
    options.unbounded_bus = trial % 7 == 3;
    expect_identical_schedules(bound, dp, options,
                               "fuzz trial " + std::to_string(trial) + " on " +
                                   dp.to_string());
  }
}

TEST(SchedCoreDiff, StepBudgetAccountingParity) {
  // The step budget counts ready-candidate visits. The rewritten core
  // must fire the guard at exactly the same budget values as the
  // reference: for every budget from 1 upward, both throw — until the
  // first budget where both succeed with identical schedules.
  const BenchmarkKernel kernel = benchmark_by_name("EWF");
  const Datapath dp = parse_datapath("[2,1|1,1]");
  const Binding binding = init_binding(kernel.dfg, dp);
  const BoundDfg bound = build_bound_dfg(kernel.dfg, binding, dp);

  const auto visits_with = [&](auto schedule_fn) -> long long {
    // Smallest budget that completes = total candidate visits.
    for (long long budget = 1;; ++budget) {
      ListSchedulerOptions options;
      options.step_budget = budget;
      try {
        (void)schedule_fn(options);
        return budget;
      } catch (const ResourceLimitError&) {
        continue;
      }
    }
  };
  const long long ours = visits_with([&](const ListSchedulerOptions& o) {
    return list_schedule(bound, dp, o);
  });
  const long long reference = visits_with([&](const ListSchedulerOptions& o) {
    return testref::ref_list_schedule(bound, dp, o);
  });
  EXPECT_EQ(ours, reference);

  ListSchedulerOptions exact;
  exact.step_budget = ours;
  expect_identical_schedules(bound, dp, exact, "at exact budget");
}

TEST(SchedCoreDiff, MalformedPlacementErrorsMatch) {
  // Placement errors carry the same messages as before the rewrite.
  const Dfg dfg = make_fir(4);
  const Datapath dp = parse_datapath("[1,1|1,1]");
  Binding binding(static_cast<std::size_t>(dfg.num_ops()), 0);
  BoundDfg bound = build_bound_dfg(dfg, binding, dp);
  bound.place[0] = kNoCluster;
  try {
    (void)list_schedule(bound, dp, {});
    FAIL() << "missing placement accepted";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("has no cluster placement"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace cvb
