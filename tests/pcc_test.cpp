// Unit tests for the PCC baseline: partial-component formation,
// assignment feasibility, and overall behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bind/binding.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

TEST(PccComponents, EveryOpLabeled) {
  const Dfg g = benchmark_by_name("EWF").dfg;
  const std::vector<int> labels = pcc_partial_components(g, 8);
  ASSERT_EQ(static_cast<int>(labels.size()), g.num_ops());
  for (const int l : labels) {
    EXPECT_GE(l, 0);
  }
}

TEST(PccComponents, RespectsSizeCap) {
  const Dfg g = benchmark_by_name("DCT-DIT").dfg;
  for (const int cap : {1, 3, 8, 16}) {
    const std::vector<int> labels = pcc_partial_components(g, cap);
    std::vector<int> sizes;
    for (const int l : labels) {
      if (l >= static_cast<int>(sizes.size())) {
        sizes.resize(static_cast<std::size_t>(l) + 1, 0);
      }
      ++sizes[static_cast<std::size_t>(l)];
    }
    for (const int size : sizes) {
      EXPECT_LE(size, cap) << "cap " << cap;
      EXPECT_GT(size, 0);
    }
  }
}

TEST(PccComponents, CapOneIsOneOpPerComponent) {
  const Dfg g = make_fir(6);
  const std::vector<int> labels = pcc_partial_components(g, 1);
  std::set<int> distinct(labels.begin(), labels.end());
  EXPECT_EQ(static_cast<int>(distinct.size()), g.num_ops());
}

TEST(PccComponents, LargeCapKeepsChainTogether) {
  // A pure chain with a cap covering it all: one component.
  DfgBuilder bld;
  Value acc = bld.add(bld.input(), bld.input());
  for (int i = 0; i < 7; ++i) {
    acc = bld.add(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const std::vector<int> labels = pcc_partial_components(g, 100);
  EXPECT_EQ(*std::max_element(labels.begin(), labels.end()), 0);
}

TEST(PccComponents, RejectsNonPositiveCap) {
  EXPECT_THROW((void)pcc_partial_components(make_fir(3), 0),
               std::invalid_argument);
}

TEST(Pcc, ProducesValidVerifiedResult) {
  const Dfg g = benchmark_by_name("ARF").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  PccInfo info;
  const BindResult r = pcc_binding(g, dp, {}, &info);
  EXPECT_EQ(check_binding(g, r.binding, dp), "");
  EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "");
  EXPECT_GT(info.partitions_tried, 0);
  EXPECT_GT(info.best_cap, 0);
  EXPECT_GE(info.ms, 0.0);
}

TEST(Pcc, HandlesHeterogeneousClusters) {
  // Cluster 1 has no multiplier: components containing muls must land
  // on cluster 0 (possibly after the op-level fallback).
  DfgBuilder bld;
  const Value x = bld.mul(bld.input(), bld.input());
  const Value y = bld.add(x, bld.input());
  (void)bld.mul(y, bld.input());
  (void)bld.add(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,0]");
  const BindResult r = pcc_binding(g, dp);
  EXPECT_EQ(check_binding(g, r.binding, dp), "");
  EXPECT_EQ(r.binding[0], 0);
  EXPECT_EQ(r.binding[2], 0);
}

TEST(Pcc, ThrowsWhenOpUnsupportedEverywhere) {
  DfgBuilder bld;
  (void)bld.mul(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  EXPECT_THROW((void)pcc_binding(g, parse_datapath("[1,0|2,0]")),
               std::invalid_argument);
  EXPECT_THROW((void)pcc_binding(Dfg{}, parse_datapath("[1,1]")),
               std::invalid_argument);
}

TEST(Pcc, ExplicitCapSweepIsUsed) {
  const Dfg g = benchmark_by_name("FFT").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  PccParams params;
  params.component_caps = {4};
  PccInfo info;
  (void)pcc_binding(g, dp, params, &info);
  EXPECT_EQ(info.partitions_tried, 1);
  EXPECT_EQ(info.best_cap, 4);
}

TEST(Pcc, SweepNeverWorseThanAnySingleCap) {
  const Dfg g = benchmark_by_name("DCT-DIF").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult sweep = pcc_binding(g, dp);
  for (const int cap : {2, 8, 32}) {
    PccParams params;
    params.component_caps = {cap};
    const BindResult single = pcc_binding(g, dp, params);
    EXPECT_LE(sweep.schedule.latency, single.schedule.latency) << cap;
  }
}

TEST(Pcc, DeterministicAcrossRuns) {
  const Dfg g = benchmark_by_name("EWF").dfg;
  const Datapath dp = parse_datapath("[2,1|1,1]");
  const BindResult a = pcc_binding(g, dp);
  const BindResult b = pcc_binding(g, dp);
  EXPECT_EQ(a.binding, b.binding);
}

TEST(Pcc, BalancesTwoIndependentChains) {
  DfgBuilder bld;
  for (int c = 0; c < 2; ++c) {
    Value acc = bld.add(bld.input(), bld.input());
    for (int i = 0; i < 4; ++i) {
      acc = bld.add(acc, bld.input());
    }
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult r = pcc_binding(g, dp);
  EXPECT_EQ(r.schedule.latency, 5);
  EXPECT_EQ(r.schedule.num_moves, 0);
}

}  // namespace
}  // namespace cvb
