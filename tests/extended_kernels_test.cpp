// Unit tests for the extended (non-paper) kernels.
#include <gtest/gtest.h>

#include "bind/driver.hpp"
#include "graph/analysis.hpp"
#include "graph/components.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

TEST(MatMul, OpCountsFollowFormula) {
  for (const int n : {1, 2, 3, 4}) {
    const Dfg g = make_matmul(n);
    EXPECT_EQ(g.count_fu_type(FuType::kMult), n * n * n) << n;
    EXPECT_EQ(g.count_fu_type(FuType::kAlu), n * n * (n - 1)) << n;
    EXPECT_NO_THROW(g.validate());
  }
}

TEST(MatMul, DepthIsMulPlusLogTree) {
  // depth = 1 (mul) + ceil(log2 n) reduction levels.
  EXPECT_EQ(critical_path_length(make_matmul(2), unit_latencies()), 2);
  EXPECT_EQ(critical_path_length(make_matmul(4), unit_latencies()), 3);
}

TEST(MatMul, DotProductsAreIndependentComponents) {
  EXPECT_EQ(num_components(make_matmul(2)), 4);
  EXPECT_EQ(num_components(make_matmul(3)), 9);
}

TEST(MatMul, RejectsBadSize) {
  EXPECT_THROW((void)make_matmul(0), std::invalid_argument);
}

TEST(Horner, IsStrictlySerial) {
  const Dfg g = make_horner(6);
  // degree muls + degree adds, chained: depth == num_ops.
  EXPECT_EQ(critical_path_length(g, unit_latencies()), g.num_ops());
  EXPECT_EQ(num_components(g), 1);
}

TEST(Horner, ClusteringCannotHelp) {
  // The binder must recognize there is nothing to parallelize: best
  // binding keeps the chain local with zero transfers.
  const Dfg g = make_horner(8);
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult r = bind_full(g, dp);
  EXPECT_EQ(r.schedule.num_moves, 0);
  EXPECT_EQ(r.schedule.latency,
            critical_path_length(g, unit_latencies()));
}

TEST(FftRadix4, ShapeAndBindability) {
  const Dfg g = make_fft_radix4();
  EXPECT_EQ(g.num_ops(), 34);
  EXPECT_EQ(g.count_fu_type(FuType::kMult), 12);
  EXPECT_EQ(critical_path_length(g, unit_latencies()), 4);
  EXPECT_EQ(num_components(g), 1);

  const Datapath dp = parse_datapath("[2,2|2,2]");
  const BindResult r = bind_full(g, dp);
  EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "");
}

TEST(Dct2d, RowColumnStructure) {
  const Dfg g = make_dct2d_rowcol();
  EXPECT_EQ(g.num_ops(), 16);
  EXPECT_EQ(critical_path_length(g, unit_latencies()), 4);
  // Like DCT-DIF, the transform splits into independent sum/difference
  // planes (the column pass never mixes them).
  EXPECT_EQ(num_components(g), 2);
}

TEST(ExtendedKernels, FullPipelineAcrossDatapaths) {
  const std::vector<Dfg> kernels = {make_matmul(3), make_horner(10),
                                    make_fft_radix4(), make_dct2d_rowcol()};
  for (const Dfg& g : kernels) {
    for (const std::string spec : {"[1,1|1,1]", "[2,1|2,1|1,1]"}) {
      const Datapath dp = parse_datapath(spec);
      const BindResult r = bind_full(g, dp);
      EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "") << spec;
      EXPECT_GE(r.schedule.latency,
                critical_path_length(g, dp.latencies()));
    }
  }
}

}  // namespace
}  // namespace cvb
