// Unit tests for the cvbind command-line driver.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"
#include "support/json.hpp"

namespace cvb {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, HelpPrintsUsage) {
  const CliRun r = run({"--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage: cvbind"), std::string::npos);
}

TEST(Cli, ListKernelsShowsSuite) {
  const CliRun r = run({"--list-kernels"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("EWF"), std::string::npos);
  EXPECT_NE(r.out.find("DCT-DIT-2"), std::string::npos);
}

TEST(Cli, DefaultSummaryRun) {
  const CliRun r = run({"ARF"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ARF on [1,1|1,1]"), std::string::npos);
  EXPECT_NE(r.out.find("L="), std::string::npos);
  EXPECT_NE(r.out.find("lower bound"), std::string::npos);
}

TEST(Cli, AllAlgorithmsRun) {
  for (const std::string algorithm :
       {"b-iter", "b-init", "pcc", "sa", "mincut"}) {
    const CliRun r = run({"FFT", "--algorithm", algorithm});
    EXPECT_EQ(r.code, 0) << algorithm << ": " << r.err;
    EXPECT_NE(r.out.find(algorithm), std::string::npos);
  }
}

TEST(Cli, ExhaustiveOnTinyInput) {
  // Exhaustive on a real benchmark would explode; use a tiny .dfg file.
  const std::string path = "cli_test_tiny.dfg";
  {
    std::ofstream file(path);
    file << "dfg tiny\nop 0 add a\nop 1 add b\nop 2 mul c\n"
            "args 0 in in\nargs 1 in in\nargs 2 0 1\n";
  }
  const CliRun r = run({path, "--algorithm", "exhaustive"});
  std::remove(path.c_str());
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("tiny"), std::string::npos);
}

TEST(Cli, MultipleOutputs) {
  const CliRun r =
      run({"ARF", "--output", "summary,report,gantt,asm,pressure"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("binding report"), std::string::npos);
  EXPECT_NE(r.out.find("cycle"), std::string::npos);
  EXPECT_NE(r.out.find("cycle 0 :"), std::string::npos);
  EXPECT_NE(r.out.find("register pressure"), std::string::npos);
}

TEST(Cli, RegallocOutput) {
  const CliRun r = run({"EWF", "--output", "regalloc"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("register files:"), std::string::npos);
  EXPECT_NE(r.out.find("worst"), std::string::npos);
}

TEST(Cli, DotAndDfgOutputs) {
  const CliRun r = run({"FFT", "--output", "dot,dfg"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("digraph"), std::string::npos);
  EXPECT_NE(r.out.find("dfg FFT"), std::string::npos);
}

TEST(Cli, DatapathAndBusOptionsApply) {
  const CliRun r = run({"FFT", "--datapath", "[2,1|2,1]", "--buses", "1",
                        "--move-latency", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("[2,1|2,1]"), std::string::npos);
  EXPECT_NE(r.out.find("1 buses"), std::string::npos);
  EXPECT_NE(r.out.find("lat(move)=2"), std::string::npos);
}

TEST(Cli, TopologyOptionApplies) {
  const CliRun r = run({"FFT", "--datapath", "[1,1|1,1|1,1]", "--topology",
                        "ring", "--output", "summary,check"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ring("), std::string::npos);
  EXPECT_NE(r.out.find("semantic check"), std::string::npos);
  // Default single_bus keeps the historical summary line untouched.
  const CliRun plain = run({"FFT", "--datapath", "[1,1|1,1|1,1]"});
  EXPECT_EQ(plain.out.find("ring("), std::string::npos);
  EXPECT_EQ(plain.out.find("single_bus"), std::string::npos);
}

TEST(Cli, TopologyOptionErrors) {
  // Unknown fabric, mesh/cluster mismatch, and the --machine conflict
  // all fail as invalid input with a message naming the problem.
  const CliRun bad = run({"FFT", "--topology", "torus"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("topology"), std::string::npos);
  EXPECT_EQ(run({"FFT", "--topology", "mesh:3x2"}).code, 1);
  const CliRun conflict =
      run({"FFT", "--topology", "ring", "--machine", "whatever.machine"});
  EXPECT_EQ(conflict.code, 1);
  EXPECT_NE(conflict.err.find("--machine"), std::string::npos);
  // Non-positive --buses / --move-latency are rejected by flag name.
  const CliRun zero_buses = run({"FFT", "--buses", "0"});
  EXPECT_EQ(zero_buses.code, 1);
  EXPECT_NE(zero_buses.err.find("--buses"), std::string::npos);
  EXPECT_EQ(run({"FFT", "--move-latency", "0"}).code, 1);
}

TEST(Cli, ErrorsAreReported) {
  EXPECT_EQ(run({}).code, 1);
  EXPECT_EQ(run({"--bogus"}).code, 1);
  EXPECT_EQ(run({"NoSuchKernel"}).code, 1);
  EXPECT_EQ(run({"ARF", "--algorithm", "quantum"}).code, 1);
  EXPECT_EQ(run({"ARF", "--output", "hologram"}).code, 1);
  EXPECT_EQ(run({"missing_file.dfg"}).code, 1);
  EXPECT_EQ(run({"ARF", "--datapath"}).code, 1);  // missing value
  EXPECT_EQ(run({"ARF", "extra_positional"}).code, 1);
}

TEST(Cli, MincutRejectsHeterogeneousConfigGracefully) {
  const CliRun r =
      run({"ARF", "--algorithm", "mincut", "--datapath", "[2,1|1,1]"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("homogeneous"), std::string::npos);
}

TEST(Cli, MachineFileOptionApplies) {
  const std::string path = "cli_test_machine.machine";
  {
    std::ofstream file(path);
    file << "machine testdsp\nclusters [2,1|1,1]\nbuses 1\n"
            "latency mov 2\n";
  }
  const CliRun r = run({"ARF", "--machine", path});
  std::remove(path.c_str());
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("[2,1|1,1]"), std::string::npos);
  EXPECT_NE(r.out.find("1 buses"), std::string::npos);
  EXPECT_NE(r.out.find("lat(move)=2"), std::string::npos);
}

TEST(Cli, SemanticCheckOutput) {
  const CliRun r = run({"DCT-LEE", "--output", "check"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("semantic check"), std::string::npos);
}

TEST(Cli, MissingMachineFileFails) {
  EXPECT_EQ(run({"ARF", "--machine", "no_such.machine"}).code, 1);
}

TEST(Cli, EffortPresetsAccepted) {
  for (const std::string effort : {"fast", "balanced", "max"}) {
    const CliRun r = run({"ARF", "--effort", effort});
    EXPECT_EQ(r.code, 0) << effort << ": " << r.err;
  }
  EXPECT_EQ(run({"ARF", "--effort", "heroic"}).code, 1);
}

TEST(Cli, StatsJsonToStdout) {
  const CliRun r = run({"ARF", "--stats-json", "-"});
  EXPECT_EQ(r.code, 0) << r.err;
  // The stats document is appended after the summary; parse it back.
  const std::size_t start = r.out.find("{");
  ASSERT_NE(start, std::string::npos);
  const JsonValue doc = JsonValue::parse(r.out.substr(start));
  EXPECT_GT(doc.find("candidates")->as_number(), 0.0);
  EXPECT_EQ(doc.find("threads")->as_number(), 1.0);
  for (const char* key :
       {"cache_hits", "cache_misses", "cache_hit_rate", "batches", "eval_ms"}) {
    EXPECT_NE(doc.find(key), nullptr) << key;
  }
}

TEST(Cli, StatsJsonToFile) {
  const std::string path = "cli_test_stats.json";
  const CliRun r = run({"EWF", "--stats-json", path});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  file.close();
  std::remove(path.c_str());
  const JsonValue doc = JsonValue::parse(content.str());
  EXPECT_GT(doc.find("candidates")->as_number(), 0.0);
}

TEST(Cli, StatsJsonUnwritablePathFails) {
  EXPECT_EQ(run({"ARF", "--stats-json", "no_such_dir/stats.json"}).code, 1);
}

TEST(Cli, PreExpiredDeadlineExitsThreeWithValidSummary) {
  const CliRun r = run({"DCT-DIF", "--deadline-ms", "0"});
  // Typed deadline exit: distinct from parse failures (1), and the
  // best-so-far result was still printed in full.
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("L="), std::string::npos);
  EXPECT_NE(r.err.find("deadline"), std::string::npos);
}

TEST(Cli, DeadlineAcceptedByAllAnytimeAlgorithms) {
  for (const std::string algorithm : {"b-iter", "b-init", "pcc"}) {
    const CliRun r =
        run({"ARF", "--algorithm", algorithm, "--deadline-ms", "0"});
    EXPECT_EQ(r.code, 3) << algorithm << ": " << r.err;
    EXPECT_NE(r.out.find("L="), std::string::npos) << algorithm;
  }
}

TEST(Cli, GenerousDeadlineExitsZero) {
  const CliRun r = run({"ARF", "--deadline-ms", "1000000"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST(Cli, DeadlineRejectedForNonAnytimeAlgorithms) {
  EXPECT_EQ(run({"EWF", "--algorithm", "sa", "--deadline-ms", "10"}).code, 1);
  EXPECT_EQ(run({"EWF", "--algorithm", "mincut", "--deadline-ms", "10"}).code,
            1);
}

TEST(Cli, ParseFailureStillExitsOne) {
  // Exit-code contract: invalid input is 1 even when deadlines are in
  // play; 3 is reserved for over-deadline runs.
  EXPECT_EQ(run({"NoSuchKernel", "--deadline-ms", "0"}).code, 1);
  EXPECT_EQ(run({"ARF", "--deadline-ms", "-5"}).code, 1);
  EXPECT_EQ(run({"ARF", "--deadline-ms"}).code, 1);
}

TEST(Cli, SaSeedIsHonored) {
  const CliRun a = run({"EWF", "--algorithm", "sa", "--seed", "7"});
  const CliRun b = run({"EWF", "--algorithm", "sa", "--seed", "7"});
  EXPECT_EQ(a.out, b.out);  // deterministic per seed
}

}  // namespace
}  // namespace cvb
// -------------------------------------------------------------- cvpipe

namespace cvb {
namespace {

CliRun run_pipe(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_pipe_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(PipeCli, HelpAndListLoops) {
  EXPECT_EQ(run_pipe({"--help"}).code, 0);
  const CliRun r = run_pipe({"--list-loops"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("biquad"), std::string::npos);
}

TEST(PipeCli, PipelinesEveryLoop) {
  for (const std::string loop :
       {"dot", "dot4", "biquad", "cmac", "lattice2", "lattice3"}) {
    const CliRun r = run_pipe({loop});
    EXPECT_EQ(r.code, 0) << loop << ": " << r.err;
    EXPECT_NE(r.out.find("II="), std::string::npos) << loop;
    EXPECT_NE(r.out.find("slot 0:"), std::string::npos) << loop;
  }
}

TEST(PipeCli, ExpansionSummary) {
  const CliRun r = run_pipe({"biquad", "--iterations", "8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("8 iterations:"), std::string::npos);
  EXPECT_NE(r.out.find("cycles pipelined"), std::string::npos);
}

TEST(PipeCli, OptionsApply) {
  const CliRun r = run_pipe({"cmac", "--datapath", "[1,1|1,1]", "--buses",
                             "1", "--move-latency", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("[1,1|1,1]"), std::string::npos);
  EXPECT_NE(r.out.find("1 buses"), std::string::npos);
}

TEST(PipeCli, ErrorsRejected) {
  EXPECT_EQ(run_pipe({}).code, 1);
  EXPECT_EQ(run_pipe({"nosuchloop"}).code, 1);
  EXPECT_EQ(run_pipe({"dot", "--bogus"}).code, 1);
  EXPECT_EQ(run_pipe({"dot", "--buses"}).code, 1);
}

}  // namespace
}  // namespace cvb
