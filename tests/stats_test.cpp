// Unit tests for the DFG statistics module.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "kernels/kernels.hpp"

namespace cvb {
namespace {

TEST(Stats, DiamondShape) {
  DfgBuilder b;
  const Value a = b.add(b.input(), b.input(), "a");
  const Value l = b.add(a, b.input(), "l");
  const Value r = b.mul(a, b.input(), "r");
  (void)b.add(l, r, "d");
  const Dfg g = std::move(b).take();
  const DfgStats s = compute_stats(g, unit_latencies());
  EXPECT_EQ(s.num_ops, 4);
  EXPECT_EQ(s.num_edges, 4);
  EXPECT_EQ(s.num_components, 1);
  EXPECT_EQ(s.critical_path, 3);
  EXPECT_EQ(s.max_fanout, 2);
  EXPECT_DOUBLE_EQ(s.avg_fanout, 1.0);
  EXPECT_EQ(s.ops_per_level, (std::vector<int>{1, 2, 1}));
  EXPECT_EQ(s.max_width, 2);
  EXPECT_EQ(s.num_inputs, 1);
  EXPECT_EQ(s.num_outputs, 1);
}

TEST(Stats, EmptyGraph) {
  const DfgStats s = compute_stats(Dfg{}, unit_latencies());
  EXPECT_EQ(s.num_ops, 0);
  EXPECT_EQ(s.max_width, 0);
  EXPECT_TRUE(s.ops_per_level.empty());
}

TEST(Stats, LevelsSumToOps) {
  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const DfgStats s = compute_stats(kernel.dfg, unit_latencies());
    int total = 0;
    for (const int w : s.ops_per_level) {
      total += w;
    }
    EXPECT_EQ(total, s.num_ops) << kernel.name;
    EXPECT_EQ(static_cast<int>(s.ops_per_level.size()), s.critical_path)
        << kernel.name;  // unit latencies: levels == L_CP
    EXPECT_GE(s.max_width, 1) << kernel.name;
  }
}

TEST(Stats, LatencyAwareLevels) {
  DfgBuilder b;
  const Value x = b.mul(b.input(), b.input());
  (void)b.add(x, b.input());
  const Dfg g = std::move(b).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 3;
  const DfgStats s = compute_stats(g, lat);
  EXPECT_EQ(s.critical_path, 4);
  // Levels histogram spans start cycles 0..3; only 0 and 3 occupied.
  EXPECT_EQ(s.ops_per_level, (std::vector<int>{1, 0, 0, 1}));
}

TEST(Stats, WidthBoundsParallelSpeedup) {
  // Max width caps how many FUs a kernel can use at once: EWF (serial
  // spine) is narrow, DCT-DIT-2 is wide.
  const DfgStats ewf =
      compute_stats(benchmark_by_name("EWF").dfg, unit_latencies());
  const DfgStats dit2 =
      compute_stats(benchmark_by_name("DCT-DIT-2").dfg, unit_latencies());
  EXPECT_LT(ewf.max_width, dit2.max_width);
}

}  // namespace
}  // namespace cvb
