// Tests of the recovery machinery (service/resilience.* and its
// integration into cvb::Service): backoff jitter, the quarantine
// ledger, the graceful-degradation binding, retry classification, and
// the watchdog. Paths that need an injected fault are gated on
// -DCVB_FAULT_INJECTION=ON builds; everything else exercises the same
// machinery through real (non-injected) failures — unknown algorithms
// and exhausted step budgets.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "bind/driver.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"
#include "service/resilience.hpp"
#include "service/service.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace cvb {
namespace {

BindJob make_job(const std::string& kernel, const std::string& dp_spec,
                 std::string id = "") {
  BindJob job;
  job.id = std::move(id);
  job.dfg = benchmark_by_name(kernel).dfg;
  job.datapath = parse_datapath(dp_spec);
  job.strategy.effort = BindEffort::kFast;
  return job;
}

TEST(Jitter, DeterministicAndCapped) {
  Rng a(123);
  Rng b(123);
  double prev_a = 1.0;
  double prev_b = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double da = decorrelated_jitter_ms(1.0, 50.0, prev_a, a);
    const double db = decorrelated_jitter_ms(1.0, 50.0, prev_b, b);
    EXPECT_DOUBLE_EQ(da, db);
    EXPECT_GE(da, 0.0);
    EXPECT_LE(da, 50.0);
    prev_a = da;
    prev_b = db;
  }
}

TEST(Jitter, DrawsFromTheDecorrelatedRange) {
  // With prev = 10 and base = 1 the draw lives in [1, 30] (cap 100):
  // strictly wider than plain exponential-from-base.
  Rng rng(7);
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 200; ++i) {
    const double d = decorrelated_jitter_ms(1.0, 100.0, 10.0, rng);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
    EXPECT_GE(d, 1.0);
    EXPECT_LE(d, 30.0);
  }
  EXPECT_LT(lo, 5.0);   // the range is actually explored
  EXPECT_GT(hi, 20.0);
}

TEST(QuarantineLedger, CrossesThresholdExactlyOnce) {
  Quarantine quarantine;
  EXPECT_FALSE(quarantine.is_quarantined(1, 3));
  EXPECT_FALSE(quarantine.record_failure(1, 3));
  EXPECT_FALSE(quarantine.record_failure(1, 3));
  EXPECT_FALSE(quarantine.is_quarantined(1, 3));
  EXPECT_TRUE(quarantine.record_failure(1, 3));  // the crossing
  EXPECT_TRUE(quarantine.is_quarantined(1, 3));
  EXPECT_FALSE(quarantine.record_failure(1, 3));  // already past it
  EXPECT_EQ(quarantine.failures(1), 4);
  EXPECT_EQ(quarantine.failures(2), 0);
  EXPECT_EQ(quarantine.size(), 1u);
}

TEST(QuarantineLedger, ThresholdZeroNeverQuarantines) {
  Quarantine quarantine;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(quarantine.record_failure(1, 0));
  }
  EXPECT_FALSE(quarantine.is_quarantined(1, 0));
}

TEST(QuarantineKey, IgnoresIdAndDeadlineButNotWorkload) {
  BindJob a = make_job("EWF", "[1,1|1,1]", "first");
  BindJob b = make_job("EWF", "[1,1|1,1]", "second");
  b.deadline_ms = 500;
  EXPECT_EQ(quarantine_key(a), quarantine_key(b));

  BindJob c = make_job("EWF", "[1,1|1,1]");
  c.strategy.kind = StrategyKind::kPcc;
  EXPECT_NE(quarantine_key(a), quarantine_key(c));
  BindJob d = make_job("EWF", "[1,1|1,1]");
  d.strategy.effort = BindEffort::kMax;
  EXPECT_NE(quarantine_key(a), quarantine_key(d));
  EXPECT_NE(quarantine_key(a), quarantine_key(make_job("ARF", "[1,1|1,1]")));
  EXPECT_NE(quarantine_key(a), quarantine_key(make_job("EWF", "[2,1|1,1]")));
}

TEST(DegradedBinding, SingleClusterWhenOneCovers) {
  const Dfg& dfg = benchmark_by_name("ARF").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding binding = make_degraded_binding(dfg, dp);
  const std::set<ClusterId> used(binding.begin(), binding.end());
  EXPECT_EQ(used.size(), 1u);  // communication-free fallback
  const BindResult result = evaluate_binding(dfg, dp, binding);
  EXPECT_EQ(verify_schedule(result.bound, dp, result.schedule), "");
  EXPECT_EQ(result.schedule.num_moves, 0);
}

TEST(DegradedBinding, SplitsAcrossHeterogeneousClusters) {
  // Cluster 0 has only an ALU, cluster 1 only a multiplier: no single
  // cluster covers ARF (adds + muls), so ops split by supportability —
  // and the result must still schedule and verify.
  const Dfg& dfg = benchmark_by_name("ARF").dfg;
  const Datapath dp =
      Datapath::uniform({Cluster{{1, 0}}, Cluster{{0, 1}}}, 2);
  const Binding binding = make_degraded_binding(dfg, dp);
  const std::set<ClusterId> used(binding.begin(), binding.end());
  EXPECT_EQ(used.size(), 2u);
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    EXPECT_TRUE(dp.supports(binding[static_cast<std::size_t>(v)],
                            dfg.type(v)));
  }
  const BindResult result = evaluate_binding(dfg, dp, binding);
  EXPECT_EQ(verify_schedule(result.bound, dp, result.schedule), "");
}

TEST(DegradedBinding, RunDegradedJobReturnsVerifiedDegraded) {
  const BindJob job = make_job("EWF", "[2,1|1,1]", "deg");
  const BindOutcome outcome = run_degraded_job(job);
  ASSERT_EQ(outcome.status, BindStatus::kDegraded);
  EXPECT_TRUE(has_result(outcome.status));
  EXPECT_EQ(outcome.id, "deg");
  EXPECT_EQ(outcome.moves, 0);
  const BindResult check =
      evaluate_binding(job.dfg, job.datapath, outcome.binding);
  EXPECT_EQ(verify_schedule(check.bound, job.datapath, check.schedule), "");
  EXPECT_EQ(check.schedule.latency, outcome.latency);
}

TEST(RunBindJob, StepBudgetOverrunIsTypedPoison) {
  EvalEngine engine;
  BindJob job = make_job("EWF", "[1,1|1,1]");
  job.step_budget = 1;  // nothing real schedules in one candidate visit
  const BindOutcome outcome = run_bind_job(job, engine, CancelToken());
  EXPECT_EQ(outcome.status, BindStatus::kInvalidRequest);
  EXPECT_EQ(outcome.fault, FaultClass::kPoison);
  EXPECT_NE(outcome.error.find("step budget"), std::string::npos);
}

TEST(Resilient, PoisonIsNeverRetriedAndQuarantines) {
  EvalEngine engine;
  Quarantine quarantine;
  MetricsRegistry metrics;
  ResilienceOptions options;
  options.max_attempts = 5;
  options.quarantine_threshold = 2;

  // mincut on heterogeneous clusters throws a typed invalid_argument:
  // a job that can never succeed, the service's poison shape.
  BindJob poison = make_job("EWF", "[2,1|1,1]");
  poison.strategy.kind = StrategyKind::kMinCut;
  for (int i = 0; i < 2; ++i) {
    const BindOutcome outcome = run_bind_job_resilient(
        poison, engine, CancelToken(), options, &quarantine, &metrics);
    EXPECT_EQ(outcome.status, BindStatus::kInvalidRequest);
    EXPECT_EQ(outcome.fault, FaultClass::kPoison);
    EXPECT_EQ(outcome.attempts, 1);  // poison: no retry
  }
  EXPECT_EQ(metrics.counter("jobs_retried").value(), 0);
  EXPECT_EQ(metrics.counter("jobs_quarantined").value(), 1);
  EXPECT_TRUE(
      quarantine.is_quarantined(quarantine_key(poison), 2));

  // The quarantined key now short-circuits to the degraded path — and
  // because the degraded binder ignores the (impossible) strategy, the
  // job that could never succeed now yields a verified trivial binding.
  const BindOutcome degraded = run_bind_job_resilient(
      poison, engine, CancelToken(), options, &quarantine, &metrics);
  ASSERT_EQ(degraded.status, BindStatus::kDegraded);
  EXPECT_NE(degraded.error.find("quarantined"), std::string::npos);
  EXPECT_EQ(metrics.counter("jobs_quarantine_hits").value(), 1);
  const BindResult check =
      evaluate_binding(poison.dfg, poison.datapath, degraded.binding);
  EXPECT_EQ(verify_schedule(check.bound, poison.datapath, check.schedule),
            "");

  // A different workload with the same ledger is untouched.
  const BindOutcome healthy = run_bind_job_resilient(
      make_job("ARF", "[1,1|1,1]"), engine, CancelToken(), options,
      &quarantine, &metrics);
  EXPECT_EQ(healthy.status, BindStatus::kOk);
}

TEST(Resilient, ServiceAppliesDefaultStepBudget) {
  ServiceOptions options;
  options.num_workers = 1;
  options.resilience.step_budget = 1;
  options.resilience.quarantine_threshold = 0;
  Service service(options);
  const BindOutcome outcome =
      service.submit(make_job("EWF", "[1,1|1,1]")).get();
  EXPECT_EQ(outcome.status, BindStatus::kInvalidRequest);
  EXPECT_EQ(outcome.fault, FaultClass::kPoison);

  // A per-job budget overrides the service default.
  BindJob roomy = make_job("EWF", "[1,1|1,1]");
  roomy.step_budget = 1'000'000'000;
  const BindOutcome ok = service.submit(roomy).get();
  EXPECT_EQ(ok.status, BindStatus::kOk);
}

TEST(Resilient, TransientFaultsRetryUntilTheStormSubsides) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build has -DCVB_FAULT_INJECTION=OFF";
  }
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = FaultClass::kTransient;
  spec.max_triggers = 2;  // fails twice, then the fault clears
  FaultInjector::global().arm("service.worker", spec);

  EvalEngine engine;
  MetricsRegistry metrics;
  ResilienceOptions options;
  options.max_attempts = 4;
  options.backoff_base_ms = 0.1;
  options.backoff_cap_ms = 0.5;
  const BindOutcome outcome =
      run_bind_job_resilient(make_job("EWF", "[1,1|1,1]"), engine,
                             CancelToken(), options, nullptr, &metrics);
  EXPECT_EQ(outcome.status, BindStatus::kOk);
  EXPECT_EQ(outcome.attempts, 3);  // two injected failures + success
  EXPECT_EQ(metrics.counter("jobs_retried").value(), 2);
}

TEST(Resilient, RetryBudgetExhaustionSurfacesTransientError) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build has -DCVB_FAULT_INJECTION=OFF";
  }
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = FaultClass::kTransient;
  FaultInjector::global().arm("service.worker", spec);

  EvalEngine engine;
  ResilienceOptions options;
  options.max_attempts = 3;
  options.backoff_base_ms = 0.1;
  options.backoff_cap_ms = 0.5;
  const BindOutcome outcome =
      run_bind_job_resilient(make_job("EWF", "[1,1|1,1]"), engine,
                             CancelToken(), options, nullptr, nullptr);
  EXPECT_EQ(outcome.status, BindStatus::kInternalError);
  EXPECT_EQ(outcome.fault, FaultClass::kTransient);
  EXPECT_EQ(outcome.attempts, 3);
}

TEST(Watchdog, IdleWithGenerousBudget) {
  // Watchdog thread lifecycle sanity: enabled but never provoked.
  ServiceOptions options;
  options.num_workers = 2;
  options.resilience.hang_budget_ms = 60'000.0;
  Service service(options);
  const BindOutcome outcome =
      service.submit(make_job("EWF", "[1,1|1,1]")).get();
  EXPECT_EQ(outcome.status, BindStatus::kOk);
  EXPECT_EQ(service.metrics().counter("watchdog_fired").value(), 0);
}

TEST(Watchdog, RescuesCooperativeHang) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build has -DCVB_FAULT_INJECTION=OFF";
  }
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  spec.hang_ms = 2'000.0;  // far past the budget: the watchdog must act
  spec.cooperative = true;
  FaultInjector::global().arm("service.hang", spec);

  ServiceOptions options;
  options.num_workers = 1;
  options.resilience.max_attempts = 1;
  options.resilience.hang_budget_ms = 10.0;
  options.resilience.watchdog_poll_ms = 1.0;
  Service service(options);
  const BindOutcome outcome =
      service.submit(make_job("EWF", "[1,1|1,1]", "hung")).get();
  // The fired token unwinds the hang cooperatively; the job resolves
  // typed (cancelled), far sooner than the 2 s hang.
  EXPECT_EQ(outcome.status, BindStatus::kCancelled);
  EXPECT_NE(outcome.error.find("watchdog"), std::string::npos);
  EXPECT_GE(service.metrics().counter("watchdog_fired").value(), 1);
  EXPECT_EQ(service.metrics().counter("watchdog_abandoned").value(), 0);
}

TEST(Watchdog, AbandonsUncooperativeWorkerAndRecycles) {
  if (!fault_injection_compiled()) {
    GTEST_SKIP() << "build has -DCVB_FAULT_INJECTION=OFF";
  }
  ScopedFaultInjection scoped;
  FaultSpec spec;
  spec.rate = 1.0;
  // Sleeps through the token. Long enough that even a sanitizer-slowed
  // watchdog abandons the worker (at ~30 ms) well before the hang ends.
  spec.hang_ms = 2'000.0;
  spec.cooperative = false;
  spec.max_triggers = 1;  // only the first job hangs
  FaultInjector::global().arm("service.hang", spec);

  ServiceOptions options;
  options.num_workers = 1;
  options.resilience.max_attempts = 1;
  options.resilience.hang_budget_ms = 10.0;
  options.resilience.watchdog_poll_ms = 1.0;
  options.resilience.abandon_grace_ms = 20.0;
  Service service(options);

  const BindOutcome hung =
      service.submit(make_job("EWF", "[1,1|1,1]", "stuck")).get();
  EXPECT_EQ(hung.status, BindStatus::kInternalError);
  EXPECT_NE(hung.error.find("abandoned"), std::string::npos);
  EXPECT_GE(service.metrics().counter("watchdog_abandoned").value(), 1);

  // The replacement worker keeps the service serving while the
  // abandoned thread is still sleeping off its hang. Under a sanitizer
  // the follow-up job itself can outlive the (tiny) hang budget and be
  // watchdog-cancelled — that is the rescue path doing its job, so any
  // typed resolution proves the service still answers.
  const BindOutcome next =
      service.submit(make_job("ARF", "[1,1|1,1]", "after")).get();
  EXPECT_TRUE(next.status == BindStatus::kOk ||
              next.status == BindStatus::kCancelled ||
              next.status == BindStatus::kInternalError)
      << to_string(next.status);
  // Destruction joins the abandoned worker cleanly (no detach) — the
  // test passing under TSan is the real assertion here.
}

}  // namespace
}  // namespace cvb
