// Edge-case suite: heterogeneous extremes (FU-specialized clusters
// that force every value across the bus), degenerate datapaths, effort
// presets, and other corners the main suites don't reach.
#include <gtest/gtest.h>

#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "sim/executor.hpp"

namespace cvb {
namespace {

TEST(EdgeCases, FuSpecializedClustersForceTraffic) {
  // Cluster 0 has only ALUs, cluster 1 only multipliers: every
  // mul->add or add->mul dependence must cross the bus. The binder has
  // no placement freedom, but everything downstream must still work.
  for (const std::string name : {"ARF", "FFT", "DCT-DIT"}) {
    const Dfg g = benchmark_by_name(name).dfg;
    const Datapath dp = parse_datapath("[3,0|0,3]");
    const BindResult r = bind_full(g, dp);
    EXPECT_EQ(check_binding(g, r.binding, dp), "") << name;
    EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "") << name;
    EXPECT_GT(r.schedule.num_moves, 0) << name;
    // Every op is pinned: ALU ops on 0, muls on 1.
    for (OpId v = 0; v < g.num_ops(); ++v) {
      EXPECT_EQ(r.binding[static_cast<std::size_t>(v)],
                fu_type_of(g.type(v)) == FuType::kMult ? 1 : 0)
          << name;
    }
    // And semantics still hold through all that traffic.
    EXPECT_EQ(check_semantics(g, r.bound, dp, r.schedule,
                              {1, 2, 3, 4, 5, 6, 7, 8}),
              "")
        << name;
  }
}

TEST(EdgeCases, PccHandlesFuSpecializedClusters) {
  const Dfg g = benchmark_by_name("ARF").dfg;
  const Datapath dp = parse_datapath("[3,0|0,3]");
  const BindResult r = pcc_binding(g, dp);
  EXPECT_EQ(check_binding(g, r.binding, dp), "");
  EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "");
}

TEST(EdgeCases, SingleOpGraph) {
  DfgBuilder b;
  (void)b.add(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult r = bind_full(g, dp);
  EXPECT_EQ(r.schedule.latency, 1);
  EXPECT_EQ(r.schedule.num_moves, 0);
}

TEST(EdgeCases, ManyClustersFewOps) {
  // More clusters than operations: no crash, no pointless scattering.
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input());
  (void)b.mul(x, b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1|1,1|1,1|1,1|1,1]");
  const BindResult r = bind_full(g, dp);
  EXPECT_EQ(r.schedule.latency, 2);
  EXPECT_EQ(r.schedule.num_moves, 0);
}

TEST(EdgeCases, WideBusNarrowClusters) {
  const Dfg g = benchmark_by_name("DCT-DIF").dfg;
  const Datapath dp = parse_datapath("[1,1|1,1]", /*num_buses=*/16);
  const BindResult r = bind_full(g, dp);
  EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "");
}

TEST(EdgeCases, LongMoveLatency) {
  const Dfg g = benchmark_by_name("FFT").dfg;
  const Datapath dp = parse_datapath("[2,1|2,1]", 2, /*move_latency=*/5);
  const BindResult r = bind_full(g, dp);
  EXPECT_EQ(verify_schedule(r.bound, dp, r.schedule), "");
  // With transfers this expensive, a near-single-cluster solution
  // should keep moves rare.
  EXPECT_LE(r.schedule.num_moves, 4);
}

TEST(EdgeCases, EffortPresetsAreOrdered) {
  const Dfg g = benchmark_by_name("DCT-DIT").dfg;
  const Datapath dp = parse_datapath("[2,1|2,1|1,1]");
  const BindResult fast =
      bind_full(g, dp, driver_params_for(BindEffort::kFast));
  const BindResult balanced =
      bind_full(g, dp, driver_params_for(BindEffort::kBalanced));
  const BindResult max =
      bind_full(g, dp, driver_params_for(BindEffort::kMax));
  EXPECT_LE(balanced.schedule.latency, fast.schedule.latency);
  EXPECT_LE(max.schedule.latency, balanced.schedule.latency);
  EXPECT_EQ(fast.iter_ms, 0.0);  // kFast skips B-ITER entirely
}

TEST(EdgeCases, EffortPresetFieldsMatchDocs) {
  const DriverParams fast = driver_params_for(BindEffort::kFast);
  EXPECT_FALSE(fast.run_iterative);
  const DriverParams max = driver_params_for(BindEffort::kMax);
  EXPECT_TRUE(max.run_iterative);
  EXPECT_GT(max.iter_starts, DriverParams{}.iter_starts);
  EXPECT_GT(max.max_stretch, DriverParams{}.max_stretch);
}

TEST(EdgeCases, ZeroAluClusterRejectsAluOps) {
  DfgBuilder b;
  (void)b.add(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[0,2]");
  EXPECT_THROW((void)bind_full(g, dp), std::invalid_argument);
}

TEST(EdgeCases, DisconnectedSingletonsSpreadCleanly) {
  // 12 isolated adds on 3 clusters: perfect spread, zero moves,
  // latency = ceil(12 / 3 ALUs).
  Dfg g;
  DfgBuilder b;
  for (int i = 0; i < 12; ++i) {
    (void)b.add(b.input(), b.input());
  }
  g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1|1,1]");
  const BindResult r = bind_full(g, dp);
  EXPECT_EQ(r.schedule.num_moves, 0);
  EXPECT_EQ(r.schedule.latency, 4);
}

}  // namespace
}  // namespace cvb
