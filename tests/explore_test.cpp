// Unit tests for the design-space exploration module.
#include <gtest/gtest.h>

#include <set>

#include "explore/explore.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

TEST(Enumerate, SmallBudgetByHand) {
  // Budget 2 FUs, up to 2 clusters, canonical order: the possible
  // cluster shapes are (a,m) with a+m in {1,2} per cluster.
  DseConstraints cons;
  cons.max_total_fus = 2;
  cons.max_clusters = 2;
  const std::vector<Datapath> all = enumerate_datapaths(cons);
  std::set<std::string> specs;
  for (const Datapath& dp : all) {
    EXPECT_TRUE(specs.insert(dp.to_string()).second)
        << "duplicate " << dp.to_string();
  }
  // Single clusters: [1,0] [0,1] [2,0] [1,1] [0,2]  (5)
  // Two clusters from 1-FU clusters: [1,0|1,0] [1,0|0,1] [0,1|0,1] (3)
  EXPECT_EQ(all.size(), 8u);
  EXPECT_TRUE(specs.contains("[1,1]"));
  EXPECT_TRUE(specs.contains("[1,0|0,1]"));
  EXPECT_FALSE(specs.contains("[0,1|1,0]"));  // canonical form only
}

TEST(Enumerate, RespectsAllConstraints) {
  DseConstraints cons;
  cons.max_total_fus = 6;
  cons.min_clusters = 2;
  cons.max_clusters = 3;
  cons.max_fus_per_cluster = 2;
  for (const Datapath& dp : enumerate_datapaths(cons)) {
    EXPECT_GE(dp.num_clusters(), 2);
    EXPECT_LE(dp.num_clusters(), 3);
    int total = 0;
    for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
      const int fus =
          dp.fu_count(c, FuType::kAlu) + dp.fu_count(c, FuType::kMult);
      EXPECT_GE(fus, 1);
      EXPECT_LE(fus, 2);
      total += fus;
    }
    EXPECT_LE(total, 6);
  }
}

TEST(Enumerate, RejectsBadConstraints) {
  DseConstraints cons;
  cons.max_total_fus = 0;
  EXPECT_THROW((void)enumerate_datapaths(cons), std::invalid_argument);
  cons = {};
  cons.min_clusters = 3;
  cons.max_clusters = 2;
  EXPECT_THROW((void)enumerate_datapaths(cons), std::invalid_argument);
}

TEST(MaxRfPorts, ThreePerFu) {
  EXPECT_EQ(max_rf_ports(parse_datapath("[3,3]")), 18);
  EXPECT_EQ(max_rf_ports(parse_datapath("[2,1|1,1]")), 9);
  EXPECT_EQ(max_rf_ports(parse_datapath("[1,1|1,1|1,1]")), 6);
}

TEST(Explore, SkipsInfeasibleDatapaths) {
  // The kernel uses muls, so ALU-only datapaths must be skipped.
  const Dfg g = make_fir(4);
  DseConstraints cons;
  cons.max_total_fus = 2;
  cons.max_clusters = 1;
  DriverParams cheap;
  cheap.run_iterative = false;
  const std::vector<DsePoint> points = explore_design_space(g, cons, cheap);
  for (const DsePoint& p : points) {
    EXPECT_GE(p.datapath.total_fu_count(FuType::kMult), 1)
        << p.datapath.to_string();
  }
  EXPECT_FALSE(points.empty());
}

TEST(Explore, PointsCarryConsistentMetrics) {
  const Dfg g = make_fir(6);
  DseConstraints cons;
  cons.max_total_fus = 4;
  cons.max_clusters = 2;
  DriverParams cheap;
  cheap.run_iterative = false;
  for (const DsePoint& p : explore_design_space(g, cons, cheap)) {
    EXPECT_GE(p.latency, p.lower_bound);
    EXPECT_EQ(p.max_rf_ports, max_rf_ports(p.datapath));
    EXPECT_GE(p.moves, 0);
    EXPECT_GT(p.total_fus, 0);
  }
}

TEST(Pareto, RemovesDominatedPoints) {
  const Datapath dp = parse_datapath("[1,1]");
  std::vector<DsePoint> points;
  DsePoint a{dp};
  a.latency = 10;
  a.max_rf_ports = 6;
  a.moves = 0;
  DsePoint b{dp};
  b.latency = 12;
  b.max_rf_ports = 6;
  b.moves = 2;  // dominated by a
  DsePoint c{dp};
  c.latency = 8;
  c.max_rf_ports = 12;
  c.moves = 0;  // tradeoff vs a
  points = {a, b, c};
  const std::vector<DsePoint> front = pareto_front(points);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0].latency, 8);
  EXPECT_EQ(front[1].latency, 10);
}

TEST(Pareto, DropsDuplicateObjectives) {
  const Datapath dp = parse_datapath("[1,1]");
  DsePoint a{dp};
  a.latency = 5;
  a.max_rf_ports = 6;
  DsePoint b = a;
  const std::vector<DsePoint> front = pareto_front({a, b});
  EXPECT_EQ(front.size(), 1u);
}

TEST(Explore, EndToEndParetoOnRealKernel) {
  const Dfg g = benchmark_by_name("ARF").dfg;
  DseConstraints cons;
  cons.max_total_fus = 4;
  cons.max_clusters = 2;
  DriverParams cheap;
  cheap.run_iterative = false;
  const std::vector<DsePoint> points = explore_design_space(g, cons, cheap);
  const std::vector<DsePoint> front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  EXPECT_LE(front.size(), points.size());
  // Front sorted by latency; ports must strictly improve as latency
  // degrades (otherwise the slower point would be dominated).
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].latency, front[i - 1].latency);
  }
}

}  // namespace
}  // namespace cvb
