// Unit tests for the fluent DfgBuilder.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"

namespace cvb {
namespace {

TEST(Builder, InputsCreateNoOps) {
  DfgBuilder b;
  (void)b.input();
  (void)b.input();
  EXPECT_EQ(b.graph().num_ops(), 0);
}

TEST(Builder, BinaryOpOnInputsHasNoEdges) {
  DfgBuilder b;
  (void)b.add(b.input(), b.input());
  const Dfg g = std::move(b).take();
  EXPECT_EQ(g.num_ops(), 1);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.preds(0).empty());
}

TEST(Builder, DependenciesBecomeEdges) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  const Value y = b.mul(x, b.input(), "y");
  (void)b.sub(x, y, "z");
  const Dfg g = std::move(b).take();
  EXPECT_EQ(g.num_ops(), 3);
  EXPECT_EQ(g.num_edges(), 3);  // x->y, x->z, y->z
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Builder, SquaringCreatesSingleEdge) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input());
  (void)b.mul(x, x);  // x * x
  const Dfg g = std::move(b).take();
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Builder, UnaryOpsWork) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input());
  (void)b.neg(x);
  (void)b.cmul(x);
  const Dfg g = std::move(b).take();
  EXPECT_EQ(g.num_ops(), 3);
  EXPECT_EQ(g.type(1), OpType::kNeg);
  EXPECT_EQ(g.type(2), OpType::kMul);
  EXPECT_EQ(g.preds(1).size(), 1u);
}

TEST(Builder, NamesPropagate) {
  DfgBuilder b;
  (void)b.add(b.input(), b.input(), "sum");
  EXPECT_EQ(b.graph().name(0), "sum");
}

TEST(Builder, BuiltGraphsAreAcyclicByConstruction) {
  DfgBuilder b;
  Value acc = b.add(b.input(), b.input());
  for (int i = 0; i < 20; ++i) {
    acc = b.mul(acc, b.input());
  }
  const Dfg g = std::move(b).take();
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(critical_path_length(g, unit_latencies()), 21);
}

TEST(Builder, Op2MixedInputAndValue) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input());
  (void)b.op2(OpType::kXor, x, b.input());
  const Dfg g = std::move(b).take();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.type(1), OpType::kXor);
}

}  // namespace
}  // namespace cvb
