// Unit tests for B-INIT: the three-component binding order (Section
// 3.1.1 / Figure 2), the transfer cost components (Section 3.1.2 /
// Figure 3), and end-to-end greedy binding behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "bind/bound_dfg.hpp"
#include "bind/initial_binder.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"

namespace cvb {
namespace {

// ----------------------------------------------------------- ordering

TEST(BindingOrder, AlapLevelsComeFirst) {
  // Chain a->b->c plus a free op f: alap(a)=0 < alap(b)=1 < alap(c)=2 =
  // alap(f). Order must start with the chain.
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input(), "a");
  const Value b = bld.add(a, bld.input(), "b");
  (void)bld.add(b, bld.input(), "c");
  (void)bld.add(bld.input(), bld.input(), "f");
  const Dfg g = std::move(bld).take();
  const Timing t = compute_timing(g, unit_latencies(), 3);
  const std::vector<OpId> order = binding_order(g, t.alap, t.mobility);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  // c (mobility 0) before f (mobility 2) at the same alap level.
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 3);
}

TEST(BindingOrder, MobilityBreaksAlapTies) {
  // Two ops at the same ALAP level: the one on the longer path (less
  // mobility) binds first.
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input(), "a");
  (void)bld.add(a, bld.input(), "tight");      // alap 1, mobility 0
  (void)bld.add(bld.input(), bld.input(), "loose");  // alap 1 @ L_TG=2, mob 1
  const Dfg g = std::move(bld).take();
  const Timing t = compute_timing(g, unit_latencies(), 2);
  ASSERT_EQ(t.alap[1], 1);
  ASSERT_EQ(t.alap[2], 1);
  const std::vector<OpId> order = binding_order(g, t.alap, t.mobility);
  const auto pos = [&](OpId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(1), pos(2));
}

TEST(BindingOrder, ConsumerCountBreaksRemainingTies) {
  // Two sources with equal alap and mobility; the one with more
  // consumers binds first (its placement constrains more of the graph).
  DfgBuilder bld;
  const Value big = bld.add(bld.input(), bld.input(), "big");
  const Value small = bld.add(bld.input(), bld.input(), "small");
  (void)bld.add(big, bld.input(), "u1");
  (void)bld.add(big, bld.input(), "u2");
  (void)bld.add(small, bld.input(), "u3");
  const Dfg g = std::move(bld).take();
  const Timing t = compute_timing(g, unit_latencies(), 2);
  ASSERT_EQ(t.alap[0], t.alap[1]);
  ASSERT_EQ(t.mobility[0], t.mobility[1]);
  const std::vector<OpId> order = binding_order(g, t.alap, t.mobility);
  const auto pos = [&](OpId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
}

TEST(BindingOrder, IsTopological) {
  // The alap-first order always places producers before consumers, the
  // property the trcost_dd computation relies on.
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input());
  const Value b = bld.mul(a, bld.input());
  const Value c = bld.add(a, b);
  (void)bld.mul(c, b);
  const Dfg g = std::move(bld).take();
  const Timing t = compute_timing(g, unit_latencies(), 6);
  const std::vector<OpId> order = binding_order(g, t.alap, t.mobility);
  std::vector<int> pos(static_cast<std::size_t>(g.num_ops()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (OpId v = 0; v < g.num_ops(); ++v) {
    for (const OpId s : g.succs(v)) {
      EXPECT_LT(pos[static_cast<std::size_t>(v)],
                pos[static_cast<std::size_t>(s)]);
    }
  }
}

// ------------------------------------------------- Figure 3 trcost example

TEST(TransferCost, Figure3Example) {
  // Figure 3: v1 -> v (direct dependency), v and v2 share the common
  // consumer v3; v1 and v2 are bound to cluster A (0). Binding v to
  // cluster B (1) costs trcost_dd = 1 and trcost_cc = 1.
  DfgBuilder bld;
  const Value v1 = bld.add(bld.input(), bld.input(), "v1");
  const Value v2 = bld.add(bld.input(), bld.input(), "v2");
  const Value v = bld.add(v1, bld.input(), "v");
  (void)bld.add(v, v2, "v3");
  const Dfg g = std::move(bld).take();
  const OpId op_v = 2;

  Binding partial(4, kNoCluster);
  partial[0] = 0;  // bn(v1) = A
  partial[1] = 0;  // bn(v2) = A

  EXPECT_EQ(transfer_cost_direct(g, partial, op_v, 1), 1);
  EXPECT_EQ(transfer_cost_common_consumer(g, partial, op_v, 1), 1);
  // Binding v to A instead: no transfers at all.
  EXPECT_EQ(transfer_cost_direct(g, partial, op_v, 0), 0);
  EXPECT_EQ(transfer_cost_common_consumer(g, partial, op_v, 0), 0);
}

TEST(TransferCost, UnboundPredecessorsDoNotCount) {
  DfgBuilder bld;
  const Value a = bld.add(bld.input(), bld.input());
  const Value b = bld.add(bld.input(), bld.input());
  (void)bld.add(a, b);
  const Dfg g = std::move(bld).take();
  const Binding partial(3, kNoCluster);
  EXPECT_EQ(transfer_cost_direct(g, partial, 2, 0), 0);
}

TEST(TransferCost, OnePenaltyPerCommonConsumer) {
  // v's successor w has two other bound predecessors on foreign
  // clusters; still a single +1 for w.
  DfgBuilder bld;
  const Value z1 = bld.add(bld.input(), bld.input(), "z1");
  const Value z2 = bld.add(bld.input(), bld.input(), "z2");
  const Value v = bld.add(bld.input(), bld.input(), "v");
  const Value w = bld.add(v, z1, "w");
  (void)bld.op2(OpType::kAdd, w, z2, "w2");
  const Dfg g = std::move(bld).take();
  // Make z1, z2 both predecessors of w: rebuild with exact edges.
  Dfg g2;
  const OpId a1 = g2.add_op(OpType::kAdd, "z1");
  const OpId a2 = g2.add_op(OpType::kAdd, "z2");
  const OpId av = g2.add_op(OpType::kAdd, "v");
  const OpId aw = g2.add_op(OpType::kAdd, "w");
  g2.add_edge(a1, aw);
  g2.add_edge(a2, aw);
  g2.add_edge(av, aw);
  Binding partial(4, kNoCluster);
  partial[static_cast<std::size_t>(a1)] = 0;
  partial[static_cast<std::size_t>(a2)] = 0;
  EXPECT_EQ(transfer_cost_common_consumer(g2, partial, av, 1), 1);
  (void)g;
}

// --------------------------------------------------------- whole binder

TEST(InitialBinder, SingleClusterBindsEverythingThere) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  (void)bld.mul(x, bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,2]");
  const Binding binding = initial_binding(g, dp, {});
  EXPECT_EQ(binding, (Binding{0, 0}));
}

TEST(InitialBinder, RespectsTargetSets) {
  // Muls can only run on cluster 1.
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  (void)bld.mul(x, bld.input());
  (void)bld.mul(x, bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,0|0,2]");
  const Binding binding = initial_binding(g, dp, {});
  EXPECT_EQ(binding[0], 0);
  EXPECT_EQ(binding[1], 1);
  EXPECT_EQ(binding[2], 1);
}

TEST(InitialBinder, SpreadsIndependentChainsAcrossClusters) {
  // Two independent chains and two clusters: a good greedy binding
  // keeps each chain local (zero moves) and parallelizes.
  DfgBuilder bld;
  for (int chain = 0; chain < 2; ++chain) {
    Value acc = bld.add(bld.input(), bld.input());
    for (int i = 0; i < 4; ++i) {
      acc = bld.add(acc, bld.input());
    }
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const Binding binding = initial_binding(g, dp, {});
  const BoundDfg bound = build_bound_dfg(g, binding, dp);
  EXPECT_EQ(bound.num_moves, 0);
  const Schedule s = list_schedule(bound, dp);
  EXPECT_EQ(s.latency, 5);  // fully parallel
}

TEST(InitialBinder, ThrowsWhenNoClusterSupportsAType) {
  DfgBuilder bld;
  (void)bld.mul(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,0]");
  EXPECT_THROW((void)initial_binding(g, dp, {}), std::invalid_argument);
}

TEST(InitialBinder, EmptyGraphGivesEmptyBinding) {
  const Datapath dp = parse_datapath("[1,1]");
  EXPECT_TRUE(initial_binding(Dfg{}, dp, {}).empty());
}

TEST(InitialBinder, ReverseModeProducesValidBinding) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  const Value y = bld.mul(x, bld.input());
  (void)bld.add(y, x);
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  InitialBinderParams params;
  params.reverse = true;
  const Binding binding = initial_binding(g, dp, params);
  EXPECT_EQ(check_binding(g, binding, dp), "");
}

TEST(InitialBinder, DeterministicAcrossRuns) {
  DfgBuilder bld;
  Value acc = bld.add(bld.input(), bld.input());
  for (int i = 0; i < 12; ++i) {
    acc = (i % 3 == 0) ? bld.mul(acc, bld.input()) : bld.add(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[2,1|1,1]");
  EXPECT_EQ(initial_binding(g, dp, {}), initial_binding(g, dp, {}));
}

TEST(InitialBinder, GammaZeroIgnoresTransfers) {
  // With gamma = 0 the binder optimizes only serialization, so a
  // two-cluster datapath sees far more transfers than with the paper's
  // gamma = 1.1 on a transfer-sensitive graph.
  DfgBuilder bld;
  Value acc = bld.add(bld.input(), bld.input());
  for (int i = 0; i < 15; ++i) {
    acc = bld.add(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");

  InitialBinderParams blind;
  blind.gamma = 0.0;
  const int moves_blind =
      build_bound_dfg(g, initial_binding(g, dp, blind), dp).num_moves;
  const int moves_paper =
      build_bound_dfg(g, initial_binding(g, dp, {}), dp).num_moves;
  EXPECT_LE(moves_paper, moves_blind);
}

TEST(InitialBinder, StretchedProfileIsAccepted) {
  const Dfg g = [&] {
    DfgBuilder bld;
    Value acc = bld.add(bld.input(), bld.input());
    for (int i = 0; i < 6; ++i) {
      acc = bld.add(acc, bld.input());
    }
    return std::move(bld).take();
  }();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  InitialBinderParams params;
  params.profile_latency = 100;  // heavy stretch must still work
  const Binding binding = initial_binding(g, dp, params);
  EXPECT_EQ(check_binding(g, binding, dp), "");
}

}  // namespace
}  // namespace cvb
