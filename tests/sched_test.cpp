// Unit tests for the list scheduler and the independent schedule
// verifier: dependency handling, FU capacity, bus capacity, latencies,
// dii windows, and the approximate (unbounded-bus) mode.
#include <gtest/gtest.h>

#include "bind/bound_dfg.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

BoundDfg bind_all_to(const Dfg& g, const Datapath& dp, ClusterId c) {
  return build_bound_dfg(g, Binding(static_cast<std::size_t>(g.num_ops()), c),
                         dp);
}

TEST(ListScheduler, EmptyGraph) {
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = bind_all_to(Dfg{}, dp, 0);
  const Schedule s = list_schedule(bound, dp);
  EXPECT_EQ(s.latency, 0);
  EXPECT_EQ(verify_schedule(bound, dp, s), "");
}

TEST(ListScheduler, IndependentOpsSerializeOnOneAlu) {
  DfgBuilder b;
  for (int i = 0; i < 5; ++i) {
    (void)b.add(b.input(), b.input());
  }
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1]");
  const Schedule s = list_schedule(bind_all_to(g, dp, 0), dp);
  EXPECT_EQ(s.latency, 5);
}

TEST(ListScheduler, IndependentOpsParallelizeAcrossAlus) {
  DfgBuilder b;
  for (int i = 0; i < 6; ++i) {
    (void)b.add(b.input(), b.input());
  }
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[3,1]");
  const Schedule s = list_schedule(bind_all_to(g, dp, 0), dp);
  EXPECT_EQ(s.latency, 2);
}

TEST(ListScheduler, ChainRespectsLatency) {
  DfgBuilder b;
  const Value x = b.mul(b.input(), b.input());
  (void)b.add(x, b.input());
  const Dfg g = std::move(b).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 4;
  std::array<int, kNumFuTypes> dii{1, 1, 1};
  const Datapath dp({Cluster{{1, 1}}}, 1, lat, dii);
  const BoundDfg bound = bind_all_to(g, dp, 0);
  const Schedule s = list_schedule(bound, dp);
  EXPECT_EQ(s.start[0], 0);
  EXPECT_EQ(s.start[1], 4);
  EXPECT_EQ(s.latency, 5);
  EXPECT_EQ(verify_schedule(bound, dp, s), "");
}

TEST(ListScheduler, BusCapacityLimitsTransfers) {
  // Four producers on cluster 0, four consumers on cluster 1: four
  // moves. With one bus those moves serialize.
  DfgBuilder b;
  std::vector<Value> producers;
  for (int i = 0; i < 4; ++i) {
    producers.push_back(b.add(b.input(), b.input()));
  }
  for (int i = 0; i < 4; ++i) {
    (void)b.add(producers[static_cast<std::size_t>(i)], b.input());
  }
  const Dfg g = std::move(b).take();

  const Datapath one_bus = parse_datapath("[4,1|4,1]", 1);
  const Binding binding = {0, 0, 0, 0, 1, 1, 1, 1};
  const BoundDfg bound1 = build_bound_dfg(g, binding, one_bus);
  const Schedule s1 = list_schedule(bound1, one_bus);
  EXPECT_EQ(bound1.num_moves, 4);
  EXPECT_EQ(verify_schedule(bound1, one_bus, s1), "");
  EXPECT_EQ(s1.latency, 6);  // 1 (produce) + 4 serialized moves + 1

  const Datapath four_bus = parse_datapath("[4,1|4,1]", 4);
  const BoundDfg bound4 = build_bound_dfg(g, binding, four_bus);
  const Schedule s4 = list_schedule(bound4, four_bus);
  EXPECT_EQ(s4.latency, 3);  // all moves in parallel
}

TEST(ListScheduler, UnboundedBusOptionIgnoresBusContention) {
  DfgBuilder b;
  std::vector<Value> producers;
  for (int i = 0; i < 4; ++i) {
    producers.push_back(b.add(b.input(), b.input()));
  }
  for (int i = 0; i < 4; ++i) {
    (void)b.add(producers[static_cast<std::size_t>(i)], b.input());
  }
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[4,1|4,1]", 1);
  const BoundDfg bound = build_bound_dfg(g, {0, 0, 0, 0, 1, 1, 1, 1}, dp);
  ListSchedulerOptions approx;
  approx.unbounded_bus = true;
  const Schedule s = list_schedule(bound, dp, approx);
  EXPECT_EQ(s.latency, 3);  // as if the bus were infinitely wide
}

TEST(ListScheduler, DiiWindowThrottlesUnpipelinedFu) {
  // Two independent muls on one unpipelined multiplier (dii = lat = 3):
  // second mul cannot start before cycle 3.
  DfgBuilder b;
  (void)b.mul(b.input(), b.input());
  (void)b.mul(b.input(), b.input());
  const Dfg g = std::move(b).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 3;
  std::array<int, kNumFuTypes> dii{1, 3, 1};
  const Datapath dp({Cluster{{1, 1}}}, 1, lat, dii);
  const BoundDfg bound = bind_all_to(g, dp, 0);
  const Schedule s = list_schedule(bound, dp);
  EXPECT_EQ(verify_schedule(bound, dp, s), "");
  EXPECT_EQ(s.latency, 6);  // 0-2 and 3-5
}

TEST(ListScheduler, PipelinedFuOverlapsLongOps) {
  // Same two muls, fully pipelined (dii = 1): issue back to back.
  DfgBuilder b;
  (void)b.mul(b.input(), b.input());
  (void)b.mul(b.input(), b.input());
  const Dfg g = std::move(b).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 3;
  std::array<int, kNumFuTypes> dii{1, 1, 1};
  const Datapath dp({Cluster{{1, 1}}}, 1, lat, dii);
  const Schedule s = list_schedule(bind_all_to(g, dp, 0), dp);
  EXPECT_EQ(s.latency, 4);  // 0-2 and 1-3
}

TEST(ListScheduler, CriticalOpsScheduledFirst) {
  // Two ALUs; a 3-deep chain and three independent ops (6 ops, 2
  // slots/cycle). Only if the chain head wins a first-cycle slot can
  // the whole block finish in 3 cycles; a priority-blind scheduler that
  // issues two independent ops first needs 4.
  DfgBuilder b;
  const Value c1 = b.add(b.input(), b.input(), "chain1");
  const Value c2 = b.add(c1, b.input(), "chain2");
  (void)b.add(c2, b.input(), "chain3");
  (void)b.add(b.input(), b.input(), "free1");
  (void)b.add(b.input(), b.input(), "free2");
  (void)b.add(b.input(), b.input(), "free3");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[2,1]");
  const Schedule s = list_schedule(bind_all_to(g, dp, 0), dp);
  EXPECT_EQ(s.start[0], 0);  // chain head issued immediately
  EXPECT_EQ(s.latency, 3);
}

TEST(ListScheduler, ThroughputBoundHit) {
  // 8 adds, 2 ALUs in the cluster: latency >= 4 and the scheduler
  // should achieve exactly 4 (all independent).
  DfgBuilder b;
  for (int i = 0; i < 8; ++i) {
    (void)b.add(b.input(), b.input());
  }
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[2,1]");
  const Schedule s = list_schedule(bind_all_to(g, dp, 0), dp);
  EXPECT_EQ(s.latency, 4);
}

// ---------------------------------------------------------------- verifier

TEST(Verifier, CatchesDependencyViolation) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input());
  (void)b.add(x, b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[2,1]");
  const BoundDfg bound = bind_all_to(g, dp, 0);
  Schedule s = list_schedule(bound, dp);
  s.start[1] = 0;  // consumer moved onto its producer's cycle
  EXPECT_NE(verify_schedule(bound, dp, s), "");
}

TEST(Verifier, CatchesFuOversubscription) {
  DfgBuilder b;
  (void)b.add(b.input(), b.input());
  (void)b.add(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = bind_all_to(g, dp, 0);
  Schedule s = list_schedule(bound, dp);
  s.start = {0, 0};
  s.latency = 1;
  EXPECT_NE(verify_schedule(bound, dp, s), "");
}

TEST(Verifier, CatchesBusOversubscription) {
  DfgBuilder b;
  const Value p1 = b.add(b.input(), b.input());
  const Value p2 = b.add(b.input(), b.input());
  (void)b.add(p1, b.input());
  (void)b.add(p2, b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[2,1|2,1]", 1);
  const BoundDfg bound = build_bound_dfg(g, {0, 0, 1, 1}, dp);
  Schedule s = list_schedule(bound, dp);
  ASSERT_EQ(bound.num_moves, 2);
  // Force both moves onto the same cycle on a single bus.
  s.start[4] = 1;
  s.start[5] = 1;
  s.start[2] = 2;
  s.start[3] = 2;
  s.latency = 3;
  EXPECT_NE(verify_schedule(bound, dp, s), "");
}

TEST(Verifier, CatchesWrongLatencyRecord) {
  DfgBuilder b;
  (void)b.add(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = bind_all_to(g, dp, 0);
  Schedule s = list_schedule(bound, dp);
  s.latency = 99;
  EXPECT_NE(verify_schedule(bound, dp, s), "");
}

TEST(Verifier, CatchesUnscheduledOp) {
  DfgBuilder b;
  (void)b.add(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = bind_all_to(g, dp, 0);
  Schedule s = list_schedule(bound, dp);
  s.start[0] = -1;
  EXPECT_NE(verify_schedule(bound, dp, s), "");
}

TEST(Verifier, CatchesSizeMismatch) {
  DfgBuilder b;
  (void)b.add(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = bind_all_to(g, dp, 0);
  Schedule s = list_schedule(bound, dp);
  s.start.push_back(0);
  EXPECT_NE(verify_schedule(bound, dp, s), "");
}

TEST(Verifier, CatchesDiiWindowViolation) {
  DfgBuilder b;
  (void)b.mul(b.input(), b.input());
  (void)b.mul(b.input(), b.input());
  const Dfg g = std::move(b).take();
  LatencyTable lat = unit_latencies();
  lat[static_cast<std::size_t>(OpType::kMul)] = 2;
  std::array<int, kNumFuTypes> dii{1, 2, 1};
  const Datapath dp({Cluster{{1, 1}}}, 1, lat, dii);
  const BoundDfg bound = bind_all_to(g, dp, 0);
  Schedule s = list_schedule(bound, dp);
  s.start = {0, 1};  // second issue inside the dii window
  s.latency = 3;
  EXPECT_NE(verify_schedule(bound, dp, s), "");
}

TEST(SchedSupport, ScheduleLatencyHelper) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input());
  (void)b.add(x, b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1]");
  const BoundDfg bound = bind_all_to(g, dp, 0);
  EXPECT_EQ(schedule_latency(bound, {0, 1}, dp.latencies()), 2);
  EXPECT_THROW((void)schedule_latency(bound, {0}, dp.latencies()),
               std::invalid_argument);
}

}  // namespace
}  // namespace cvb
