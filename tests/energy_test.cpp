// Unit tests for the first-order energy model.
#include <gtest/gtest.h>

#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "explore/energy.hpp"
#include "explore/explore.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"

namespace cvb {
namespace {

TEST(Energy, ItemizesFuBusAndRf) {
  DfgBuilder b;
  const Value x = b.add(b.input(), b.input(), "x");
  (void)b.mul(x, b.input(), "y");
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");

  // Co-located: one add + one mul, no bus energy.
  const EnergyEstimate local =
      estimate_energy(build_bound_dfg(g, {0, 0}, dp), dp);
  EXPECT_DOUBLE_EQ(local.fu, 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(local.bus, 0.0);
  // 6-port files: penalty factor 1 + 0.25*3 = 1.75; 2 ops x 3 accesses.
  EXPECT_DOUBLE_EQ(local.rf, 6 * 0.5 * 1.75);

  // Split: same FU energy, plus one transfer and its two RF accesses.
  const EnergyEstimate split =
      estimate_energy(build_bound_dfg(g, {0, 1}, dp), dp);
  EXPECT_DOUBLE_EQ(split.fu, local.fu);
  EXPECT_DOUBLE_EQ(split.bus, 2.0);
  EXPECT_GT(split.rf, local.rf);
  EXPECT_GT(split.total(), local.total());
}

TEST(Energy, PortPenaltyFavorsClustering) {
  // Same kernel, same binding work: a centralized 6-FU machine pays
  // more RF energy per access than three 2-FU clusters, and for kernels
  // with modest transfer needs the clustered total wins.
  const Dfg g = benchmark_by_name("DCT-DIF").dfg;  // 2 components
  const Datapath central = parse_datapath("[3,3]");
  const Datapath clustered = parse_datapath("[1,1|1,1|1,1]");
  const BindResult rc = bind_full(g, central);
  const BindResult rk = bind_full(g, clustered);
  const double e_central = estimate_energy(rc.bound, central).total();
  const double e_clustered = estimate_energy(rk.bound, clustered).total();
  EXPECT_LT(e_clustered, e_central);
}

TEST(Energy, MoreMovesMoreBusEnergy) {
  DfgBuilder b;
  Value acc = b.add(b.input(), b.input());
  for (int i = 0; i < 7; ++i) {
    acc = b.add(acc, b.input());
  }
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  Binding alternating;
  for (OpId v = 0; v < g.num_ops(); ++v) {
    alternating.push_back(v % 2);
  }
  const EnergyEstimate bad =
      estimate_energy(build_bound_dfg(g, alternating, dp), dp);
  const EnergyEstimate good =
      estimate_energy(build_bound_dfg(g, Binding(8, 0), dp), dp);
  EXPECT_GT(bad.bus, good.bus);
  EXPECT_DOUBLE_EQ(good.bus, 0.0);
}

TEST(Energy, CustomModelCoefficientsApply) {
  DfgBuilder b;
  (void)b.mul(b.input(), b.input());
  const Dfg g = std::move(b).take();
  const Datapath dp = parse_datapath("[1,1]");
  EnergyModel model;
  model.e_mult_op = 10.0;
  model.e_rf_access = 0.0;
  const EnergyEstimate e =
      estimate_energy(build_bound_dfg(g, {0}, dp), dp, model);
  EXPECT_DOUBLE_EQ(e.total(), 10.0);
}

TEST(Energy, DsePointsCarryEnergy) {
  const Dfg g = make_fir(6);
  DseConstraints cons;
  cons.max_total_fus = 4;
  cons.max_clusters = 2;
  DriverParams cheap;
  cheap.run_iterative = false;
  for (const DsePoint& p : explore_design_space(g, cons, cheap)) {
    EXPECT_GT(p.energy, 0.0) << p.datapath.to_string();
  }
}

}  // namespace
}  // namespace cvb
