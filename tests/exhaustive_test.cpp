// Unit tests for the exhaustive reference binder, plus optimality
// cross-checks: on tiny DFGs the heuristics must come close to (and the
// full algorithm usually match) the enumerated optimum.
#include <gtest/gtest.h>

#include "bind/driver.hpp"
#include "bind/exhaustive.hpp"
#include "graph/builder.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"

namespace cvb {
namespace {

TEST(Exhaustive, SpaceSizeIsProductOfTargetSets) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  (void)bld.mul(x, bld.input());
  (void)bld.add(x, bld.input());
  const Dfg g = std::move(bld).take();
  EXPECT_EQ(binding_space_size(g, parse_datapath("[1,1|1,1]")), 8u);
  EXPECT_EQ(binding_space_size(g, parse_datapath("[1,0|1,1]")), 4u);
  EXPECT_EQ(binding_space_size(g, parse_datapath("[1,0]")), 0u);
}

TEST(Exhaustive, FindsKnownOptimum) {
  // Two independent 3-chains on [1,1|1,1]: optimal is one chain per
  // cluster, latency 3, zero moves.
  DfgBuilder bld;
  for (int c = 0; c < 2; ++c) {
    Value acc = bld.add(bld.input(), bld.input());
    acc = bld.add(acc, bld.input());
    (void)bld.add(acc, bld.input());
  }
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult best = exhaustive_binding(g, dp);
  EXPECT_EQ(best.schedule.latency, 3);
  EXPECT_EQ(best.schedule.num_moves, 0);
  EXPECT_EQ(verify_schedule(best.bound, dp, best.schedule), "");
}

TEST(Exhaustive, PrefersFewerMovesAmongEqualLatency) {
  DfgBuilder bld;
  const Value x = bld.add(bld.input(), bld.input());
  (void)bld.add(x, bld.input());
  const Dfg g = std::move(bld).take();
  const Datapath dp = parse_datapath("[1,1|1,1]");
  const BindResult best = exhaustive_binding(g, dp);
  EXPECT_EQ(best.schedule.latency, 2);
  EXPECT_EQ(best.schedule.num_moves, 0);
}

TEST(Exhaustive, RespectsLimit) {
  const Dfg g = make_fir(12);  // 23 ops, 2^23 bindings
  const Datapath dp = parse_datapath("[1,1|1,1]");
  EXPECT_THROW((void)exhaustive_binding(g, dp, 1000), std::invalid_argument);
}

TEST(Exhaustive, RejectsEmptyAndInfeasible) {
  const Datapath dp = parse_datapath("[1,1]");
  EXPECT_THROW((void)exhaustive_binding(Dfg{}, dp), std::invalid_argument);
  DfgBuilder bld;
  (void)bld.mul(bld.input(), bld.input());
  const Dfg g = std::move(bld).take();
  EXPECT_THROW((void)exhaustive_binding(g, parse_datapath("[1,0]")),
               std::invalid_argument);
}

// ------------------------------------------------- optimality cross-checks

struct TinyCase {
  std::string name;
  int taps;          // FIR size (keeps the space enumerable)
  std::string spec;  // datapath
};

class HeuristicVsOptimal : public ::testing::TestWithParam<TinyCase> {};

TEST_P(HeuristicVsOptimal, FullAlgorithmMatchesOrNearsOptimum) {
  const Dfg g = make_fir(GetParam().taps);
  const Datapath dp = parse_datapath(GetParam().spec);
  const BindResult optimal = exhaustive_binding(g, dp);
  const BindResult ours = bind_full(g, dp);
  EXPECT_GE(ours.schedule.latency, optimal.schedule.latency);
  // The paper reports B-ITER reaching provably optimal solutions on
  // small cases; allow at most one cycle of slack.
  EXPECT_LE(ours.schedule.latency, optimal.schedule.latency + 1)
      << GetParam().name;
}

TEST_P(HeuristicVsOptimal, InitialBinderWithinTwoCyclesOfOptimum) {
  const Dfg g = make_fir(GetParam().taps);
  const Datapath dp = parse_datapath(GetParam().spec);
  const BindResult optimal = exhaustive_binding(g, dp);
  const BindResult init = bind_initial_best(g, dp);
  EXPECT_LE(init.schedule.latency, optimal.schedule.latency + 2)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    TinyFirs, HeuristicVsOptimal,
    ::testing::Values(TinyCase{"fir4_sym", 4, "[1,1|1,1]"},
                      TinyCase{"fir6_sym", 6, "[1,1|1,1]"},
                      TinyCase{"fir8_sym", 8, "[1,1|1,1]"},
                      TinyCase{"fir6_asym", 6, "[2,1|1,1]"},
                      TinyCase{"fir5_three", 5, "[1,1|1,1|1,1]"}),
    [](const ::testing::TestParamInfo<TinyCase>& info) {
      return info.param.name;
    });

TEST(ExhaustiveCross, RandomTinyDagsFullAlgorithmNearOptimal) {
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    RandomDagParams params;
    params.num_ops = 9;
    params.num_layers = 3;
    const Dfg g = make_random_layered(params, rng);
    const Datapath dp = parse_datapath("[1,1|1,1]");
    const BindResult optimal = exhaustive_binding(g, dp);
    const BindResult ours = bind_full(g, dp);
    EXPECT_GE(ours.schedule.latency, optimal.schedule.latency);
    EXPECT_LE(ours.schedule.latency, optimal.schedule.latency + 1)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace cvb
