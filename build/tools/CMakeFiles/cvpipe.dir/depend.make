# Empty dependencies file for cvpipe.
# This may be replaced when dependencies are built.
