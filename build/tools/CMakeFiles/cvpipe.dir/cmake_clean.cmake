file(REMOVE_RECURSE
  "CMakeFiles/cvpipe.dir/cvpipe.cpp.o"
  "CMakeFiles/cvpipe.dir/cvpipe.cpp.o.d"
  "cvpipe"
  "cvpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
