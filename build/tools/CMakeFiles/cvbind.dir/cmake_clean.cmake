file(REMOVE_RECURSE
  "CMakeFiles/cvbind.dir/cvbind.cpp.o"
  "CMakeFiles/cvbind.dir/cvbind.cpp.o.d"
  "cvbind"
  "cvbind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvbind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
