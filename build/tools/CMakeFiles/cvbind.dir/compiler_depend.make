# Empty compiler generated dependencies file for cvbind.
# This may be replaced when dependencies are built.
