# Empty compiler generated dependencies file for example_custom_kernel_fir.
# This may be replaced when dependencies are built.
