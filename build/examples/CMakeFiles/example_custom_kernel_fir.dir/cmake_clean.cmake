file(REMOVE_RECURSE
  "CMakeFiles/example_custom_kernel_fir.dir/custom_kernel_fir.cpp.o"
  "CMakeFiles/example_custom_kernel_fir.dir/custom_kernel_fir.cpp.o.d"
  "custom_kernel_fir"
  "custom_kernel_fir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_kernel_fir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
