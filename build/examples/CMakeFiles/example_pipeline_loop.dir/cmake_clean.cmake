file(REMOVE_RECURSE
  "CMakeFiles/example_pipeline_loop.dir/pipeline_loop.cpp.o"
  "CMakeFiles/example_pipeline_loop.dir/pipeline_loop.cpp.o.d"
  "pipeline_loop"
  "pipeline_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pipeline_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
