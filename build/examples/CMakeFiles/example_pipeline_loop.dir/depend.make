# Empty dependencies file for example_pipeline_loop.
# This may be replaced when dependencies are built.
