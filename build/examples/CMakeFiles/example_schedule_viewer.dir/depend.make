# Empty dependencies file for example_schedule_viewer.
# This may be replaced when dependencies are built.
