file(REMOVE_RECURSE
  "CMakeFiles/example_schedule_viewer.dir/schedule_viewer.cpp.o"
  "CMakeFiles/example_schedule_viewer.dir/schedule_viewer.cpp.o.d"
  "schedule_viewer"
  "schedule_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_schedule_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
