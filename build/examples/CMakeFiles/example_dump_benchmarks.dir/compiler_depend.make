# Empty compiler generated dependencies file for example_dump_benchmarks.
# This may be replaced when dependencies are built.
