# Empty compiler generated dependencies file for example_compiler_flow.
# This may be replaced when dependencies are built.
