file(REMOVE_RECURSE
  "CMakeFiles/example_compiler_flow.dir/compiler_flow.cpp.o"
  "CMakeFiles/example_compiler_flow.dir/compiler_flow.cpp.o.d"
  "compiler_flow"
  "compiler_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compiler_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
