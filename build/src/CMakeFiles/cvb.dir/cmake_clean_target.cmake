file(REMOVE_RECURSE
  "libcvb.a"
)
