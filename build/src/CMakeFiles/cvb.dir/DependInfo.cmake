
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/annealing.cpp" "src/CMakeFiles/cvb.dir/baselines/annealing.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/baselines/annealing.cpp.o.d"
  "/root/repo/src/baselines/mincut.cpp" "src/CMakeFiles/cvb.dir/baselines/mincut.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/baselines/mincut.cpp.o.d"
  "/root/repo/src/bind/binding.cpp" "src/CMakeFiles/cvb.dir/bind/binding.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/bind/binding.cpp.o.d"
  "/root/repo/src/bind/bound_dfg.cpp" "src/CMakeFiles/cvb.dir/bind/bound_dfg.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/bind/bound_dfg.cpp.o.d"
  "/root/repo/src/bind/driver.cpp" "src/CMakeFiles/cvb.dir/bind/driver.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/bind/driver.cpp.o.d"
  "/root/repo/src/bind/exhaustive.cpp" "src/CMakeFiles/cvb.dir/bind/exhaustive.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/bind/exhaustive.cpp.o.d"
  "/root/repo/src/bind/initial_binder.cpp" "src/CMakeFiles/cvb.dir/bind/initial_binder.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/bind/initial_binder.cpp.o.d"
  "/root/repo/src/bind/iterative_improver.cpp" "src/CMakeFiles/cvb.dir/bind/iterative_improver.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/bind/iterative_improver.cpp.o.d"
  "/root/repo/src/bind/load_profile.cpp" "src/CMakeFiles/cvb.dir/bind/load_profile.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/bind/load_profile.cpp.o.d"
  "/root/repo/src/bind/lower_bounds.cpp" "src/CMakeFiles/cvb.dir/bind/lower_bounds.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/bind/lower_bounds.cpp.o.d"
  "/root/repo/src/bind/report.cpp" "src/CMakeFiles/cvb.dir/bind/report.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/bind/report.cpp.o.d"
  "/root/repo/src/cli/cli.cpp" "src/CMakeFiles/cvb.dir/cli/cli.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/cli/cli.cpp.o.d"
  "/root/repo/src/cli/pipe_cli.cpp" "src/CMakeFiles/cvb.dir/cli/pipe_cli.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/cli/pipe_cli.cpp.o.d"
  "/root/repo/src/explore/energy.cpp" "src/CMakeFiles/cvb.dir/explore/energy.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/explore/energy.cpp.o.d"
  "/root/repo/src/explore/explore.cpp" "src/CMakeFiles/cvb.dir/explore/explore.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/explore/explore.cpp.o.d"
  "/root/repo/src/graph/analysis.cpp" "src/CMakeFiles/cvb.dir/graph/analysis.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/graph/analysis.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/cvb.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/cvb.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/dfg.cpp" "src/CMakeFiles/cvb.dir/graph/dfg.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/graph/dfg.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/CMakeFiles/cvb.dir/graph/dot.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/graph/dot.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/CMakeFiles/cvb.dir/graph/stats.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/graph/stats.cpp.o.d"
  "/root/repo/src/io/dfg_text.cpp" "src/CMakeFiles/cvb.dir/io/dfg_text.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/io/dfg_text.cpp.o.d"
  "/root/repo/src/kernels/arf.cpp" "src/CMakeFiles/cvb.dir/kernels/arf.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/kernels/arf.cpp.o.d"
  "/root/repo/src/kernels/dct.cpp" "src/CMakeFiles/cvb.dir/kernels/dct.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/kernels/dct.cpp.o.d"
  "/root/repo/src/kernels/ewf.cpp" "src/CMakeFiles/cvb.dir/kernels/ewf.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/kernels/ewf.cpp.o.d"
  "/root/repo/src/kernels/extended.cpp" "src/CMakeFiles/cvb.dir/kernels/extended.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/kernels/extended.cpp.o.d"
  "/root/repo/src/kernels/fft.cpp" "src/CMakeFiles/cvb.dir/kernels/fft.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/kernels/fft.cpp.o.d"
  "/root/repo/src/kernels/fir.cpp" "src/CMakeFiles/cvb.dir/kernels/fir.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/kernels/fir.cpp.o.d"
  "/root/repo/src/kernels/random_dag.cpp" "src/CMakeFiles/cvb.dir/kernels/random_dag.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/kernels/random_dag.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/cvb.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/unroll.cpp" "src/CMakeFiles/cvb.dir/kernels/unroll.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/kernels/unroll.cpp.o.d"
  "/root/repo/src/machine/datapath.cpp" "src/CMakeFiles/cvb.dir/machine/datapath.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/machine/datapath.cpp.o.d"
  "/root/repo/src/machine/isa.cpp" "src/CMakeFiles/cvb.dir/machine/isa.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/machine/isa.cpp.o.d"
  "/root/repo/src/machine/machine_file.cpp" "src/CMakeFiles/cvb.dir/machine/machine_file.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/machine/machine_file.cpp.o.d"
  "/root/repo/src/machine/parser.cpp" "src/CMakeFiles/cvb.dir/machine/parser.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/machine/parser.cpp.o.d"
  "/root/repo/src/modulo/cyclic_dfg.cpp" "src/CMakeFiles/cvb.dir/modulo/cyclic_dfg.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/modulo/cyclic_dfg.cpp.o.d"
  "/root/repo/src/modulo/expand.cpp" "src/CMakeFiles/cvb.dir/modulo/expand.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/modulo/expand.cpp.o.d"
  "/root/repo/src/modulo/loop_kernels.cpp" "src/CMakeFiles/cvb.dir/modulo/loop_kernels.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/modulo/loop_kernels.cpp.o.d"
  "/root/repo/src/modulo/mii.cpp" "src/CMakeFiles/cvb.dir/modulo/mii.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/modulo/mii.cpp.o.d"
  "/root/repo/src/modulo/modulo_scheduler.cpp" "src/CMakeFiles/cvb.dir/modulo/modulo_scheduler.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/modulo/modulo_scheduler.cpp.o.d"
  "/root/repo/src/pcc/pcc.cpp" "src/CMakeFiles/cvb.dir/pcc/pcc.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/pcc/pcc.cpp.o.d"
  "/root/repo/src/regalloc/regalloc.cpp" "src/CMakeFiles/cvb.dir/regalloc/regalloc.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/regalloc/regalloc.cpp.o.d"
  "/root/repo/src/sched/bb_scheduler.cpp" "src/CMakeFiles/cvb.dir/sched/bb_scheduler.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/sched/bb_scheduler.cpp.o.d"
  "/root/repo/src/sched/emit.cpp" "src/CMakeFiles/cvb.dir/sched/emit.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/sched/emit.cpp.o.d"
  "/root/repo/src/sched/gantt.cpp" "src/CMakeFiles/cvb.dir/sched/gantt.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/sched/gantt.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/CMakeFiles/cvb.dir/sched/list_scheduler.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/sched/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/quality.cpp" "src/CMakeFiles/cvb.dir/sched/quality.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/sched/quality.cpp.o.d"
  "/root/repo/src/sched/reg_pressure.cpp" "src/CMakeFiles/cvb.dir/sched/reg_pressure.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/sched/reg_pressure.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/cvb.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/sched/verifier.cpp" "src/CMakeFiles/cvb.dir/sched/verifier.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/sched/verifier.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/CMakeFiles/cvb.dir/sim/executor.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/sim/executor.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/cvb.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/stopwatch.cpp" "src/CMakeFiles/cvb.dir/support/stopwatch.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/support/stopwatch.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "src/CMakeFiles/cvb.dir/support/strings.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/support/strings.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/cvb.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/cvb.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
