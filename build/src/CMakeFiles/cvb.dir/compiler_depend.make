# Empty compiler generated dependencies file for cvb.
# This may be replaced when dependencies are built.
