file(REMOVE_RECURSE
  "CMakeFiles/bench_baselines.dir/baselines.cpp.o"
  "CMakeFiles/bench_baselines.dir/baselines.cpp.o.d"
  "baselines"
  "baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
