file(REMOVE_RECURSE
  "CMakeFiles/bench_regfiles.dir/regfiles.cpp.o"
  "CMakeFiles/bench_regfiles.dir/regfiles.cpp.o.d"
  "regfiles"
  "regfiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regfiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
