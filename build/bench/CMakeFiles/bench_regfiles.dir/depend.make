# Empty dependencies file for bench_regfiles.
# This may be replaced when dependencies are built.
