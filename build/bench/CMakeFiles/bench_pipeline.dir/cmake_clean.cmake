file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/bench_pipeline.dir/pipeline.cpp.o.d"
  "pipeline"
  "pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
