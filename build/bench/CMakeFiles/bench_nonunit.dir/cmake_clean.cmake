file(REMOVE_RECURSE
  "CMakeFiles/bench_nonunit.dir/nonunit.cpp.o"
  "CMakeFiles/bench_nonunit.dir/nonunit.cpp.o.d"
  "nonunit"
  "nonunit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
