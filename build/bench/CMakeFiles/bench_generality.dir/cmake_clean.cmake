file(REMOVE_RECURSE
  "CMakeFiles/bench_generality.dir/generality.cpp.o"
  "CMakeFiles/bench_generality.dir/generality.cpp.o.d"
  "generality"
  "generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
