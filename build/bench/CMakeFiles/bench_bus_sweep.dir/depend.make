# Empty dependencies file for bench_bus_sweep.
# This may be replaced when dependencies are built.
