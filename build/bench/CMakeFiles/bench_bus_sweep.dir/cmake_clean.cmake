file(REMOVE_RECURSE
  "CMakeFiles/bench_bus_sweep.dir/bus_sweep.cpp.o"
  "CMakeFiles/bench_bus_sweep.dir/bus_sweep.cpp.o.d"
  "bus_sweep"
  "bus_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
