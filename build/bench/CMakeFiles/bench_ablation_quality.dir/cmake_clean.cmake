file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quality.dir/ablation_quality.cpp.o"
  "CMakeFiles/bench_ablation_quality.dir/ablation_quality.cpp.o.d"
  "ablation_quality"
  "ablation_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
