# Empty compiler generated dependencies file for cvb_tests.
# This may be replaced when dependencies are built.
