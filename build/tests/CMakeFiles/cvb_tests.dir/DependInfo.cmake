
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/cvb_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/bb_scheduler_test.cpp" "tests/CMakeFiles/cvb_tests.dir/bb_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/bb_scheduler_test.cpp.o.d"
  "/root/repo/tests/binding_test.cpp" "tests/CMakeFiles/cvb_tests.dir/binding_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/binding_test.cpp.o.d"
  "/root/repo/tests/bound_dfg_test.cpp" "tests/CMakeFiles/cvb_tests.dir/bound_dfg_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/bound_dfg_test.cpp.o.d"
  "/root/repo/tests/builder_test.cpp" "tests/CMakeFiles/cvb_tests.dir/builder_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/builder_test.cpp.o.d"
  "/root/repo/tests/cli_test.cpp" "tests/CMakeFiles/cvb_tests.dir/cli_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/cli_test.cpp.o.d"
  "/root/repo/tests/driver_test.cpp" "tests/CMakeFiles/cvb_tests.dir/driver_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/driver_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/cvb_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/emit_test.cpp" "tests/CMakeFiles/cvb_tests.dir/emit_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/emit_test.cpp.o.d"
  "/root/repo/tests/energy_test.cpp" "tests/CMakeFiles/cvb_tests.dir/energy_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/energy_test.cpp.o.d"
  "/root/repo/tests/executor_test.cpp" "tests/CMakeFiles/cvb_tests.dir/executor_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/executor_test.cpp.o.d"
  "/root/repo/tests/exhaustive_test.cpp" "tests/CMakeFiles/cvb_tests.dir/exhaustive_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/exhaustive_test.cpp.o.d"
  "/root/repo/tests/expand_test.cpp" "tests/CMakeFiles/cvb_tests.dir/expand_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/expand_test.cpp.o.d"
  "/root/repo/tests/explore_test.cpp" "tests/CMakeFiles/cvb_tests.dir/explore_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/explore_test.cpp.o.d"
  "/root/repo/tests/extended_kernels_test.cpp" "tests/CMakeFiles/cvb_tests.dir/extended_kernels_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/extended_kernels_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/cvb_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/gantt_test.cpp" "tests/CMakeFiles/cvb_tests.dir/gantt_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/gantt_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/cvb_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/improver_test.cpp" "tests/CMakeFiles/cvb_tests.dir/improver_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/improver_test.cpp.o.d"
  "/root/repo/tests/initial_binder_test.cpp" "tests/CMakeFiles/cvb_tests.dir/initial_binder_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/initial_binder_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/cvb_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/cvb_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/kernels_test.cpp" "tests/CMakeFiles/cvb_tests.dir/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/kernels_test.cpp.o.d"
  "/root/repo/tests/load_profile_test.cpp" "tests/CMakeFiles/cvb_tests.dir/load_profile_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/load_profile_test.cpp.o.d"
  "/root/repo/tests/lower_bounds_test.cpp" "tests/CMakeFiles/cvb_tests.dir/lower_bounds_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/lower_bounds_test.cpp.o.d"
  "/root/repo/tests/machine_file_test.cpp" "tests/CMakeFiles/cvb_tests.dir/machine_file_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/machine_file_test.cpp.o.d"
  "/root/repo/tests/machine_test.cpp" "tests/CMakeFiles/cvb_tests.dir/machine_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/machine_test.cpp.o.d"
  "/root/repo/tests/modulo_test.cpp" "tests/CMakeFiles/cvb_tests.dir/modulo_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/modulo_test.cpp.o.d"
  "/root/repo/tests/pcc_test.cpp" "tests/CMakeFiles/cvb_tests.dir/pcc_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/pcc_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/cvb_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/quality_test.cpp" "tests/CMakeFiles/cvb_tests.dir/quality_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/quality_test.cpp.o.d"
  "/root/repo/tests/reg_pressure_test.cpp" "tests/CMakeFiles/cvb_tests.dir/reg_pressure_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/reg_pressure_test.cpp.o.d"
  "/root/repo/tests/regalloc_test.cpp" "tests/CMakeFiles/cvb_tests.dir/regalloc_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/regalloc_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/cvb_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/reproduction_test.cpp" "tests/CMakeFiles/cvb_tests.dir/reproduction_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/reproduction_test.cpp.o.d"
  "/root/repo/tests/sched_test.cpp" "tests/CMakeFiles/cvb_tests.dir/sched_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/sched_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/cvb_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/cvb_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/cvb_tests.dir/support_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cvb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
