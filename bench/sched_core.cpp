// Scheduler-core micro bench: per-evaluation latency of the
// data-oriented list-scheduler core on B-ITER-style candidate batches,
// against the frozen pre-rewrite reference core
// (tests/reference_scheduler.hpp), over both consumers — the full
// scheduling path (list_schedule_into on a retained arena) and the
// DeltaEvaluator overlay path — plus the EvalEngine cache hit rates on
// a repeated workload.
//
// Emits a machine-readable BENCH_PR<N>.json (schema
// "cvb-bench-sched-core-v1", documented in FORMATS.md) that CI tracks
// across PRs via tools/bench_gate. The gated aggregate numbers are
// *normalized*: new-core p99 divided by reference-core p99 measured in
// the same process on the same machine, so the committed baseline
// stays comparable across hosts of different speeds.
//
// Flags:
//   --json FILE    write the JSON report to FILE (default: stdout only)
//   --check        verify full-path schedules are bit-identical to the
//                  reference core while warming up; exit 1 on mismatch
//   --evals N      timed rounds per configuration (default 24)
//   --handicap N   run every new-core schedule N times per sample — a
//                  deliberate N-x slowdown used to self-test bench_gate
//   --pr N         PR number stamped into the report (default 6);
//                  bench_compare orders committed reports by it
//
// The report also carries a "topology_sweep" section: bind + schedule
// quality (L, M) over interconnect fabric x cluster-count
// configurations (single bus, ring, point-to-point, segmented bus,
// mesh). In --check mode every sweep row is verified end-to-end and
// the single_bus rows are asserted bit-identical to the legacy
// single-bus datapath (schedule starts included).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "bind/delta_eval.hpp"
#include "bind/driver.hpp"
#include "bind/eval_engine.hpp"
#include "harness.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/verifier.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "tests/reference_scheduler.hpp"

namespace {

using cvb::bench::LatencySampler;

struct Config {
  std::string kernel;
  std::string datapath;
};

// The parallel_eval configurations: one representative datapath per
// Table 1/2 kernel plus the DCT-DIT-2 rows.
const std::vector<Config> kConfigs = {
    {"DCT-DIF", "[2,1|2,1]"},    {"DCT-LEE", "[2,2|2,1]"},
    {"DCT-DIT", "[3,1|2,2|1,3]"}, {"DCT-DIT-2", "[1,1|1,1]"},
    {"DCT-DIT-2", "[3,1|2,2|1,3]"}, {"FFT", "[2,1|2,1|1,2]"},
    {"EWF", "[2,1|1,1]"},        {"ARF", "[1,2|1,2]"},
};

struct PathResult {
  std::string path;  // "full" | "reference" | "delta"
  std::size_t evals = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double mean_ns = 0.0;
  double evals_per_sec = 0.0;
};

/// Number of independent measurement blocks per path. The reported p99
/// is the *minimum* of the per-block p99s: OS scheduler jitter on a
/// small host is strictly additive noise, so min-of-blocks recovers
/// the code's own tail instead of the machine's, and keeps the gated
/// normalized-p99 metric stable enough for a 10% regression budget.
/// p50/mean/evals-per-sec are pooled over all blocks.
constexpr int kBlocks = 6;

PathResult summarize(const std::string& path,
                     const std::vector<LatencySampler>& blocks) {
  LatencySampler pooled;
  double p99 = 0.0;
  bool first = true;
  for (const LatencySampler& block : blocks) {
    if (block.count() == 0) {
      continue;
    }
    for (std::size_t i = 0; i < block.count(); ++i) {
      pooled.add_ns(block.ns(i));
    }
    const double block_p99 = block.p99_ns();
    p99 = first ? block_p99 : std::min(p99, block_p99);
    first = false;
  }
  PathResult out;
  out.path = path;
  out.evals = pooled.count();
  out.p50_ns = pooled.p50_ns();
  out.p99_ns = p99;
  out.mean_ns = pooled.mean_ns();
  out.evals_per_sec = pooled.per_sec();
  return out;
}

struct ConfigResult {
  Config config;
  PathResult full;
  PathResult reference;
  PathResult delta;
};

struct Workload {
  cvb::Binding seed;
  std::vector<cvb::BindingDelta> deltas;
  std::vector<cvb::Binding> bindings;     // materialized candidates
  std::vector<cvb::BoundDfg> bounds;      // prebuilt, scheduling is timed
};

Workload build_workload(const cvb::Dfg& dfg, const cvb::Datapath& dp) {
  Workload w;
  cvb::DriverParams init_only;
  init_only.run_iterative = false;
  w.seed = cvb::bind_initial_best(dfg, dp, init_only).binding;
  for (cvb::OpId v = 0; v < dfg.num_ops(); ++v) {
    for (const cvb::ClusterId c : dp.target_set(dfg.type(v))) {
      if (c == w.seed[static_cast<std::size_t>(v)]) {
        continue;
      }
      w.deltas.push_back({{v, c}});
      cvb::Binding trial = w.seed;
      trial[static_cast<std::size_t>(v)] = c;
      w.bounds.push_back(cvb::build_bound_dfg(dfg, trial, dp));
      w.bindings.push_back(std::move(trial));
    }
  }
  return w;
}

/// Times one configuration over all three paths. `check` additionally
/// asserts the full path is schedule-identical to the reference core on
/// every candidate (the CI differential smoke).
ConfigResult run_config(const Config& config, int rounds, int handicap,
                        bool check) {
  const cvb::BenchmarkKernel kernel = cvb::benchmark_by_name(config.kernel);
  const cvb::Datapath dp = cvb::parse_datapath(config.datapath);
  const Workload w = build_workload(kernel.dfg, dp);
  if (w.bounds.empty()) {
    throw std::logic_error("no candidates for " + config.kernel + " on " +
                           config.datapath);
  }

  cvb::SchedArena arena;
  cvb::testref::RefSchedArena ref_arena;
  cvb::Schedule sched;
  cvb::Schedule ref_sched;
  cvb::DeltaEvaluator evaluator;
  evaluator.set_incumbent(kernel.dfg, dp, w.seed);

  // Warm-up sweep: sizes the arenas, and doubles as the differential
  // smoke in --check mode.
  for (std::size_t i = 0; i < w.bounds.size(); ++i) {
    cvb::list_schedule_into(w.bounds[i], dp, {}, arena, sched);
    cvb::testref::ref_list_schedule_into(w.bounds[i], dp, {}, ref_arena,
                                         ref_sched);
    if (check &&
        (sched.latency != ref_sched.latency || sched.start != ref_sched.start ||
         sched.num_moves != ref_sched.num_moves)) {
      throw std::logic_error("schedule mismatch vs reference core: " +
                             config.kernel + " on " + config.datapath +
                             " candidate " + std::to_string(i));
    }
    (void)evaluator.evaluate(w.deltas[i], {});
  }

  std::vector<LatencySampler> full(kBlocks);
  std::vector<LatencySampler> reference(kBlocks);
  std::vector<LatencySampler> delta(kBlocks);
  const std::size_t samples =
      static_cast<std::size_t>(rounds) * w.bounds.size();
  for (int b = 0; b < kBlocks; ++b) {
    const auto sb = static_cast<std::size_t>(b);
    full[sb].reserve(samples / kBlocks + 1);
    reference[sb].reserve(samples / kBlocks + 1);
    delta[sb].reserve(samples / kBlocks + 1);
  }
  // Each path sweeps the whole candidate batch in its own loop: an
  // interleaved A/B/A/B ordering would let whichever path runs first
  // on a candidate pay its cold-cache misses and hand the second a
  // warm graph, biasing the comparison. Rounds are striped across the
  // measurement blocks (see kBlocks).
  for (int round = 0; round < rounds; ++round) {
    const auto block = static_cast<std::size_t>(round % kBlocks);
    for (std::size_t i = 0; i < w.bounds.size(); ++i) {
      full[block].sample([&] {
        for (int rep = 0; rep < handicap; ++rep) {
          cvb::list_schedule_into(w.bounds[i], dp, {}, arena, sched);
        }
      });
    }
    for (std::size_t i = 0; i < w.bounds.size(); ++i) {
      reference[block].sample([&] {
        cvb::testref::ref_list_schedule_into(w.bounds[i], dp, {}, ref_arena,
                                             ref_sched);
      });
    }
    for (std::size_t i = 0; i < w.bounds.size(); ++i) {
      delta[block].sample([&] {
        for (int rep = 0; rep < handicap; ++rep) {
          (void)evaluator.evaluate(w.deltas[i], {});
        }
      });
    }
  }

  ConfigResult out;
  out.config = config;
  out.full = summarize("full", full);
  out.reference = summarize("reference", reference);
  out.delta = summarize("delta", delta);
  return out;
}

struct CacheReport {
  long long candidates = 0;
  long long hits = 0;
  long long l1_hits = 0;
  double hit_rate = 0.0;
  double l1_rate = 0.0;
};

/// Repeated B-ITER-style workload through a warm EvalEngine: round one
/// populates the sharded L2, later rounds should be mostly L1 probes.
CacheReport run_cache_workload() {
  const cvb::BenchmarkKernel kernel = cvb::benchmark_by_name("DCT-DIT-2");
  const cvb::Datapath dp = cvb::parse_datapath("[3,1|2,2|1,3]");
  const Workload w = build_workload(kernel.dfg, dp);
  // The L1 is direct-mapped, so it must cover the candidate set being
  // cycled: with the default 64 slots and ~3x that many distinct
  // candidates swept in order, every entry is evicted before its next
  // probe and the L1 reads 0% even though it works. Size it to the
  // workload (next power of two above the batch) so the report
  // reflects steady-state B-ITER behaviour.
  cvb::EvalEngineOptions engine_options;
  std::size_t l1 = 1;
  while (l1 < w.bindings.size()) {
    l1 *= 2;
  }
  engine_options.l1_capacity = l1;
  cvb::EvalEngine engine(engine_options);
  for (int round = 0; round < 4; ++round) {
    (void)engine.evaluate_batch(kernel.dfg, dp, w.bindings);
  }
  const cvb::EvalStats stats = engine.stats();
  CacheReport out;
  out.candidates = stats.candidates;
  out.hits = stats.cache_hits;
  out.l1_hits = stats.l1_hits;
  if (stats.candidates > 0) {
    out.hit_rate = static_cast<double>(stats.cache_hits) /
                   static_cast<double>(stats.candidates);
    out.l1_rate = static_cast<double>(stats.l1_hits) /
                  static_cast<double>(stats.candidates);
  }
  return out;
}

struct TopoConfig {
  std::string kernel;
  std::string datapath;  // cluster spec, cluster count varies per row
  std::string topology;  // parse_topology_spec form
};

// Fabric x cluster-count sweep: 2-cluster fabrics are degenerate (every
// builder collapses to one or two links), so the interesting rows are
// the 3- and 4-cluster ones; mesh needs a rectangular cluster count.
const std::vector<TopoConfig> kTopoConfigs = {
    {"EWF", "[2,1|1,1]", "single_bus"},
    {"EWF", "[2,1|1,1]", "ring"},
    {"EWF", "[2,1|1,1]", "p2p"},
    {"FFT", "[2,1|2,1|1,2]", "single_bus"},
    {"FFT", "[2,1|2,1|1,2]", "ring"},
    {"FFT", "[2,1|2,1|1,2]", "p2p"},
    {"FFT", "[2,1|2,1|1,2]", "segmented_bus:2"},
    {"DCT-DIT-2", "[1,1|1,1|1,1|1,1]", "single_bus"},
    {"DCT-DIT-2", "[1,1|1,1|1,1|1,1]", "ring"},
    {"DCT-DIT-2", "[1,1|1,1|1,1|1,1]", "mesh:2x2"},
    {"DCT-DIT-2", "[1,1|1,1|1,1|1,1]", "p2p"},
    {"DCT-DIT-2", "[1,1|1,1|1,1|1,1]", "segmented_bus:2"},
};

struct TopoSweepRow {
  TopoConfig config;
  int clusters = 0;
  int links = 0;
  int latency = 0;
  int moves = 0;
};

/// Binds and schedules one fabric configuration (B-INIT seed, the same
/// deterministic workload the timing paths use). In `check` mode the
/// schedule is verified end-to-end and single_bus rows are asserted
/// bit-identical to the legacy single-bus datapath.
TopoSweepRow run_topo_config(const TopoConfig& config, bool check) {
  const cvb::BenchmarkKernel kernel = cvb::benchmark_by_name(config.kernel);
  const cvb::Datapath legacy = cvb::parse_datapath(config.datapath);
  const cvb::Datapath dp = legacy.with_topology(cvb::parse_topology_spec(
      config.topology, legacy.num_clusters(), legacy.num_buses()));

  cvb::DriverParams init_only;
  init_only.run_iterative = false;
  const cvb::BindResult r = cvb::bind_initial_best(kernel.dfg, dp, init_only);

  TopoSweepRow row;
  row.config = config;
  row.clusters = dp.num_clusters();
  row.links = dp.topology().num_links();
  row.latency = r.schedule.latency;
  row.moves = r.schedule.num_moves;
  if (check) {
    if (const std::string err =
            cvb::verify_schedule(r.bound, dp, r.schedule);
        !err.empty()) {
      throw std::logic_error("topology sweep: " + config.kernel + " on " +
                             config.datapath + " " + config.topology +
                             ": verifier: " + err);
    }
    if (dp.topology().is_single_bus()) {
      const cvb::BindResult base =
          cvb::bind_initial_best(kernel.dfg, legacy, init_only);
      if (base.schedule.latency != r.schedule.latency ||
          base.schedule.num_moves != r.schedule.num_moves ||
          base.schedule.start != r.schedule.start ||
          base.binding != r.binding) {
        throw std::logic_error(
            "topology sweep: explicit single_bus diverged from the legacy "
            "bus datapath on " +
            config.kernel + " " + config.datapath);
      }
    }
  }
  return row;
}

cvb::JsonValue path_json(const Config& config, const PathResult& r) {
  cvb::JsonValue row = cvb::JsonValue::object();
  row.set("kernel", config.kernel);
  row.set("datapath", config.datapath);
  row.set("path", r.path);
  row.set("evals", r.evals);
  row.set("p50_ns", r.p50_ns);
  row.set("p99_ns", r.p99_ns);
  row.set("mean_ns", r.mean_ns);
  row.set("evals_per_sec", r.evals_per_sec);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using cvb::format_sig;
  std::string json_path;
  bool check = false;
  int rounds = 24;
  int handicap = 1;
  int pr = 6;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--evals" && i + 1 < argc) {
      rounds = std::stoi(argv[++i]);
    } else if (arg == "--handicap" && i + 1 < argc) {
      handicap = std::stoi(argv[++i]);
    } else if (arg == "--pr" && i + 1 < argc) {
      pr = std::stoi(argv[++i]);
    } else {
      std::cerr << "usage: sched_core [--json FILE] [--check] [--evals N] "
                   "[--handicap N] [--pr N]\n";
      return 2;
    }
  }
  if (rounds < 1 || handicap < 1) {
    std::cerr << "sched_core: --evals and --handicap must be >= 1\n";
    return 2;
  }

  try {
    std::vector<ConfigResult> results;
    results.reserve(kConfigs.size());
    for (const Config& config : kConfigs) {
      results.push_back(run_config(config, rounds, handicap, check));
    }
    const CacheReport cache = run_cache_workload();
    std::vector<TopoSweepRow> topo_rows;
    topo_rows.reserve(kTopoConfigs.size());
    for (const TopoConfig& config : kTopoConfigs) {
      topo_rows.push_back(run_topo_config(config, check));
    }

    // Aggregates: geometric means across configurations. Speedups and
    // normalized p99s are ratios against the reference core measured in
    // this same run, so they transfer across machines.
    std::vector<double> full_speedup;
    std::vector<double> delta_speedup;
    std::vector<double> full_p99_norm;
    std::vector<double> delta_p99_norm;
    for (const ConfigResult& r : results) {
      full_speedup.push_back(r.reference.mean_ns / r.full.mean_ns);
      delta_speedup.push_back(r.reference.mean_ns / r.delta.mean_ns);
      full_p99_norm.push_back(r.full.p99_ns / r.reference.p99_ns);
      delta_p99_norm.push_back(r.delta.p99_ns / r.reference.p99_ns);
    }
    const double agg_full_speedup = cvb::bench::geomean(full_speedup);
    const double agg_delta_speedup = cvb::bench::geomean(delta_speedup);
    const double agg_full_p99 = cvb::bench::geomean(full_p99_norm);
    const double agg_delta_p99 = cvb::bench::geomean(delta_p99_norm);

    cvb::TablePrinter table({"kernel", "datapath", "evals", "full p50/p99 us",
                             "ref p50/p99 us", "delta p50/p99 us",
                             "full speedup", "delta speedup"});
    for (const ConfigResult& r : results) {
      table.add_row(
          {r.config.kernel, r.config.datapath, std::to_string(r.full.evals),
           format_sig(r.full.p50_ns / 1000.0, 3) + "/" +
               format_sig(r.full.p99_ns / 1000.0, 3),
           format_sig(r.reference.p50_ns / 1000.0, 3) + "/" +
               format_sig(r.reference.p99_ns / 1000.0, 3),
           format_sig(r.delta.p50_ns / 1000.0, 3) + "/" +
               format_sig(r.delta.p99_ns / 1000.0, 3),
           format_sig(r.reference.mean_ns / r.full.mean_ns, 3),
           format_sig(r.reference.mean_ns / r.delta.mean_ns, 3)});
    }
    table.print(std::cout);

    cvb::TablePrinter topo_table(
        {"kernel", "datapath", "topology", "links", "L", "M"});
    for (const TopoSweepRow& r : topo_rows) {
      topo_table.add_row({r.config.kernel, r.config.datapath,
                          r.config.topology, std::to_string(r.links),
                          std::to_string(r.latency),
                          std::to_string(r.moves)});
    }
    std::cout << "\ntopology sweep (B-INIT quality per fabric):\n";
    topo_table.print(std::cout);

    std::cout << "\naggregate (geomean): full " << format_sig(agg_full_speedup, 3)
              << "x vs reference, delta " << format_sig(agg_delta_speedup, 3)
              << "x vs reference\n"
              << "cache: " << cache.candidates << " candidates, "
              << format_sig(100.0 * cache.hit_rate, 3) << "% hits ("
              << format_sig(100.0 * cache.l1_rate, 3) << "% L1)\n";
    if (handicap > 1) {
      std::cout << "NOTE: --handicap " << handicap
                << " active; numbers are deliberately degraded\n";
    }

    cvb::JsonValue report = cvb::JsonValue::object();
    report.set("schema", "cvb-bench-sched-core-v1");
    report.set("pr", pr);
    report.set("rounds", rounds);
    report.set("handicap", handicap);
    cvb::JsonValue rows = cvb::JsonValue::array();
    for (const ConfigResult& r : results) {
      rows.push_back(path_json(r.config, r.full));
      rows.push_back(path_json(r.config, r.reference));
      rows.push_back(path_json(r.config, r.delta));
    }
    report.set("benchmarks", std::move(rows));
    cvb::JsonValue aggregate = cvb::JsonValue::object();
    aggregate.set("full_speedup_vs_reference", agg_full_speedup);
    aggregate.set("delta_speedup_vs_reference", agg_delta_speedup);
    aggregate.set("normalized_full_p99", agg_full_p99);
    aggregate.set("normalized_delta_p99", agg_delta_p99);
    report.set("aggregate", std::move(aggregate));
    cvb::JsonValue cache_json = cvb::JsonValue::object();
    cache_json.set("candidates", cache.candidates);
    cache_json.set("hits", cache.hits);
    cache_json.set("l1_hits", cache.l1_hits);
    cache_json.set("hit_rate", cache.hit_rate);
    cache_json.set("l1_rate", cache.l1_rate);
    report.set("cache", std::move(cache_json));
    cvb::JsonValue topo_json = cvb::JsonValue::array();
    for (const TopoSweepRow& r : topo_rows) {
      cvb::JsonValue row = cvb::JsonValue::object();
      row.set("kernel", r.config.kernel);
      row.set("datapath", r.config.datapath);
      row.set("topology", r.config.topology);
      row.set("clusters", r.clusters);
      row.set("links", r.links);
      row.set("latency", r.latency);
      row.set("moves", r.moves);
      topo_json.push_back(std::move(row));
    }
    report.set("topology_sweep", std::move(topo_json));

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "sched_core: cannot write " << json_path << "\n";
        return 1;
      }
      out << report.dump(2) << "\n";
      std::cout << "wrote " << json_path << "\n";
    }
    if (check) {
      std::cout << "sched_core --check: PASS (full path bit-identical to "
                   "reference core on all configurations; topology sweep "
                   "verified, single_bus rows identical to the legacy bus)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "sched_core: FAIL: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
