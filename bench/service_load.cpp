// Service load bench: a mixed-kernel job stream pushed through
// cvb::Service at 1/2/4/8 workers. Reports throughput, queue-wait and
// run-time tail latency (p50/p95/p99), shed and deadline-miss counts,
// and checks the service's saturation contract: every submitted job
// resolves with a typed outcome (ok / shed / deadline_exceeded) — no
// job is ever lost or hung, even when the bounded queue overflows.
#include <future>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "service/service.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

struct JobSpec {
  std::string kernel;
  std::string datapath;
  cvb::BindEffort effort;
};

// The mixed workload: small and large Table 1/2 kernels, fast and
// balanced effort — the shape of a compile-server's request stream.
const std::vector<JobSpec> kMix = {
    {"ARF", "[1,1|1,1]", cvb::BindEffort::kFast},
    {"EWF", "[2,1|1,1]", cvb::BindEffort::kFast},
    {"FFT", "[2,1|2,1]", cvb::BindEffort::kFast},
    {"DCT-DIF", "[2,1|2,1]", cvb::BindEffort::kFast},
    {"DCT-LEE", "[2,2|2,1]", cvb::BindEffort::kBalanced},
    {"DCT-DIT", "[2,1|2,1]", cvb::BindEffort::kFast},
    {"DCT-DIT-2", "[2,1|2,1]", cvb::BindEffort::kFast},
    {"EWF", "[1,1|1,1]", cvb::BindEffort::kBalanced},
};

cvb::BindJob make_job(const JobSpec& spec, int index) {
  cvb::BindJob job;
  job.id = "load-" + std::to_string(index);
  job.dfg = cvb::benchmark_by_name(spec.kernel).dfg;
  job.datapath = cvb::parse_datapath(spec.datapath);
  job.strategy.effort = spec.effort;
  return job;
}

struct RunResult {
  int ok = 0;
  int shed = 0;
  int deadline = 0;
  int other = 0;
  double wall_ms = 0.0;
  double throughput = 0.0;  // completed jobs per second
};

RunResult run_load(int workers, int jobs, std::size_t queue_capacity,
                   double deadline_ms) {
  cvb::ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = queue_capacity;
  options.default_deadline_ms = deadline_ms;
  cvb::Service service(options);

  cvb::Stopwatch watch;
  std::vector<std::future<cvb::BindOutcome>> futures;
  futures.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    futures.push_back(
        service.submit(make_job(kMix[static_cast<std::size_t>(i) % kMix.size()],
                                i)));
  }

  RunResult result;
  for (std::future<cvb::BindOutcome>& future : futures) {
    const cvb::BindOutcome outcome = future.get();  // resolves, or we hang
    switch (outcome.status) {
      case cvb::BindStatus::kOk:
        ++result.ok;
        break;
      case cvb::BindStatus::kShed:
        ++result.shed;
        break;
      case cvb::BindStatus::kDeadlineExceeded:
        ++result.deadline;
        break;
      default:
        ++result.other;
    }
  }
  result.wall_ms = watch.elapsed_ms();
  const int completed = result.ok + result.deadline;
  result.throughput =
      result.wall_ms > 0 ? 1000.0 * completed / result.wall_ms : 0.0;

  // Accounting must balance exactly: typed outcomes only, nothing lost.
  const long long submitted =
      service.metrics().counter("jobs_submitted").value();
  const long long accounted =
      service.metrics().counter("jobs_completed").value() +
      service.metrics().counter("jobs_shed").value() +
      service.metrics().counter("jobs_cancelled").value() +
      service.metrics().counter("jobs_failed").value();
  if (submitted != jobs || accounted != submitted || result.other != 0) {
    throw std::logic_error("service lost or mis-typed a job: submitted=" +
                           std::to_string(submitted) + " accounted=" +
                           std::to_string(accounted) + " other=" +
                           std::to_string(result.other));
  }
  return result;
}

void print_latency_line(cvb::Service& service) {
  const cvb::JsonValue snap = service.metrics_snapshot();
  const cvb::JsonValue* hist = snap.find("service")->find("histograms");
  for (const char* name : {"queue_wait_ms", "run_ms"}) {
    const cvb::JsonValue* h = hist->find(name);
    std::cout << "  " << name << ": p50=" << cvb::format_sig(
                     h->find("p50")->as_number(), 3)
              << "ms p95=" << cvb::format_sig(h->find("p95")->as_number(), 3)
              << "ms p99=" << cvb::format_sig(h->find("p99")->as_number(), 3)
              << "ms max=" << cvb::format_sig(h->find("max")->as_number(), 3)
              << "ms\n";
  }
}

}  // namespace

int main() {
  using cvb::format_sig;

  std::cout << "Service load bench: " << kMix.size()
            << "-kernel mixed job stream through cvb::Service.\n\n";

  // Part 1: worker scaling on an ample queue (nothing sheds; every job
  // must come back ok).
  constexpr int kJobs = 48;
  std::cout << "Worker scaling (" << kJobs << " jobs, queue 256, no "
            << "deadlines):\n";
  cvb::TablePrinter table(
      {"workers", "ok", "shed", "wall ms", "jobs/s", "speedup"});
  double base_throughput = 0.0;
  double speedup_at_4 = 0.0;
  for (const int workers : {1, 2, 4, 8}) {
    const RunResult r = run_load(workers, kJobs, 256, 0.0);
    if (r.ok != kJobs) {
      throw std::logic_error("lost jobs at " + std::to_string(workers) +
                             " workers");
    }
    if (workers == 1) {
      base_throughput = r.throughput;
    }
    const double speedup =
        base_throughput > 0 ? r.throughput / base_throughput : 0.0;
    if (workers == 4) {
      speedup_at_4 = speedup;
    }
    table.add_row({std::to_string(workers), std::to_string(r.ok),
                   std::to_string(r.shed), format_sig(r.wall_ms, 4),
                   format_sig(r.throughput, 4), format_sig(speedup, 3)});
  }
  table.print(std::cout);
  std::cout << "  1 -> 4 worker speedup: " << format_sig(speedup_at_4, 3)
            << "x (acceptance bar: > 1.5x on a multi-core host)\n\n";

  // Part 2: saturation — a tiny queue on one worker. Overflow must shed
  // (typed), and everything still resolves.
  std::cout << "Saturation (96 jobs, 1 worker, queue 4, reject policy):\n";
  const RunResult saturated = run_load(1, 96, 4, 0.0);
  std::cout << "  ok=" << saturated.ok << " shed=" << saturated.shed
            << " lost=0 (enforced), wall=" << format_sig(saturated.wall_ms, 4)
            << " ms\n";
  if (saturated.shed == 0) {
    throw std::logic_error("saturation run shed nothing — queue not stressed");
  }
  std::cout << '\n';

  // Part 3: deadlines — every job gets a tight budget; misses must
  // still return a verifier-clean anytime binding (typed
  // deadline_exceeded), never a hang.
  std::cout << "Deadlines (32 jobs, 2 workers, 25 ms each):\n";
  const RunResult dl = run_load(2, 32, 256, 25.0);
  std::cout << "  ok=" << dl.ok << " deadline_exceeded=" << dl.deadline
            << " shed=" << dl.shed << " (all typed, all with results)\n\n";

  // Part 4: tail latency under steady load, from the service's own
  // histograms.
  std::cout << "Tail latency (4 workers, 48 jobs):\n";
  {
    cvb::ServiceOptions options;
    options.num_workers = 4;
    options.queue_capacity = 256;
    cvb::Service service(options);
    std::vector<std::future<cvb::BindOutcome>> futures;
    for (int i = 0; i < 48; ++i) {
      futures.push_back(service.submit(
          make_job(kMix[static_cast<std::size_t>(i) % kMix.size()], i)));
    }
    for (std::future<cvb::BindOutcome>& future : futures) {
      (void)future.get();
    }
    print_latency_line(service);
    const cvb::EvalStats stats = service.engine().stats();
    std::cout << "  shared-engine cache: " << stats.cache_hits << "/"
              << stats.candidates << " hits\n";
  }

  std::cout << "\nAll outcomes typed; zero lost or hung jobs.\n";
  return 0;
}
