// Reproduces Table 2 of the paper: the FFT benchmark on the 5-cluster
// datapath [2,2|2,1|2,2|3,1|1,1], sweeping the number of buses N_B in
// {1, 2} and the data-transfer latency lat(move) in {1, 2} — the
// generality check of the algorithm's handling of interconnect
// parameters.
#include <iostream>

#include "harness.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  using cvb::bench::run_experiment;
  using cvb::bench::table_cells;

  if (!csv) {
    std::cout << "Table 2 reproduction: FFT on [2,2|2,1|2,2|3,1|1,1]\n"
              << "sweeping N_B (buses) and lat(move)\n\n";
  }

  const cvb::Dfg fft = cvb::benchmark_by_name("FFT").dfg;

  auto headers = cvb::bench::table_headers();
  headers.front() = "N_B, lat(move)";
  cvb::TablePrinter table(headers);

  // The paper's row order: (1,1), (2,1), (1,2), (2,2).
  const int sweep[4][2] = {{1, 1}, {2, 1}, {1, 2}, {2, 2}};
  for (const auto& [buses, move_lat] : sweep) {
    const cvb::Datapath dp =
        cvb::parse_datapath("[2,2|2,1|2,2|3,1|1,1]", buses, move_lat);
    table.add_row(table_cells(
        "N_B=" + std::to_string(buses) + " lat(move)=" +
            std::to_string(move_lat),
        run_experiment(fft, dp)));
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
