// Portfolio-race benchmark: runs every single strategy of the default
// racing set alone, then the full portfolio, on a grid of paper
// kernels × datapaths, and reports final cost, wall time, and the
// portfolio's per-strategy attribution (time-to-best, incumbent
// exchanges, restarts, cross-strategy cache reuse).
//
// The quality claim it demonstrates: the portfolio's final
// (latency, moves) is never worse than the best single strategy's —
// round 0 of the race runs each member bit-identically to its direct
// path, so the racing result dominates by construction — while the
// attribution shows *which* member got there and when.
//
// --check (CI chaos job): exits non-zero unless on every config
//   1. the portfolio's cost equals the best-known cost of the grid
//      (no single strategy beats the race),
//   2. a one-member portfolio reproduces the direct driver's binding
//      byte-for-byte, and
//   3. the race is deterministic across race_threads values.
#include <iostream>
#include <string>
#include <vector>

#include "bind/driver.hpp"
#include "bind/portfolio.hpp"
#include "bind/strategy.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"
#include "support/strings.hpp"

namespace {

struct Config {
  const char* kernel;
  const char* datapath;
};

constexpr Config kConfigs[] = {
    {"EWF", "[1,1|1,1]"},
    {"ARF", "[2,1|1,1]"},
    {"FFT", "[1,1|1,1]"},
    {"DCT-DIF", "[2,1|1,1]"},
};

struct Cost {
  int latency = -1;
  int moves = -1;
};

bool better(const Cost& a, const Cost& b) {
  return a.latency != b.latency ? a.latency < b.latency : a.moves < b.moves;
}

int fail(const std::string& message) {
  std::cerr << "portfolio_race: FAIL: " << message << '\n';
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    } else {
      std::cerr << "usage: portfolio_race [--check]\n";
      return 1;
    }
  }

  using namespace cvb;
  const std::vector<StrategySpec> set = default_portfolio(BindEffort::kBalanced);

  bool ok = true;
  for (const Config& config : kConfigs) {
    const Dfg& dfg = benchmark_by_name(config.kernel).dfg;
    const Datapath dp = parse_datapath(config.datapath);
    std::cout << config.kernel << " on " << config.datapath << ":\n";

    // Each member alone (a fresh private engine each: no cache gifts).
    Cost best_single;
    double best_single_ms = 0.0;
    std::string best_single_name;
    for (const StrategySpec& spec : set) {
      PortfolioOptions solo;
      solo.strategies = {spec};
      const PortfolioOutcome outcome = run_portfolio(dfg, dp, solo);
      const Cost cost{outcome.best.schedule.latency,
                      outcome.best.schedule.num_moves};
      std::cout << "  " << spec.name() << " alone: L=" << cost.latency
                << " M=" << cost.moves << ", "
                << format_sig(outcome.stats.ms, 3) << " ms\n";
      if (best_single.latency < 0 || better(cost, best_single)) {
        best_single = cost;
        best_single_ms = outcome.stats.ms;
        best_single_name = spec.name();
      }

      if (check) {
        // Invariant 2: one-member portfolio ≡ the direct driver path.
        if (spec.kind == StrategyKind::kBIter) {
          const BindResult direct =
              bind_full(dfg, dp, driver_params_for(spec.effort));
          if (direct.binding != outcome.best.binding) {
            return fail(std::string(config.kernel) +
                        ": one-member portfolio diverged from bind_full");
          }
        }
      }
    }

    // The race.
    PortfolioOptions opts;
    opts.strategies = set;
    const PortfolioOutcome race = run_portfolio(dfg, dp, opts);
    const Cost race_cost{race.best.schedule.latency,
                         race.best.schedule.num_moves};
    const StrategyAttribution& winner =
        race.stats.strategies[static_cast<std::size_t>(race.stats.winner)];
    std::cout << "  portfolio: L=" << race_cost.latency
              << " M=" << race_cost.moves << ", "
              << format_sig(race.stats.ms, 3) << " ms, winner "
              << winner.spec.name() << " (best at "
              << format_sig(winner.time_to_best_ms, 3) << " ms vs "
              << format_sig(best_single_ms, 3) << " ms for "
              << best_single_name << " alone), " << race.stats.exchanges
              << " exchanges over " << race.stats.rounds << " rounds\n";
    for (const StrategyAttribution& sa : race.stats.strategies) {
      std::cout << "    " << sa.spec.name() << ": ";
      if (sa.dropped) {
        std::cout << "dropped (" << sa.error << ")\n";
        continue;
      }
      std::cout << "L=" << sa.latency << " M=" << sa.moves << ", "
                << sa.evals << " evals (" << sa.cache_hits << " cached), "
                << sa.improvements << " improvements, " << sa.restarts
                << " restarts, best at "
                << format_sig(sa.time_to_best_ms, 3) << " ms\n";
    }

    if (const std::string err =
            verify_schedule(race.best.bound, dp, race.best.schedule);
        !err.empty()) {
      return fail(std::string(config.kernel) + ": verifier: " + err);
    }
    if (check) {
      // Invariant 1: no single strategy beats the race.
      if (better(best_single, race_cost)) {
        ok = false;
        std::cerr << "portfolio_race: FAIL: " << config.kernel << " "
                  << config.datapath << ": " << best_single_name
                  << " alone (L=" << best_single.latency
                  << ",M=" << best_single.moves << ") beat the portfolio (L="
                  << race_cost.latency << ",M=" << race_cost.moves << ")\n";
      }
      // Invariant 3: determinism for any race_threads value.
      PortfolioOptions serial = opts;
      serial.policy.race_threads = 1;
      const PortfolioOutcome replay = run_portfolio(dfg, dp, serial);
      if (replay.best.binding != race.best.binding ||
          replay.stats.winner != race.stats.winner) {
        return fail(std::string(config.kernel) +
                    ": race_threads=1 replay diverged from the race");
      }
    }
  }

  if (check) {
    if (!ok) {
      return 1;
    }
    std::cout << "portfolio_race: PASS\n";
  }
  return 0;
}
