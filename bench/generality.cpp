// Generality bench: the paper's algorithms on kernels *outside* its
// evaluation suite — dense/shallow (radix-4 FFT), embarrassingly
// parallel (unrolled matrix multiply), strictly serial (Horner), and
// 2-D (row-column transform) — against the PCC baseline. Checks that
// the B-INIT/B-ITER advantage is a property of the algorithm, not of
// the seven paper benchmarks.
#include <iostream>
#include <vector>

#include "bind/driver.hpp"
#include "bind/lower_bounds.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "support/table.hpp"

namespace {

struct NamedKernel {
  std::string name;
  cvb::Dfg dfg;
};

}  // namespace

int main() {
  std::cout << "Generality: extended kernels, L/M per algorithm "
            << "(N_B=2, lat(move)=1)\n\n";

  std::vector<NamedKernel> kernels;
  kernels.push_back({"matmul 3x3 (63 ops)", cvb::make_matmul(3)});
  kernels.push_back({"matmul 4x4 (112 ops)", cvb::make_matmul(4)});
  kernels.push_back({"horner deg-12 (24 ops)", cvb::make_horner(12)});
  kernels.push_back({"fft radix-4 (34 ops)", cvb::make_fft_radix4()});
  kernels.push_back({"2-D transform (16 ops)", cvb::make_dct2d_rowcol()});

  const std::vector<std::string> datapaths = {"[1,1|1,1]", "[2,1|2,1]",
                                              "[1,1|1,1|1,1]"};
  cvb::TablePrinter table({"kernel", "datapath", "LB", "PCC L/M",
                           "B-INIT L/M", "B-ITER L/M"});
  int pcc_total = 0;
  int iter_total = 0;
  for (const NamedKernel& kernel : kernels) {
    for (const std::string& spec : datapaths) {
      const cvb::Datapath dp = cvb::parse_datapath(spec);
      const cvb::LatencyLowerBound lb =
          cvb::latency_lower_bound(kernel.dfg, dp);
      const cvb::BindResult pcc = cvb::pcc_binding(kernel.dfg, dp);
      cvb::DriverParams init_only;
      init_only.run_iterative = false;
      const cvb::BindResult init =
          cvb::bind_initial_best(kernel.dfg, dp, init_only);
      const cvb::BindResult iter = cvb::bind_full(kernel.dfg, dp);
      if (const std::string err =
              cvb::verify_schedule(iter.bound, dp, iter.schedule);
          !err.empty()) {
        throw std::logic_error("illegal schedule: " + err);
      }
      pcc_total += pcc.schedule.latency;
      iter_total += iter.schedule.latency;
      const auto lm = [](const cvb::BindResult& r) {
        return std::to_string(r.schedule.latency) + "/" +
               std::to_string(r.schedule.num_moves);
      };
      table.add_row({kernel.name, spec, std::to_string(lb.combined),
                     lm(pcc), lm(init), lm(iter)});
    }
  }
  table.add_row({"TOTAL L", "", "", std::to_string(pcc_total), "",
                 std::to_string(iter_total)});
  table.print(std::cout);
  std::cout << "\nExpected: B-ITER <= PCC overall; Horner rows show every "
               "algorithm pinned at the\ndependence bound (nothing to "
               "cluster); matmul rows show near-LB scaling.\n";
  return 0;
}
