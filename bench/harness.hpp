// Shared helper for the table-reproduction benches: runs the paper's
// three algorithms (PCC baseline, B-INIT, B-ITER) on one
// (DFG, datapath) experiment and formats Table 1/2-style rows.
#pragma once

#include <string>
#include <vector>

#include "bind/driver.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "support/strings.hpp"

namespace cvb::bench {

/// Results of one experiment row (one datapath configuration).
struct ExperimentRow {
  // PCC baseline.
  int pcc_latency = 0;
  int pcc_moves = 0;
  double pcc_ms = 0.0;
  // B-INIT (initial binding phase with the driver's parameter sweep).
  int init_latency = 0;
  int init_moves = 0;
  double init_ms = 0.0;
  // B-ITER (full algorithm).
  int iter_latency = 0;
  int iter_moves = 0;
  double iter_ms = 0.0;
};

/// Latency improvement percentage over PCC, the paper's Delta-L% column
/// (positive = ours faster).
[[nodiscard]] inline double improvement_pct(int pcc_latency, int latency) {
  if (pcc_latency == 0) {
    return 0.0;
  }
  return 100.0 * (pcc_latency - latency) / pcc_latency;
}

/// Runs PCC, B-INIT and B-ITER on one experiment; every schedule is
/// re-verified, so a scheduler bug aborts the bench instead of
/// producing bogus tables.
[[nodiscard]] inline ExperimentRow run_experiment(const Dfg& dfg,
                                                  const Datapath& dp) {
  ExperimentRow row;

  PccInfo pcc_info;
  const BindResult pcc = pcc_binding(dfg, dp, {}, &pcc_info);
  if (const std::string err = verify_schedule(pcc.bound, dp, pcc.schedule);
      !err.empty()) {
    throw std::logic_error("PCC produced an illegal schedule: " + err);
  }
  row.pcc_latency = pcc.schedule.latency;
  row.pcc_moves = pcc.schedule.num_moves;
  row.pcc_ms = pcc_info.ms;

  DriverParams init_only;
  init_only.run_iterative = false;
  const BindResult init = bind_initial_best(dfg, dp, init_only);
  if (const std::string err = verify_schedule(init.bound, dp, init.schedule);
      !err.empty()) {
    throw std::logic_error("B-INIT produced an illegal schedule: " + err);
  }
  row.init_latency = init.schedule.latency;
  row.init_moves = init.schedule.num_moves;
  row.init_ms = init.init_ms;

  const BindResult iter = bind_full(dfg, dp);
  if (const std::string err = verify_schedule(iter.bound, dp, iter.schedule);
      !err.empty()) {
    throw std::logic_error("B-ITER produced an illegal schedule: " + err);
  }
  row.iter_latency = iter.schedule.latency;
  row.iter_moves = iter.schedule.num_moves;
  row.iter_ms = iter.init_ms + iter.iter_ms;

  return row;
}

/// "L/M" cell, the paper's result format.
[[nodiscard]] inline std::string lm(int latency, int moves) {
  return std::to_string(latency) + "/" + std::to_string(moves);
}

/// Delta-L% cell with one decimal at most (paper prints "6.7", "10").
[[nodiscard]] inline std::string pct(double value) {
  return format_sig(value, 2);
}

/// Milliseconds cell with two significant digits.
[[nodiscard]] inline std::string msec(double value) {
  return format_sig(value, 2);
}

/// Standard Table-1/2 cells for one experiment row, starting with
/// `head` (the datapath or parameter description).
[[nodiscard]] inline std::vector<std::string> table_cells(
    const std::string& head, const ExperimentRow& row) {
  return {head,
          lm(row.pcc_latency, row.pcc_moves),
          msec(row.pcc_ms),
          lm(row.init_latency, row.init_moves),
          pct(improvement_pct(row.pcc_latency, row.init_latency)),
          msec(row.init_ms),
          lm(row.iter_latency, row.iter_moves),
          pct(improvement_pct(row.pcc_latency, row.iter_latency)),
          msec(row.iter_ms)};
}

/// Header matching table_cells().
[[nodiscard]] inline std::vector<std::string> table_headers() {
  return {"DATAPATH",     "PCC L/M",    "PCC ms", "B-INIT L/M",
          "dL% vs PCC",   "B-INIT ms",  "B-ITER L/M",
          "dL% vs PCC ",  "B-ITER ms"};
}

}  // namespace cvb::bench
