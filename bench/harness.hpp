// Shared helper for the table-reproduction benches: runs the paper's
// three algorithms (PCC baseline, B-INIT, B-ITER) on one
// (DFG, datapath) experiment and formats Table 1/2-style rows.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bind/driver.hpp"
#include "graph/dfg.hpp"
#include "machine/datapath.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "support/strings.hpp"

namespace cvb::bench {

/// Per-sample latency collector for the micro benches. Uses
/// steady_clock exclusively (never the wall clock, which can step
/// backwards under NTP and once produced negative samples here) and
/// derives percentiles from the sorted sample vector rather than any
/// streaming approximation, so p50/p99 are exact for the collected run.
class LatencySampler {
 public:
  using Clock = std::chrono::steady_clock;

  void reserve(std::size_t samples) { ns_.reserve(samples); }

  /// Times one call and records it as a single sample.
  template <typename Fn>
  void sample(Fn&& fn) {
    const Clock::time_point begin = Clock::now();
    fn();
    ns_.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             begin)
            .count()));
  }

  void add_ns(std::uint64_t ns) { ns_.push_back(ns); }
  [[nodiscard]] std::size_t count() const { return ns_.size(); }
  [[nodiscard]] std::uint64_t ns(std::size_t i) const { return ns_[i]; }

  /// Exact percentile (0..100) via the nearest-rank method on a sorted
  /// copy of the samples. Throws if no samples were collected.
  [[nodiscard]] double percentile_ns(double pct) const {
    if (ns_.empty()) {
      throw std::logic_error("LatencySampler: no samples collected");
    }
    std::vector<std::uint64_t> sorted = ns_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<double>(sorted[lo]) +
           frac * (static_cast<double>(sorted[hi]) -
                   static_cast<double>(sorted[lo]));
  }

  [[nodiscard]] double p50_ns() const { return percentile_ns(50.0); }
  [[nodiscard]] double p99_ns() const { return percentile_ns(99.0); }

  [[nodiscard]] double mean_ns() const {
    if (ns_.empty()) {
      throw std::logic_error("LatencySampler: no samples collected");
    }
    double total = 0.0;
    for (const std::uint64_t sample : ns_) {
      total += static_cast<double>(sample);
    }
    return total / static_cast<double>(ns_.size());
  }

  /// Throughput implied by the mean per-sample latency.
  [[nodiscard]] double per_sec() const {
    const double mean = mean_ns();
    return mean > 0.0 ? 1e9 / mean : 0.0;
  }

 private:
  std::vector<std::uint64_t> ns_;
};

/// Geometric mean of positive ratios (aggregate speedup across
/// configurations — robust to one config dominating).
[[nodiscard]] inline double geomean(const std::vector<double>& ratios) {
  if (ratios.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (const double r : ratios) {
    if (r <= 0.0) {
      throw std::invalid_argument("geomean: non-positive ratio");
    }
    log_sum += std::log(r);
  }
  return std::exp(log_sum / static_cast<double>(ratios.size()));
}

/// Results of one experiment row (one datapath configuration).
struct ExperimentRow {
  // PCC baseline.
  int pcc_latency = 0;
  int pcc_moves = 0;
  double pcc_ms = 0.0;
  // B-INIT (initial binding phase with the driver's parameter sweep).
  int init_latency = 0;
  int init_moves = 0;
  double init_ms = 0.0;
  // B-ITER (full algorithm).
  int iter_latency = 0;
  int iter_moves = 0;
  double iter_ms = 0.0;
};

/// Latency improvement percentage over PCC, the paper's Delta-L% column
/// (positive = ours faster).
[[nodiscard]] inline double improvement_pct(int pcc_latency, int latency) {
  if (pcc_latency == 0) {
    return 0.0;
  }
  return 100.0 * (pcc_latency - latency) / pcc_latency;
}

/// Runs PCC, B-INIT and B-ITER on one experiment; every schedule is
/// re-verified, so a scheduler bug aborts the bench instead of
/// producing bogus tables.
[[nodiscard]] inline ExperimentRow run_experiment(const Dfg& dfg,
                                                  const Datapath& dp) {
  ExperimentRow row;

  PccInfo pcc_info;
  const BindResult pcc = pcc_binding(dfg, dp, {}, &pcc_info);
  if (const std::string err = verify_schedule(pcc.bound, dp, pcc.schedule);
      !err.empty()) {
    throw std::logic_error("PCC produced an illegal schedule: " + err);
  }
  row.pcc_latency = pcc.schedule.latency;
  row.pcc_moves = pcc.schedule.num_moves;
  row.pcc_ms = pcc_info.ms;

  DriverParams init_only;
  init_only.run_iterative = false;
  const BindResult init = bind_initial_best(dfg, dp, init_only);
  if (const std::string err = verify_schedule(init.bound, dp, init.schedule);
      !err.empty()) {
    throw std::logic_error("B-INIT produced an illegal schedule: " + err);
  }
  row.init_latency = init.schedule.latency;
  row.init_moves = init.schedule.num_moves;
  row.init_ms = init.init_ms;

  const BindResult iter = bind_full(dfg, dp);
  if (const std::string err = verify_schedule(iter.bound, dp, iter.schedule);
      !err.empty()) {
    throw std::logic_error("B-ITER produced an illegal schedule: " + err);
  }
  row.iter_latency = iter.schedule.latency;
  row.iter_moves = iter.schedule.num_moves;
  row.iter_ms = iter.init_ms + iter.iter_ms;

  return row;
}

/// "L/M" cell, the paper's result format.
[[nodiscard]] inline std::string lm(int latency, int moves) {
  return std::to_string(latency) + "/" + std::to_string(moves);
}

/// Delta-L% cell with one decimal at most (paper prints "6.7", "10").
[[nodiscard]] inline std::string pct(double value) {
  return format_sig(value, 2);
}

/// Milliseconds cell with two significant digits.
[[nodiscard]] inline std::string msec(double value) {
  return format_sig(value, 2);
}

/// Standard Table-1/2 cells for one experiment row, starting with
/// `head` (the datapath or parameter description).
[[nodiscard]] inline std::vector<std::string> table_cells(
    const std::string& head, const ExperimentRow& row) {
  return {head,
          lm(row.pcc_latency, row.pcc_moves),
          msec(row.pcc_ms),
          lm(row.init_latency, row.init_moves),
          pct(improvement_pct(row.pcc_latency, row.init_latency)),
          msec(row.init_ms),
          lm(row.iter_latency, row.iter_moves),
          pct(improvement_pct(row.pcc_latency, row.iter_latency)),
          msec(row.iter_ms)};
}

/// Header matching table_cells().
[[nodiscard]] inline std::vector<std::string> table_headers() {
  return {"DATAPATH",     "PCC L/M",    "PCC ms", "B-INIT L/M",
          "dL% vs PCC",   "B-INIT ms",  "B-ITER L/M",
          "dL% vs PCC ",  "B-ITER ms"};
}

}  // namespace cvb::bench
