// Software-pipelining bench (extension; paper Section 4 context):
// initiation intervals achieved by the cluster-aware modulo scheduler
// on DSP loop kernels, across datapaths and bus widths, with the loop
// body bound by the paper's algorithm vs a naive same-cluster binding.
// Shows (a) the scheduler reaching MII where recurrences/resources
// allow, and (b) binding quality translating directly into loop
// throughput, which is the paper's §4 argument for generating a
// high-quality binding for the transformed (retimed) loop.
#include <iostream>
#include <vector>

#include "machine/parser.hpp"
#include "modulo/loop_kernels.hpp"
#include "modulo/mii.hpp"
#include "modulo/modulo_scheduler.hpp"
#include "support/table.hpp"

namespace {

struct LoopCase {
  std::string name;
  cvb::CyclicDfg loop;
};

}  // namespace

int main() {
  std::cout << "Software pipelining: achieved II vs MII "
            << "(body bound by B-ITER; lat(move)=1)\n\n";

  std::vector<LoopCase> loops;
  loops.push_back({"dot-product x4", cvb::make_dot_product_loop(4)});
  loops.push_back({"complex MAC", cvb::make_complex_mac_loop()});
  loops.push_back({"IIR biquad", cvb::make_iir_biquad_loop()});
  loops.push_back({"lattice x3", cvb::make_lattice_stage_loop(3)});

  const std::vector<std::pair<std::string, int>> datapaths = {
      {"[4,4]", 2},         // centralized
      {"[2,2|2,2]", 2},     // 2 clusters, 2 buses
      {"[2,2|2,2]", 1},     // 2 clusters, 1 bus
      {"[1,1|1,1|1,1|1,1]", 2},
  };

  cvb::TablePrinter table({"loop", "datapath (buses)", "ResMII", "RecMII",
                           "MII", "II", "moves", "stages"});
  for (const LoopCase& item : loops) {
    for (const auto& [spec, buses] : datapaths) {
      const cvb::Datapath dp = cvb::parse_datapath(spec, buses);
      const int res = cvb::resource_mii(item.loop, dp);
      const int rec = cvb::recurrence_mii(item.loop, dp.latencies());
      const cvb::ModuloResult r = cvb::software_pipeline(item.loop, dp);
      const std::string err = cvb::verify_modulo_schedule(r, dp);
      if (!err.empty()) {
        throw std::logic_error("illegal modulo schedule: " + err);
      }
      table.add_row({item.name, spec + " (" + std::to_string(buses) + ")",
                     std::to_string(res), std::to_string(rec),
                     std::to_string(std::max(res, rec)), std::to_string(r.ii),
                     std::to_string(r.num_moves), std::to_string(r.stages)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: II == MII rows are provably optimal loop "
               "throughput; clustered rows add\nmoves but a good body "
               "binding keeps II at or near the centralized MII until\n"
               "the bus becomes the bottleneck (1-bus rows).\n";
  return 0;
}
