// Optimality assessment: how close the paper's algorithm gets to
// binding-independent latency lower bounds on the full benchmark suite,
// and to the enumerated optimum on small kernels (the paper notes "in
// some cases we were able to verify that the generated solutions were
// optimal").
#include <iostream>
#include <vector>

#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "bind/exhaustive.hpp"
#include "bind/lower_bounds.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/bb_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "Optimality gap vs binding-independent lower bounds\n"
            << "(gap 0 = provably optimal at the binding level)\n\n";

  const std::vector<std::string> datapaths = {"[1,1|1,1]", "[2,1|2,1]",
                                              "[2,1|1,1]", "[1,1|1,1|1,1]"};
  cvb::TablePrinter table(
      {"kernel", "datapath", "dep LB", "res LB", "B-ITER L", "gap"});
  int rows_tight = 0;
  int rows_total = 0;
  for (const cvb::BenchmarkKernel& kernel : cvb::benchmark_suite()) {
    for (const std::string& spec : datapaths) {
      const cvb::Datapath dp = cvb::parse_datapath(spec);
      const cvb::LatencyLowerBound lb =
          cvb::latency_lower_bound(kernel.dfg, dp);
      const cvb::BindResult r = cvb::bind_full(kernel.dfg, dp);
      const int gap = r.schedule.latency - lb.combined;
      rows_tight += (gap == 0) ? 1 : 0;
      ++rows_total;
      table.add_row({kernel.name, spec, std::to_string(lb.dependence),
                     std::to_string(lb.resource),
                     std::to_string(r.schedule.latency),
                     std::to_string(gap)});
    }
  }
  table.print(std::cout);
  std::cout << "\nProvably optimal rows: " << rows_tight << "/" << rows_total
            << " (a nonzero gap is not necessarily suboptimal: the bound\n"
               "ignores transfer serialization, which can be unavoidable)\n\n";

  std::cout << "Exhaustive cross-check on small kernels ([1,1|1,1]):\n\n";
  cvb::TablePrinter small({"kernel", "optimal L/M", "B-ITER L/M", "match"});
  for (const int taps : {4, 6, 8, 10}) {
    const cvb::Dfg g = cvb::make_fir(taps);
    const cvb::Datapath dp = cvb::parse_datapath("[1,1|1,1]");
    const cvb::BindResult optimal = cvb::exhaustive_binding(g, dp);
    const cvb::BindResult ours = cvb::bind_full(g, dp);
    small.add_row({"FIR-" + std::to_string(taps),
                   std::to_string(optimal.schedule.latency) + "/" +
                       std::to_string(optimal.schedule.num_moves),
                   std::to_string(ours.schedule.latency) + "/" +
                       std::to_string(ours.schedule.num_moves),
                   ours.schedule.latency == optimal.schedule.latency
                       ? "yes"
                       : "no"});
  }
  small.print(std::cout);

  // Schedule-level optimality: the list scheduler (used by every
  // algorithm for quality estimation, per the paper) vs the exact
  // branch-and-bound scheduler on random bound graphs.
  std::cout << "\nList-scheduler optimality on random 12-op bound graphs "
               "([2,1|1,1], random bindings):\n";
  cvb::Rng rng(20260705);
  int optimal = 0;
  int total_gap = 0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    cvb::RandomDagParams params;
    params.num_ops = 12;
    params.num_layers = 3 + trial % 4;
    const cvb::Dfg g = cvb::make_random_layered(params, rng);
    const cvb::Datapath dp = cvb::parse_datapath("[2,1|1,1]");
    cvb::Binding binding;
    for (cvb::OpId v = 0; v < g.num_ops(); ++v) {
      const auto ts = dp.target_set(g.type(v));
      binding.push_back(ts[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(ts.size()) - 1))]);
    }
    const cvb::BoundDfg bound = cvb::build_bound_dfg(g, binding, dp);
    const int greedy = cvb::list_schedule(bound, dp).latency;
    const int exact = cvb::optimal_schedule(bound, dp).latency;
    optimal += (greedy == exact) ? 1 : 0;
    total_gap += greedy - exact;
  }
  std::cout << "  optimal on " << optimal << "/" << trials
            << " random instances, total gap " << total_gap << " cycles\n";
  return 0;
}
