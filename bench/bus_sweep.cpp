// Bus-sensitivity sweep (Table 2 generalized to the whole suite):
// schedule latency of the full algorithm as a function of the number of
// buses N_B and the transfer latency lat(move), on a fixed 3-cluster
// datapath. Emits one series per kernel — the data behind a
// "latency vs interconnect capacity" figure.
#include <iostream>
#include <vector>

#include "bind/driver.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "Bus sensitivity on [2,1|2,1|1,1]: B-ITER latency per "
            << "(N_B, lat(move))\n\n";

  const std::vector<std::pair<int, int>> sweep = {
      {1, 1}, {2, 1}, {4, 1}, {1, 2}, {2, 2}, {4, 2}};

  std::vector<std::string> headers = {"kernel"};
  for (const auto& [buses, mlat] : sweep) {
    headers.push_back("NB=" + std::to_string(buses) +
                      ",mv=" + std::to_string(mlat));
  }
  cvb::TablePrinter table(headers);

  for (const cvb::BenchmarkKernel& kernel : cvb::benchmark_suite()) {
    std::vector<std::string> row = {kernel.name};
    int prev_same_mlat = -1;
    bool monotone = true;
    for (const auto& [buses, mlat] : sweep) {
      const cvb::Datapath dp =
          cvb::parse_datapath("[2,1|2,1|1,1]", buses, mlat);
      const cvb::BindResult r = cvb::bind_full(kernel.dfg, dp);
      if (const std::string err =
              cvb::verify_schedule(r.bound, dp, r.schedule);
          !err.empty()) {
        throw std::logic_error("illegal schedule: " + err);
      }
      // More buses at equal lat(move) must never hurt.
      if (mlat == 1) {
        if (prev_same_mlat >= 0 && r.schedule.latency > prev_same_mlat) {
          monotone = false;
        }
        prev_same_mlat = r.schedule.latency;
      }
      row.push_back(std::to_string(r.schedule.latency) + "/" +
                    std::to_string(r.schedule.num_moves));
    }
    if (!monotone) {
      row.back() += " (!)";
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nEach row is a latency-vs-interconnect series: latency "
               "falls (or holds) as buses\nare added, and rises with "
               "slower transfers — steepest on transfer-heavy kernels.\n";
  return 0;
}
