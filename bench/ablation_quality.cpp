// Ablation C (paper Section 3.2, Figure 6): the iterative improver's
// quality function. The paper argues the tail-thinning vector
// Q_U = (L, U_0, U_1, ...) escapes local minima that the naive
// Q_M = (L, N_MV) cost falls into, especially on many-output DFGs
// (DCTs and unrolled kernels). This bench runs B-ITER with each quality
// regime and reports final latencies.
#include <iostream>
#include <vector>

#include "bind/driver.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/table.hpp"

namespace {

const std::vector<std::string> kDatapaths = {
    "[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]", "[1,1|1,1|1,1|1,1]"};

struct Variant {
  std::string name;
  bool use_qu;
  bool use_qm;
};

}  // namespace

int main() {
  std::cout << "Ablation C: B-ITER quality function (Q_U vs Q_M)\n"
            << "(totals across the paper suite x " << kDatapaths.size()
            << " datapaths; lower is better)\n\n";

  const std::vector<Variant> variants = {
      {"Q_U then Q_M (paper)", true, true},
      {"Q_U only", true, false},
      {"Q_M only (naive)", false, true},
  };

  cvb::TablePrinter table(
      {"quality function", "total L", "total M", "candidates evaluated"});
  for (const Variant& variant : variants) {
    int total_l = 0;
    int total_m = 0;
    long candidates = 0;
    for (const cvb::BenchmarkKernel& kernel : cvb::benchmark_suite()) {
      for (const std::string& spec : kDatapaths) {
        cvb::DriverParams params;
        params.iter.use_qu_phase = variant.use_qu;
        params.iter.use_qm_phase = variant.use_qm;
        const cvb::BindResult r =
            cvb::bind_full(kernel.dfg, cvb::parse_datapath(spec), params);
        total_l += r.schedule.latency;
        total_m += r.schedule.num_moves;
        candidates += r.iter_stats.candidates_evaluated;
      }
    }
    table.add_row({variant.name, std::to_string(total_l),
                   std::to_string(total_m), std::to_string(candidates)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: Q_U-based variants reach lower total "
            << "latency than Q_M-only;\nthe Q_M phase then trims moves "
            << "without latency cost.\n";
  return 0;
}
