// Non-unit-latency experiment: the paper's tables fix every operation
// at one cycle, but its datapath model (Section 2) is general —
// latencies per operation type, data introduction intervals per
// resource. This bench exercises that generality: the benchmark suite
// on realistic DSP timing (2-cycle pipelined multipliers, and a
// 2-cycle *unpipelined* variant), comparing B-INIT/B-ITER against PCC
// under each regime.
#include <iostream>
#include <vector>

#include "bind/driver.hpp"
#include "graph/analysis.hpp"
#include "kernels/kernels.hpp"
#include "machine/datapath.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

cvb::Datapath make_dp(int mul_latency, bool pipelined) {
  cvb::LatencyTable lat = cvb::unit_latencies();
  lat[static_cast<std::size_t>(cvb::OpType::kMul)] = mul_latency;
  lat[static_cast<std::size_t>(cvb::OpType::kMac)] = mul_latency;
  std::array<int, cvb::kNumFuTypes> dii{};
  dii.fill(1);
  if (!pipelined) {
    dii[static_cast<std::size_t>(cvb::FuType::kMult)] = mul_latency;
  }
  return cvb::Datapath(
      {cvb::Cluster{{2, 1}}, cvb::Cluster{{2, 1}}}, 2, lat, dii);
}

std::string lm(const cvb::BindResult& r) {
  return std::to_string(r.schedule.latency) + "/" +
         std::to_string(r.schedule.num_moves);
}

}  // namespace

int main() {
  std::cout << "Non-unit latency generality: suite on [2,1|2,1], 2 buses\n"
            << "regimes: unit | mul=2 pipelined | mul=2 unpipelined "
            << "(dii=2)\n\n";

  const std::vector<std::pair<std::string, cvb::Datapath>> regimes = {
      {"unit", make_dp(1, true)},
      {"mul2-piped", make_dp(2, true)},
      {"mul2-serial", make_dp(2, false)},
  };

  cvb::TablePrinter table(
      {"kernel", "regime", "Lcp", "PCC L/M", "B-ITER L/M", "dL%"});
  for (const cvb::BenchmarkKernel& kernel : cvb::benchmark_suite()) {
    for (const auto& [name, dp] : regimes) {
      const cvb::BindResult pcc = cvb::pcc_binding(kernel.dfg, dp);
      const cvb::BindResult iter = cvb::bind_full(kernel.dfg, dp);
      if (const std::string err =
              cvb::verify_schedule(iter.bound, dp, iter.schedule);
          !err.empty()) {
        throw std::logic_error("illegal schedule: " + err);
      }
      const double delta =
          pcc.schedule.latency == 0
              ? 0.0
              : 100.0 * (pcc.schedule.latency - iter.schedule.latency) /
                    pcc.schedule.latency;
      table.add_row(
          {kernel.name, name,
           std::to_string(
               cvb::critical_path_length(kernel.dfg, dp.latencies())),
           lm(pcc), lm(iter),
           cvb::format_sig(delta, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: B-ITER never loses across regimes; multiplier-"
               "heavy kernels (ARF)\nstretch hardest under the unpipelined "
               "regime, where dii windows dominate.\n";
  return 0;
}
