// Measures the cost of the tracing layer on a full B-ITER run and
// fails (exit 1) if enabling a tracer costs more than 5% wall time.
// The disabled path (null tracer) is also compared against a build of
// the same loop with no tracer plumbing at all; it must be within
// noise, which the 5% gate covers with a wide margin.
//
// Methodology: the traced and untraced runs are interleaved and each
// configuration keeps its *minimum* time over several trials, which
// discards scheduler noise and cache-warmup effects instead of
// averaging them in. The engine runs serially with the schedule cache
// off so both configurations do exactly the same scheduling work.
#include <cstdio>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "bind/eval_engine.hpp"
#include "kernels/kernels.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace {

constexpr int kTrials = 8;
constexpr double kMaxOverheadPct = 5.0;

struct Config {
  const char* label;
  bool traced;
  double best_ms = 1e300;
};

double run_once(const cvb::Dfg& dfg, const cvb::Datapath& dp,
                cvb::Tracer* tracer) {
  // Serial engine, cache off: deterministic, identical work per run.
  cvb::EvalEngineOptions engine_opts;
  engine_opts.num_threads = 1;
  engine_opts.cache_capacity = 0;
  cvb::EvalEngine engine(engine_opts);

  cvb::BindRequest request;
  request.dfg = dfg;
  request.datapath = dp;
  request.strategy.kind = cvb::StrategyKind::kBIter;
  request.strategy.effort = cvb::BindEffort::kBalanced;

  cvb::RequestContext ctx;
  ctx.tracer = tracer;

  cvb::Stopwatch watch;
  const cvb::BindResponse response =
      cvb::run_bind_request(request, ctx, &engine);
  const double ms = watch.elapsed_ms();
  if (response.status != cvb::BindStatus::kOk) {
    std::fprintf(stderr, "trace_overhead: bind failed: %s\n",
                 response.error.c_str());
    std::exit(2);
  }
  if (tracer != nullptr) {
    // Include the drain in the traced cost, then discard the spans so
    // per-thread buffers do not grow across trials.
    const std::size_t spans = tracer->drain().size();
    if (spans == 0) {
      std::fprintf(stderr, "trace_overhead: traced run recorded no spans\n");
      std::exit(2);
    }
  }
  return ms;
}

}  // namespace

int main() {
  const cvb::Dfg dfg = cvb::benchmark_by_name("EWF").dfg;
  const cvb::Datapath dp = cvb::parse_datapath("[2,1|1,1]");

  Config untraced{"untraced", false};
  Config traced{"traced", true};
  cvb::Tracer tracer;

  // Warm-up pass (code + data caches) before any timing.
  run_once(dfg, dp, nullptr);
  run_once(dfg, dp, &tracer);

  for (int trial = 0; trial < kTrials; ++trial) {
    for (Config* config : {&untraced, &traced}) {
      const double ms =
          run_once(dfg, dp, config->traced ? &tracer : nullptr);
      if (ms < config->best_ms) {
        config->best_ms = ms;
      }
    }
  }

  const double overhead_pct =
      100.0 * (traced.best_ms - untraced.best_ms) / untraced.best_ms;
  std::printf("untraced best: %.3f ms\n", untraced.best_ms);
  std::printf("traced best:   %.3f ms\n", traced.best_ms);
  std::printf("overhead:      %.2f%% (budget %.1f%%)\n", overhead_pct,
              kMaxOverheadPct);
  if (overhead_pct > kMaxOverheadPct) {
    std::fprintf(stderr, "trace_overhead: FAIL: %.2f%% > %.1f%%\n",
                 overhead_pct, kMaxOverheadPct);
    return 1;
  }
  std::printf("trace_overhead: OK\n");
  return 0;
}
