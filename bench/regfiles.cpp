// Register-file sizing bench: quantifies the paper's Section-2
// assumption — "clustered machines distribute operations, which
// generally decreases register demand on each local register file" —
// across the benchmark suite. For each kernel and datapath, the loop
// body is bound with B-ITER, scheduled, and register-allocated; we
// report the worst per-cluster file size vs the centralized machine's
// single-file requirement, plus the port counts that motivated
// clustering in the first place (Rixner et al.).
#include <iostream>
#include <vector>

#include "bind/driver.hpp"
#include "explore/explore.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/reg_pressure.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "Register-file sizing after binding (B-ITER schedules)\n"
            << "centralized column: one register file holding every value\n\n";

  const std::vector<std::string> datapaths = {"[1,1|1,1]", "[1,1|1,1|1,1]",
                                              "[1,1|1,1|1,1|1,1]"};
  cvb::TablePrinter table({"kernel", "datapath", "centralized regs",
                           "worst cluster regs", "saving", "RF ports/file"});
  int total_central = 0;
  int total_worst = 0;
  for (const cvb::BenchmarkKernel& kernel : cvb::benchmark_suite()) {
    for (const std::string& spec : datapaths) {
      const cvb::Datapath dp = cvb::parse_datapath(spec);
      const cvb::BindResult r = cvb::bind_full(kernel.dfg, dp);
      const cvb::RegAllocation alloc =
          cvb::allocate_registers(r.bound, dp, r.schedule);
      const cvb::RegPressure pressure =
          cvb::compute_reg_pressure(r.bound, dp, r.schedule);
      total_central += pressure.centralized_max_live;
      total_worst += alloc.worst_file();
      const int saving_pct =
          pressure.centralized_max_live == 0
              ? 0
              : 100 * (pressure.centralized_max_live - alloc.worst_file()) /
                    pressure.centralized_max_live;
      table.add_row({kernel.name, spec,
                     std::to_string(pressure.centralized_max_live),
                     std::to_string(alloc.worst_file()),
                     std::to_string(saving_pct) + "%",
                     std::to_string(cvb::max_rf_ports(dp))});
    }
  }
  table.add_row({"TOTAL", "", std::to_string(total_central),
                 std::to_string(total_worst), "", ""});
  table.print(std::cout);
  std::cout << "\nBoth effects compound: clustering shrinks each file AND "
               "caps its port count,\nwhich is quadratically cheaper "
               "(area/energy) than one many-ported file.\n";
  return 0;
}
