// Chaos harness: drives cvb::Service and the text parsers with every
// fault-injection site armed in turn (then all at once), and asserts
// the resilience invariants the service advertises:
//
//  * no lost jobs — every submitted future resolves with a typed
//    outcome, and the metrics accounting balances exactly
//    (submitted == completed + shed + cancelled + failed);
//  * exactly-once fulfilment — each future yields exactly one outcome
//    (a double set_value would throw std::future_error);
//  * every delivered binding re-verifies — any outcome carrying a
//    result is re-scheduled from scratch and checked by the verifier;
//  * the watchdog rescues injected hangs, and repeat-poison job keys
//    quarantine onto the verified kDegraded fallback.
//
// Usage: chaos_load [--jobs N] [--rate R] [--seed S] [--trace-out FILE]
// Runs standalone with no arguments (CI uses the defaults). On a build
// without -DCVB_FAULT_INJECTION=ON it still runs the fault-free
// invariant pass and exits 0 with a note. With --trace-out the whole
// run is traced, and the emitted Chrome trace is parsed back and
// sanity-checked before the harness reports PASS — tracing under
// chaos (and under TSan in CI) is itself an invariant.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bind/driver.hpp"
#include "io/dfg_text.hpp"
#include "kernels/kernels.hpp"
#include "machine/machine_file.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"
#include "service/service.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace {

struct ChaosArgs {
  int jobs = 24;
  double rate = 0.15;
  std::uint64_t seed = 0xc4a05u;
  std::string trace_out;
};

// Armed for the whole run when --trace-out is given; every phase's
// service records into it.
cvb::Tracer* g_tracer = nullptr;

ChaosArgs parse_chaos_args(int argc, char** argv) {
  ChaosArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      args.jobs = cvb::parse_nonnegative_int(value());
    } else if (arg == "--rate") {
      args.rate = std::stod(value());
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::stoull(value()));
    } else if (arg == "--trace-out") {
      args.trace_out = value();
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  return args;
}

struct JobSpec {
  const char* kernel;
  const char* datapath;
};

// Small kernels keep each phase fast; two shapes so the schedule cache
// sees hits and misses under fire.
const std::vector<JobSpec> kMix = {
    {"ARF", "[1,1|1,1]"},
    {"EWF", "[2,1|1,1]"},
    {"ARF", "[2,1|2,1]"},
    {"EWF", "[1,1|1,1]"},
};

cvb::BindJob make_job(int index) {
  const JobSpec& spec = kMix[static_cast<std::size_t>(index) % kMix.size()];
  cvb::BindJob job;
  job.id = "chaos-" + std::to_string(index);
  job.dfg = cvb::benchmark_by_name(spec.kernel).dfg;
  job.datapath = cvb::parse_datapath(spec.datapath);
  // Balanced effort: the fast tier evaluates candidates by load
  // profile and schedules only the winner directly, so it never enters
  // the engine — the eval.* sites would be unreachable.
  job.strategy.effort = cvb::BindEffort::kBalanced;
  return job;
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "chaos_load: FAIL: " << message << '\n';
  std::exit(1);
}

/// Re-schedules the delivered binding from scratch and runs the
/// verifier over it — the bench-side half of the "every delivered
/// binding re-verifies" invariant.
void reverify(const cvb::BindJob& job, const cvb::BindOutcome& outcome) {
  if (!cvb::has_result(outcome.status) || outcome.binding.empty()) {
    return;
  }
  const cvb::BindResult result =
      cvb::evaluate_binding(job.dfg, job.datapath, outcome.binding);
  if (const std::string verr =
          cvb::verify_schedule(result.bound, job.datapath, result.schedule);
      !verr.empty()) {
    fail("job " + outcome.id + " delivered an unverifiable binding: " + verr);
  }
  if (result.schedule.latency != outcome.latency) {
    fail("job " + outcome.id + " reported latency " +
         std::to_string(outcome.latency) + " but re-evaluation gives " +
         std::to_string(result.schedule.latency));
  }
}

/// Submits `jobs` requests, waits for every future, re-verifies every
/// result, and checks the accounting balance. Returns per-status
/// counts via out-params of interest.
struct PhaseResult {
  int ok = 0;
  int degraded = 0;
  int failed = 0;
  int cancelled = 0;
  int shed = 0;
  int other = 0;
};

PhaseResult run_phase(cvb::Service& service, int jobs) {
  std::vector<cvb::BindJob> specs;
  std::vector<std::future<cvb::BindOutcome>> futures;
  specs.reserve(static_cast<std::size_t>(jobs));
  futures.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    specs.push_back(make_job(i));
    futures.push_back(service.submit(specs.back()));
  }
  PhaseResult result;
  for (int i = 0; i < jobs; ++i) {
    const cvb::BindOutcome outcome = futures[static_cast<std::size_t>(i)]
                                         .get();  // resolves, or we hang
    reverify(specs[static_cast<std::size_t>(i)], outcome);
    switch (outcome.status) {
      case cvb::BindStatus::kOk:
        ++result.ok;
        break;
      case cvb::BindStatus::kDegraded:
        ++result.degraded;
        break;
      case cvb::BindStatus::kInternalError:
      case cvb::BindStatus::kInvalidRequest:
        ++result.failed;
        break;
      case cvb::BindStatus::kCancelled:
        ++result.cancelled;
        break;
      case cvb::BindStatus::kShed:
        ++result.shed;
        break;
      default:
        ++result.other;
    }
  }
  return result;
}

void check_accounting(cvb::Service& service, int submitted_expected) {
  const auto counter = [&](const char* name) {
    return service.metrics().counter(name).value();
  };
  const long long submitted = counter("jobs_submitted");
  const long long accounted = counter("jobs_completed") + counter("jobs_shed") +
                              counter("jobs_cancelled") +
                              counter("jobs_failed");
  if (submitted != submitted_expected || accounted != submitted) {
    fail("accounting imbalance: submitted=" + std::to_string(submitted) +
         " (expected " + std::to_string(submitted_expected) +
         ") accounted=" + std::to_string(accounted));
  }
}

/// Round-trips the ARF kernel through the text formats with the parser
/// sites armed: every parse either succeeds or throws the injected
/// fault, and the trigger counter matches the failure count exactly.
void parser_phase(const ChaosArgs& args) {
  cvb::ScopedFaultInjection scoped(args.seed);
  cvb::FaultInjector& injector = cvb::FaultInjector::global();
  cvb::FaultSpec spec;
  spec.rate = args.rate;
  spec.fault_class = cvb::FaultClass::kPoison;
  injector.arm("parse.dfg", spec);
  injector.arm("parse.machine", spec);

  std::ostringstream dfg_text;
  cvb::write_dfg_text(dfg_text, cvb::benchmark_by_name("ARF").dfg, "arf");
  const std::string machine_text = "clusters [2,1|1,1]\nbuses 2\n";

  int failures = 0;
  const int rounds = 2 * std::max(8, args.jobs);
  for (int i = 0; i < rounds; ++i) {
    try {
      std::istringstream in(dfg_text.str());
      (void)cvb::parse_dfg_text(in);
    } catch (const cvb::FaultInjectedError&) {
      ++failures;
    }
    try {
      std::istringstream in(machine_text);
      (void)cvb::parse_machine_file(in);
    } catch (const cvb::FaultInjectedError&) {
      ++failures;
    }
  }
  const long long triggered =
      injector.triggered("parse.dfg") + injector.triggered("parse.machine");
  if (triggered != failures) {
    fail("parser sites triggered " + std::to_string(triggered) +
         " times but " + std::to_string(failures) + " parses failed");
  }
  if (args.rate > 0 && triggered == 0) {
    fail("parser sites never fired at rate " + std::to_string(args.rate));
  }
  std::cout << "  parse.dfg/parse.machine: " << failures << "/" << 2 * rounds
            << " parses injected-failed, all typed\n";
}

/// Arms `site` transient at the configured rate and pushes a job
/// stream through a retrying service: nothing may be lost, and with
/// retries most jobs should still succeed.
void site_phase(const ChaosArgs& args, const std::string& site) {
  cvb::ScopedFaultInjection scoped(args.seed);
  cvb::FaultSpec spec;
  spec.rate = args.rate;
  spec.fault_class = cvb::FaultClass::kTransient;
  cvb::FaultInjector::global().arm(site, spec);

  cvb::ServiceOptions options;
  options.tracer = g_tracer;
  options.num_workers = 2;
  options.queue_capacity = 256;
  options.resilience.max_attempts = 4;
  options.resilience.backoff_base_ms = 0.1;
  options.resilience.backoff_cap_ms = 1.0;
  options.resilience.quarantine_threshold = 0;  // isolate retry behaviour
  cvb::Service service(options);

  const PhaseResult result = run_phase(service, args.jobs);
  check_accounting(service, args.jobs);
  const long long fired = cvb::FaultInjector::global().triggered(site);
  const long long retried =
      service.metrics().counter("jobs_retried").value();
  if (result.other != 0) {
    fail(site + ": unexpected outcome status");
  }
  // Only assert the site actually fired when the expected fire count is
  // comfortably high. Per-admission sites draw once per job, so tiny
  // --jobs runs can legitimately see zero fires at low rates.
  if (args.rate * args.jobs >= 3 && fired == 0) {
    fail(site + " never fired at rate " + std::to_string(args.rate));
  }
  std::cout << "  " << site << ": fired=" << fired << " retried=" << retried
            << " ok=" << result.ok << " failed=" << result.failed << "/"
            << args.jobs << ", zero lost\n";
}

/// All sites at once (half rate each), shed-oldest on a small queue —
/// the everything-is-on-fire run.
void mixed_phase(const ChaosArgs& args) {
  cvb::ScopedFaultInjection scoped(args.seed ^ 0xa11);
  cvb::FaultSpec spec;
  spec.rate = args.rate / 2;
  spec.fault_class = cvb::FaultClass::kTransient;
  for (const std::string& site : cvb::fault_sites()) {
    if (site == "service.hang" || site == "parse.dfg" ||
        site == "parse.machine") {
      continue;  // hangs and parsers get dedicated phases
    }
    cvb::FaultInjector::global().arm(site, spec);
  }

  cvb::ServiceOptions options;
  options.tracer = g_tracer;
  options.num_workers = 2;
  options.queue_capacity = 8;
  options.overflow = cvb::OverflowPolicy::kShedOldest;
  options.resilience.max_attempts = 3;
  options.resilience.backoff_base_ms = 0.1;
  options.resilience.backoff_cap_ms = 1.0;
  cvb::Service service(options);

  const int jobs = 2 * args.jobs;
  const PhaseResult result = run_phase(service, jobs);
  check_accounting(service, jobs);
  if (result.other != 0) {
    fail("mixed phase: unexpected outcome status");
  }
  std::cout << "  all sites @ " << args.rate / 2 << ": ok=" << result.ok
            << " failed=" << result.failed << " shed=" << result.shed
            << " degraded=" << result.degraded << "/" << jobs
            << ", accounting balanced\n";
}

/// Every job hangs (cooperatively) for far longer than the hang
/// budget; the watchdog must fire the tokens and every job must still
/// resolve typed.
void hang_phase(const ChaosArgs& args) {
  cvb::ScopedFaultInjection scoped(args.seed ^ 0x4a49);
  cvb::FaultSpec spec;
  spec.rate = 1.0;
  spec.hang_ms = 500.0;  // versus a 20 ms budget: the watchdog must act
  spec.cooperative = true;
  cvb::FaultInjector::global().arm("service.hang", spec);

  cvb::ServiceOptions options;
  options.tracer = g_tracer;
  options.num_workers = 2;
  options.resilience.max_attempts = 1;
  options.resilience.hang_budget_ms = 20.0;
  options.resilience.watchdog_poll_ms = 2.0;
  cvb::Service service(options);

  const int jobs = std::min(8, args.jobs);
  const PhaseResult result = run_phase(service, jobs);
  check_accounting(service, jobs);
  const long long fired =
      service.metrics().counter("watchdog_fired").value();
  if (fired == 0) {
    fail("watchdog never fired during the hang phase");
  }
  std::cout << "  service.hang: watchdog fired " << fired << "x, cancelled="
            << result.cancelled << " ok=" << result.ok << "/" << jobs
            << ", zero lost\n";
}

/// Repeat-poison job key quarantines onto the verified degraded path;
/// a different key is untouched.
void quarantine_phase(const ChaosArgs& args) {
  cvb::ScopedFaultInjection scoped(args.seed ^ 0x9015);
  cvb::FaultSpec spec;
  spec.rate = 1.0;
  spec.fault_class = cvb::FaultClass::kPoison;
  cvb::FaultInjector::global().arm("eval.task", spec);

  cvb::ServiceOptions options;
  options.tracer = g_tracer;
  options.num_workers = 1;  // sequential: deterministic quarantine order
  options.resilience.max_attempts = 3;
  options.resilience.quarantine_threshold = 2;
  cvb::Service service(options);

  const cvb::BindJob poison = make_job(0);
  for (int i = 0; i < 2; ++i) {
    const cvb::BindOutcome outcome = service.submit(poison).get();
    if (outcome.status != cvb::BindStatus::kInternalError ||
        outcome.fault != cvb::FaultClass::kPoison) {
      fail("poison submission " + std::to_string(i) +
           " was not a typed poison failure");
    }
    if (outcome.attempts != 1) {
      fail("poison fault was retried (attempts=" +
           std::to_string(outcome.attempts) + ")");
    }
  }
  // Third submission: quarantined, degraded, and still verifier-clean
  // even with the injection site armed (the degraded path schedules
  // directly, outside the engine).
  const cvb::BindOutcome degraded = service.submit(poison).get();
  if (degraded.status != cvb::BindStatus::kDegraded) {
    fail("quarantined key did not degrade (status " +
         std::string(cvb::to_string(degraded.status)) + ")");
  }
  reverify(poison, degraded);
  // A different key is unaffected by the quarantine: disarm, then bind.
  cvb::FaultInjector::global().disarm("eval.task");
  const cvb::BindOutcome healthy = service.submit(make_job(1)).get();
  if (healthy.status != cvb::BindStatus::kOk) {
    fail("healthy key was affected by another key's quarantine");
  }
  check_accounting(service, 4);
  const long long quarantined =
      service.metrics().counter("jobs_quarantined").value();
  const long long hits =
      service.metrics().counter("jobs_quarantine_hits").value();
  if (quarantined != 1 || hits != 1) {
    fail("quarantine counters off: quarantined=" +
         std::to_string(quarantined) + " hits=" + std::to_string(hits));
  }
  std::cout << "  quarantine: 2 poison failures -> degraded verified "
               "fallback (L=" << degraded.latency << "), other keys clean\n";
}

/// Exports the run's trace and parses it back: the trace must survive
/// chaos (and TSan in CI) as well-formed JSON with real service spans
/// in it.
void export_trace(const ChaosArgs& args, cvb::Tracer& tracer) {
  if (args.trace_out.empty()) {
    return;
  }
  const std::vector<cvb::TraceSpan> spans = tracer.drain();
  std::ostringstream doc_text;
  cvb::write_chrome_trace(doc_text, spans, tracer.dropped());
  cvb::JsonValue doc;
  try {
    doc = cvb::JsonValue::parse(doc_text.str());
  } catch (const std::exception& e) {
    fail(std::string("exported trace does not parse: ") + e.what());
  }
  const cvb::JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) {
    fail("exported trace has no traceEvents array");
  }
  std::size_t num_events = 0;
  double prev_ts = -1.0;
  bool saw_service_job = false;
  for (const cvb::JsonValue& event : events->as_array()) {
    ++num_events;
    const double ts = event.find("ts")->as_number();
    if (ts < prev_ts) {
      fail("exported trace timestamps are not monotonic");
    }
    prev_ts = ts;
    if (event.find("name")->as_string() == "service.job") {
      saw_service_job = true;
    }
  }
  if (num_events == 0 || !saw_service_job) {
    fail("exported trace is missing service.job spans (" +
         std::to_string(num_events) + " events)");
  }
  std::ofstream file(args.trace_out);
  file << doc_text.str();
  if (!file.good()) {
    fail("cannot write '" + args.trace_out + "'");
  }
  std::cout << "\nTrace: " << num_events << " spans -> " << args.trace_out
            << " (parsed back, monotonic)\n";
}

}  // namespace

int main(int argc, char** argv) {
  ChaosArgs args;
  try {
    args = parse_chaos_args(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "chaos_load: " << e.what()
              << "\nusage: chaos_load [--jobs N] [--rate R] [--seed S] "
                 "[--trace-out FILE]\n";
    return 1;
  }

  cvb::Tracer tracer;
  if (!args.trace_out.empty()) {
    g_tracer = &tracer;
  }

  std::cout << "Chaos harness: " << args.jobs << " jobs/phase, rate "
            << args.rate << ", seed " << args.seed << "\n\n";

  // Phase 0 always runs: the invariants must hold trivially with no
  // faults armed.
  std::cout << "Baseline (no faults armed):\n";
  {
    cvb::ScopedFaultInjection scoped(args.seed);
    cvb::ServiceOptions options;
    options.tracer = g_tracer;
    options.num_workers = 2;
    cvb::Service service(options);
    const PhaseResult result = run_phase(service, args.jobs);
    check_accounting(service, args.jobs);
    if (result.ok != args.jobs) {
      fail("baseline lost or failed jobs");
    }
    std::cout << "  ok=" << result.ok << "/" << args.jobs
              << ", every binding re-verified\n";
  }

  if (!cvb::fault_injection_compiled()) {
    export_trace(args, tracer);
    std::cout << "\nFault injection not compiled in "
                 "(-DCVB_FAULT_INJECTION=OFF); fault-free invariant pass "
                 "only.\nPASS\n";
    return 0;
  }

  std::cout << "\nPer-site chaos (transient @ " << args.rate << "):\n";
  for (const char* site : {"eval.task", "eval.cache_lookup",
                           "eval.cache_insert", "service.admit",
                           "service.worker"}) {
    site_phase(args, site);
  }

  std::cout << "\nParser chaos:\n";
  parser_phase(args);

  std::cout << "\nMixed chaos:\n";
  mixed_phase(args);

  std::cout << "\nHang + watchdog:\n";
  hang_phase(args);

  std::cout << "\nPoison + quarantine:\n";
  quarantine_phase(args);

  export_trace(args, tracer);

  std::cout << "\nAll phases held: zero lost jobs, exactly-once "
               "fulfilment, every delivered binding re-verified.\nPASS\n";
  return 0;
}
