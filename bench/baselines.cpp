// Extended baseline comparison (paper Section 4): the paper's
// algorithms (B-INIT, B-ITER) against all three related-work binder
// families it discusses —
//   * PCC (Desoli): partial component clustering (Section 5 baseline),
//   * SA (Leupers-style): simulated annealing with scheduler-in-loop,
//   * MinCut (Capitanio-style): balanced min-cut partitioning
//     (homogeneous clusters only, its documented limitation).
// Reported as L/M per (kernel, datapath) on homogeneous configurations
// so every contender can run.
#include <iostream>
#include <vector>

#include "baselines/annealing.hpp"
#include "baselines/mincut.hpp"
#include "bind/driver.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/verifier.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

const std::vector<std::string> kDatapaths = {"[1,1|1,1]", "[2,1|2,1]",
                                             "[1,1|1,1|1,1]"};

std::string lm(const cvb::BindResult& r) {
  return std::to_string(r.schedule.latency) + "/" +
         std::to_string(r.schedule.num_moves);
}

void check(const cvb::BindResult& r, const cvb::Datapath& dp,
           const std::string& who) {
  const std::string err = cvb::verify_schedule(r.bound, dp, r.schedule);
  if (!err.empty()) {
    throw std::logic_error(who + " produced an illegal schedule: " + err);
  }
}

}  // namespace

int main() {
  std::cout << "Baseline comparison: L/M per algorithm "
            << "(homogeneous datapaths, N_B=2, lat(move)=1)\n\n";

  cvb::TablePrinter table({"kernel", "datapath", "MinCut L/M", "SA L/M",
                           "PCC L/M", "B-INIT L/M", "B-ITER L/M"});
  int sum_mincut = 0;
  int sum_sa = 0;
  int sum_pcc = 0;
  int sum_init = 0;
  int sum_iter = 0;

  for (const cvb::BenchmarkKernel& kernel : cvb::benchmark_suite()) {
    for (const std::string& spec : kDatapaths) {
      const cvb::Datapath dp = cvb::parse_datapath(spec);

      const cvb::BindResult mincut = cvb::mincut_binding(kernel.dfg, dp);
      check(mincut, dp, "MinCut");
      const cvb::BindResult sa = cvb::annealing_binding(kernel.dfg, dp);
      check(sa, dp, "SA");
      const cvb::BindResult pcc = cvb::pcc_binding(kernel.dfg, dp);
      check(pcc, dp, "PCC");
      cvb::DriverParams init_only;
      init_only.run_iterative = false;
      const cvb::BindResult init =
          cvb::bind_initial_best(kernel.dfg, dp, init_only);
      const cvb::BindResult iter = cvb::bind_full(kernel.dfg, dp);

      sum_mincut += mincut.schedule.latency;
      sum_sa += sa.schedule.latency;
      sum_pcc += pcc.schedule.latency;
      sum_init += init.schedule.latency;
      sum_iter += iter.schedule.latency;

      table.add_row({kernel.name, spec, lm(mincut), lm(sa), lm(pcc), lm(init),
                     lm(iter)});
    }
  }
  table.add_row({"TOTAL", "", std::to_string(sum_mincut),
                 std::to_string(sum_sa), std::to_string(sum_pcc),
                 std::to_string(sum_init), std::to_string(sum_iter)});
  table.print(std::cout);

  std::cout << "\nExpected shape (paper Section 4): the cut-size objective "
               "(MinCut) trails on latency\nbecause balanced communication "
               "minimization is not latency minimization; SA is\ncompetitive "
               "but costly; B-ITER leads or ties overall.\n";
  return 0;
}
