// Runtime-scaling microbenchmarks (google-benchmark): how B-INIT,
// B-ITER and PCC scale with DFG size. The paper reports B-INIT in
// single-digit milliseconds and B-ITER in seconds on 1990s hardware
// (RS6000); these benches characterize the same complexity gap on this
// machine, on unrolled DCT kernels and random layered DAGs.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bind/driver.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "pcc/pcc.hpp"
#include "sched/list_scheduler.hpp"

namespace {

cvb::Dfg sized_kernel(int unroll_factor) {
  return cvb::unroll(cvb::make_dct_dit(), unroll_factor);
}

void BM_InitialBinding(benchmark::State& state) {
  const cvb::Dfg dfg = sized_kernel(static_cast<int>(state.range(0)));
  const cvb::Datapath dp = cvb::parse_datapath("[2,1|2,1]");
  cvb::DriverParams params;
  params.run_iterative = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cvb::bind_initial_best(dfg, dp, params));
  }
  state.SetComplexityN(dfg.num_ops());
}
BENCHMARK(BM_InitialBinding)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Complexity();

void BM_FullBinding(benchmark::State& state) {
  const cvb::Dfg dfg = sized_kernel(static_cast<int>(state.range(0)));
  const cvb::Datapath dp = cvb::parse_datapath("[2,1|2,1]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cvb::bind_full(dfg, dp));
  }
  state.SetComplexityN(dfg.num_ops());
}
BENCHMARK(BM_FullBinding)->Arg(1)->Arg(2)->Arg(4)->Complexity();

void BM_PccBinding(benchmark::State& state) {
  const cvb::Dfg dfg = sized_kernel(static_cast<int>(state.range(0)));
  const cvb::Datapath dp = cvb::parse_datapath("[2,1|2,1]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cvb::pcc_binding(dfg, dp));
  }
  state.SetComplexityN(dfg.num_ops());
}
BENCHMARK(BM_PccBinding)->Arg(1)->Arg(2)->Arg(4)->Complexity();

void BM_ListSchedule(benchmark::State& state) {
  const cvb::Dfg dfg = sized_kernel(static_cast<int>(state.range(0)));
  const cvb::Datapath dp = cvb::parse_datapath("[2,1|2,1]");
  cvb::DriverParams params;
  params.run_iterative = false;
  const cvb::BindResult r = cvb::bind_initial_best(dfg, dp, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cvb::list_schedule(r.bound, dp));
  }
  state.SetComplexityN(dfg.num_ops());
}
BENCHMARK(BM_ListSchedule)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Complexity();

void BM_RandomDagFullBinding(benchmark::State& state) {
  cvb::Rng rng(2026);
  cvb::RandomDagParams params;
  params.num_ops = static_cast<int>(state.range(0));
  params.num_layers = std::max(3, params.num_ops / 8);
  const cvb::Dfg dfg = cvb::make_random_layered(params, rng);
  const cvb::Datapath dp = cvb::parse_datapath("[2,1|2,1|1,1]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cvb::bind_full(dfg, dp));
  }
  state.SetComplexityN(dfg.num_ops());
}
BENCHMARK(BM_RandomDagFullBinding)->Arg(24)->Arg(48)->Arg(96)->Complexity();

}  // namespace

BENCHMARK_MAIN();
