// Ablation A (paper Section 3.1.2): the cost-function weight gamma
// gives the data-transfer penalty "just a slightly larger priority"
// than the serialization penalties (gamma = 1.1 vs alpha = beta = 1).
// This bench sweeps gamma and reports the B-INIT quality aggregated
// over the full Table-1 suite, showing how sensitive the greedy phase
// is to that choice.
#include <iostream>
#include <vector>

#include "bind/driver.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

const std::vector<std::string> kDatapaths = {
    "[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]", "[2,1|2,1|1,1]"};

}  // namespace

int main() {
  std::cout << "Ablation A: B-INIT cost weight gamma sweep\n"
            << "(sum of schedule latencies / moves across the paper suite "
            << "x " << kDatapaths.size() << " datapaths; lower is better)\n\n";

  cvb::TablePrinter table({"gamma", "total L", "total M", "configs won"});
  const std::vector<double> gammas = {0.0, 0.5, 0.8, 1.0, 1.1,
                                      1.3, 1.5, 2.0, 4.0};

  // Track the best latency per config to count wins.
  std::vector<std::vector<int>> latencies(gammas.size());
  std::vector<int> total_l(gammas.size(), 0);
  std::vector<int> total_m(gammas.size(), 0);

  const std::vector<cvb::BenchmarkKernel> suite = cvb::benchmark_suite();
  for (std::size_t gi = 0; gi < gammas.size(); ++gi) {
    for (const cvb::BenchmarkKernel& kernel : suite) {
      for (const std::string& spec : kDatapaths) {
        const cvb::Datapath dp = cvb::parse_datapath(spec);
        cvb::DriverParams params;
        params.run_iterative = false;
        params.gamma = gammas[gi];
        const cvb::BindResult r =
            cvb::bind_initial_best(kernel.dfg, dp, params);
        latencies[gi].push_back(r.schedule.latency);
        total_l[gi] += r.schedule.latency;
        total_m[gi] += r.schedule.num_moves;
      }
    }
  }

  const std::size_t num_configs = latencies.front().size();
  for (std::size_t gi = 0; gi < gammas.size(); ++gi) {
    int wins = 0;
    for (std::size_t k = 0; k < num_configs; ++k) {
      int best = latencies.front()[k];
      for (const auto& row : latencies) {
        best = std::min(best, row[k]);
      }
      if (latencies[gi][k] == best) {
        ++wins;
      }
    }
    table.add_row({cvb::format_sig(gammas[gi], 2),
                   std::to_string(total_l[gi]), std::to_string(total_m[gi]),
                   std::to_string(wins) + "/" + std::to_string(num_configs)});
  }
  table.print(std::cout);
  std::cout << "\nPaper setting gamma=1.1 should be at or near the best "
            << "total latency,\nwith gamma=0 (transfers ignored) clearly "
            << "worse on moves.\n";
  return 0;
}
