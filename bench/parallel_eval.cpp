// Parallel candidate-evaluation bench: the same batch of candidate
// bindings evaluated by cvb::EvalEngine at 1/2/4/8 threads, on the
// Table 1/Table 2 kernels. Reports per-thread-count wall time and the
// speedup over 1 thread, verifies every configuration returns
// bit-identical results, and shows the schedule cache's effect on a
// repeated B-ITER-style workload.
//
// The candidate batches mimic what B-ITER submits per round: single-op
// re-bindings of the B-INIT binding (every op x every feasible
// cluster), which is also the dominant workload of the paper's own
// complexity analysis (Section 5).
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bind/driver.hpp"
#include "bind/eval_engine.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

struct Config {
  std::string kernel;
  std::string datapath;
};

// One representative datapath per Table 1/2 kernel, plus the DCT-DIT-2
// row the acceptance bar singles out.
const std::vector<Config> kConfigs = {
    {"DCT-DIF", "[2,1|2,1]"},    {"DCT-LEE", "[2,2|2,1]"},
    {"DCT-DIT", "[3,1|2,2|1,3]"}, {"DCT-DIT-2", "[1,1|1,1]"},
    {"DCT-DIT-2", "[3,1|2,2|1,3]"}, {"FFT", "[2,1|2,1|1,2]"},
    {"EWF", "[2,1|1,1]"},        {"ARF", "[1,2|1,2]"},
};

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

/// B-ITER-style candidate batch: every (op, feasible cluster) single
/// re-binding of `base`.
std::vector<cvb::Binding> single_move_candidates(const cvb::Dfg& dfg,
                                                 const cvb::Datapath& dp,
                                                 const cvb::Binding& base) {
  std::vector<cvb::Binding> out;
  for (cvb::OpId v = 0; v < dfg.num_ops(); ++v) {
    for (const cvb::ClusterId c : dp.target_set(dfg.type(v))) {
      if (c == base[static_cast<std::size_t>(v)]) {
        continue;
      }
      cvb::Binding trial = base;
      trial[static_cast<std::size_t>(v)] = c;
      out.push_back(std::move(trial));
    }
  }
  return out;
}

}  // namespace

int main() {
  using cvb::format_sig;

  std::cout << "Parallel candidate evaluation: one B-ITER-style batch per\n"
               "kernel, evaluated at 1/2/4/8 threads (cache disabled so the\n"
               "times measure raw scheduling throughput). Results are\n"
               "checked bit-identical across thread counts.\n\n";

  cvb::TablePrinter table({"kernel", "datapath", "batch", "1T ms", "2T ms",
                           "4T ms", "8T ms", "speedup@4T"});
  for (const Config& config : kConfigs) {
    const cvb::BenchmarkKernel kernel = cvb::benchmark_by_name(config.kernel);
    const cvb::Datapath dp = cvb::parse_datapath(config.datapath);

    cvb::DriverParams init_only;
    init_only.run_iterative = false;
    const cvb::BindResult seed =
        cvb::bind_initial_best(kernel.dfg, dp, init_only);
    const std::vector<cvb::Binding> batch =
        single_move_candidates(kernel.dfg, dp, seed.binding);

    std::vector<double> ms;
    std::vector<cvb::EvalResult> reference;
    for (const int threads : kThreadCounts) {
      cvb::EvalEngineOptions opts;
      opts.num_threads = threads;
      opts.cache_capacity = 0;  // raw evaluation throughput
      cvb::EvalEngine engine(opts);
      // Warm-up pass (thread start-up, allocator), then timed passes.
      (void)engine.evaluate_batch(kernel.dfg, dp, batch);
      cvb::Stopwatch watch;
      constexpr int kReps = 5;
      std::vector<cvb::EvalResult> results;
      for (int rep = 0; rep < kReps; ++rep) {
        results = engine.evaluate_batch(kernel.dfg, dp, batch);
      }
      ms.push_back(watch.elapsed_ms() / kReps);
      if (reference.empty()) {
        reference = results;
      } else if (results != reference) {
        throw std::logic_error("thread count changed evaluation results on " +
                               config.kernel);
      }
    }

    table.add_row({config.kernel, config.datapath,
                   std::to_string(batch.size()), format_sig(ms[0], 3),
                   format_sig(ms[1], 3), format_sig(ms[2], 3),
                   format_sig(ms[3], 3), format_sig(ms[0] / ms[2], 3)});
  }
  table.print(std::cout);

  // Cache effect: the full driver on DCT-DIT-2, cold vs shared engine.
  std::cout << "\nSchedule-cache effect (full B-ITER on DCT-DIT-2, "
               "[1,1|1,1]):\n";
  const cvb::BenchmarkKernel dct2 = cvb::benchmark_by_name("DCT-DIT-2");
  const cvb::Datapath dp2 = cvb::parse_datapath("[1,1|1,1]");
  cvb::EvalEngine shared;
  cvb::DriverParams params;
  params.engine = &shared;
  for (int run = 0; run < 2; ++run) {
    const cvb::BindResult r = cvb::bind_full(dct2.dfg, dp2, params);
    const cvb::EvalStats s = r.eval_stats;
    const double hit_pct =
        s.candidates > 0 ? 100.0 * static_cast<double>(s.cache_hits) /
                               static_cast<double>(s.candidates)
                         : 0.0;
    std::cout << "  run " << run + 1 << ": L=" << r.schedule.latency
              << " M=" << r.schedule.num_moves << ", " << s.candidates
              << " candidates, " << s.cache_hits << " cache hits ("
              << format_sig(hit_pct, 3) << "%), "
              << format_sig(s.eval_ms, 3) << " eval ms\n";
  }
  std::cout << "\nNote: speedups require physical cores; on a 1-CPU machine\n"
               "all thread counts time alike (results stay identical).\n";
  return 0;
}
