// Parallel candidate-evaluation bench: the same batch of candidate
// bindings evaluated by cvb::EvalEngine at 1/2/4/8 threads, on the
// Table 1/Table 2 kernels. Reports per-thread-count wall time and the
// speedup over 1 thread, verifies every configuration returns
// bit-identical results, shows the incremental (delta) evaluation
// path's speedup over full re-evaluation, sweeps the sharded schedule
// cache under concurrent callers (reporting per-shard contention), and
// shows the cache's effect on a repeated B-ITER-style workload.
//
// The candidate batches mimic what B-ITER submits per round: single-op
// re-bindings of the B-INIT binding (every op x every feasible
// cluster), which is also the dominant workload of the paper's own
// complexity analysis (Section 5).
//
// `parallel_eval --check` runs a reduced smoke configuration and exits
// nonzero if the sharded cache regresses hit rate or throughput
// against the single-mutex (1-shard, no-L1) baseline, or if the delta
// path diverges from full evaluation — CI runs this mode.
#include <algorithm>
#include <atomic>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bind/delta_eval.hpp"
#include "bind/driver.hpp"
#include "bind/eval_engine.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

struct Config {
  std::string kernel;
  std::string datapath;
};

// One representative datapath per Table 1/2 kernel, plus the DCT-DIT-2
// row the acceptance bar singles out.
const std::vector<Config> kConfigs = {
    {"DCT-DIF", "[2,1|2,1]"},    {"DCT-LEE", "[2,2|2,1]"},
    {"DCT-DIT", "[3,1|2,2|1,3]"}, {"DCT-DIT-2", "[1,1|1,1]"},
    {"DCT-DIT-2", "[3,1|2,2|1,3]"}, {"FFT", "[2,1|2,1|1,2]"},
    {"EWF", "[2,1|1,1]"},        {"ARF", "[1,2|1,2]"},
};

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

/// B-ITER-style candidate deltas: every (op, feasible cluster) single
/// re-binding of `base`, as deltas against it.
std::vector<cvb::BindingDelta> single_move_deltas(const cvb::Dfg& dfg,
                                                  const cvb::Datapath& dp,
                                                  const cvb::Binding& base) {
  std::vector<cvb::BindingDelta> out;
  for (cvb::OpId v = 0; v < dfg.num_ops(); ++v) {
    for (const cvb::ClusterId c : dp.target_set(dfg.type(v))) {
      if (c == base[static_cast<std::size_t>(v)]) {
        continue;
      }
      out.push_back({{v, c}});
    }
  }
  return out;
}

/// The same candidates as full binding vectors.
std::vector<cvb::Binding> materialize(const cvb::Binding& base,
                                      const std::vector<cvb::BindingDelta>& ds) {
  std::vector<cvb::Binding> out;
  out.reserve(ds.size());
  for (const cvb::BindingDelta& delta : ds) {
    cvb::Binding trial = base;
    for (const auto& [v, c] : delta) {
      trial[static_cast<std::size_t>(v)] = c;
    }
    out.push_back(std::move(trial));
  }
  return out;
}

struct CacheSweep {
  double ms = 0.0;
  double per_sec = 0.0;  // candidates per second
  double hit_rate = 0.0;
  cvb::EvalStats stats;
  long long max_shard_contended = 0;
};

/// `callers` external threads hammer one shared engine with the same
/// batch `reps` times each — the caller-side cache probes are where
/// shard locks contend (pool workers only schedule misses).
CacheSweep run_cache_sweep(const cvb::Dfg& dfg, const cvb::Datapath& dp,
                           const std::vector<cvb::Binding>& batch, int callers,
                           std::size_t shards, std::size_t l1_capacity,
                           int reps,
                           const std::vector<cvb::EvalResult>& reference) {
  cvb::EvalEngineOptions opts;
  opts.num_threads = 1;  // contention under test is between callers
  opts.cache_shards = shards;
  opts.l1_capacity = l1_capacity;
  cvb::EvalEngine engine(opts);
  std::atomic<bool> mismatch{false};
  cvb::Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(callers));
  for (int t = 0; t < callers; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < reps; ++rep) {
        if (engine.evaluate_batch(dfg, dp, batch) != reference) {
          mismatch = true;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (mismatch.load()) {
    throw std::logic_error("cache sweep changed evaluation results");
  }
  CacheSweep out;
  out.ms = watch.elapsed_ms();
  out.stats = engine.stats();
  out.per_sec = out.ms > 0.0
                    ? 1000.0 * static_cast<double>(out.stats.candidates) / out.ms
                    : 0.0;
  out.hit_rate = out.stats.candidates > 0
                     ? static_cast<double>(out.stats.cache_hits) /
                           static_cast<double>(out.stats.candidates)
                     : 0.0;
  for (const cvb::EvalShardStats& shard : engine.shard_stats()) {
    out.max_shard_contended = std::max(out.max_shard_contended, shard.contended);
  }
  return out;
}

int run_check() {
  using cvb::format_sig;
  const cvb::BenchmarkKernel kernel = cvb::benchmark_by_name("DCT-DIT-2");
  const cvb::Datapath dp = cvb::parse_datapath("[3,1|2,2|1,3]");
  cvb::DriverParams init_only;
  init_only.run_iterative = false;
  const cvb::BindResult seed = cvb::bind_initial_best(kernel.dfg, dp, init_only);
  const std::vector<cvb::BindingDelta> deltas =
      single_move_deltas(kernel.dfg, dp, seed.binding);
  const std::vector<cvb::Binding> batch = materialize(seed.binding, deltas);

  // Reference + delta-vs-full differential on the way.
  cvb::EvalEngineOptions uncached;
  uncached.cache_capacity = 0;
  cvb::EvalEngine serial(uncached);
  const std::vector<cvb::EvalResult> reference =
      serial.evaluate_batch(kernel.dfg, dp, batch);
  const std::vector<cvb::EvalResult> via_delta =
      serial.evaluate_batch_delta(kernel.dfg, dp, seed.binding, deltas);
  bool ok = true;
  if (via_delta != reference) {
    std::cout << "FAIL: delta evaluation diverges from full evaluation\n";
    ok = false;
  }

  constexpr int kCallers = 8;
  constexpr int kReps = 12;
  const CacheSweep single = run_cache_sweep(kernel.dfg, dp, batch, kCallers,
                                            /*shards=*/1, /*l1=*/0, kReps,
                                            reference);
  const CacheSweep sharded = run_cache_sweep(kernel.dfg, dp, batch, kCallers,
                                             /*shards=*/8, /*l1=*/64, kReps,
                                             reference);
  std::cout << "single-mutex baseline: " << format_sig(single.per_sec, 3)
            << " cand/s, hit rate " << format_sig(100.0 * single.hit_rate, 3)
            << "%, max shard contended " << single.max_shard_contended << "\n"
            << "sharded (8) + L1:      " << format_sig(sharded.per_sec, 3)
            << " cand/s, hit rate " << format_sig(100.0 * sharded.hit_rate, 3)
            << "%, max shard contended " << sharded.max_shard_contended << "\n";
  if (sharded.hit_rate + 1e-9 < single.hit_rate) {
    std::cout << "FAIL: sharded cache hit rate below single-mutex baseline\n";
    ok = false;
  }
  // Generous tolerance: the identical work should never be 40% slower
  // just from lock splitting, on any core count.
  if (single.per_sec > 0.0 && sharded.per_sec < 0.6 * single.per_sec) {
    std::cout << "FAIL: sharded cache throughput regressed vs single mutex ("
              << format_sig(sharded.per_sec / single.per_sec, 3) << "x)\n";
    ok = false;
  }
  std::cout << (ok ? "parallel_eval --check: PASS\n"
                   : "parallel_eval --check: FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using cvb::format_sig;
  if (argc > 1 && std::string(argv[1]) == "--check") {
    return run_check();
  }

  std::cout << "Parallel candidate evaluation: one B-ITER-style batch per\n"
               "kernel, evaluated at 1/2/4/8 threads (cache disabled so the\n"
               "times measure raw scheduling throughput). Results are\n"
               "checked bit-identical across thread counts.\n\n";

  cvb::TablePrinter table({"kernel", "datapath", "batch", "1T ms", "2T ms",
                           "4T ms", "8T ms", "speedup@4T"});
  for (const Config& config : kConfigs) {
    const cvb::BenchmarkKernel kernel = cvb::benchmark_by_name(config.kernel);
    const cvb::Datapath dp = cvb::parse_datapath(config.datapath);

    cvb::DriverParams init_only;
    init_only.run_iterative = false;
    const cvb::BindResult seed =
        cvb::bind_initial_best(kernel.dfg, dp, init_only);
    const std::vector<cvb::BindingDelta> deltas =
        single_move_deltas(kernel.dfg, dp, seed.binding);
    const std::vector<cvb::Binding> batch = materialize(seed.binding, deltas);

    std::vector<double> ms;
    std::vector<cvb::EvalResult> reference;
    for (const int threads : kThreadCounts) {
      cvb::EvalEngineOptions opts;
      opts.num_threads = threads;
      opts.cache_capacity = 0;  // raw evaluation throughput
      cvb::EvalEngine engine(opts);
      // Warm-up pass (thread start-up, allocator), then timed passes.
      (void)engine.evaluate_batch(kernel.dfg, dp, batch);
      cvb::Stopwatch watch;
      constexpr int kReps = 5;
      std::vector<cvb::EvalResult> results;
      for (int rep = 0; rep < kReps; ++rep) {
        results = engine.evaluate_batch(kernel.dfg, dp, batch);
      }
      ms.push_back(watch.elapsed_ms() / kReps);
      if (reference.empty()) {
        reference = results;
      } else if (results != reference) {
        throw std::logic_error("thread count changed evaluation results on " +
                               config.kernel);
      }
    }

    table.add_row({config.kernel, config.datapath,
                   std::to_string(batch.size()), format_sig(ms[0], 3),
                   format_sig(ms[1], 3), format_sig(ms[2], 3),
                   format_sig(ms[3], 3), format_sig(ms[0] / ms[2], 3)});
  }
  table.print(std::cout);

  // Incremental (delta) evaluation vs full re-evaluation, serial, cache
  // off: isolates the per-candidate BoundDfg/arena savings.
  std::cout << "\nIncremental (delta) vs full evaluation (serial, cache "
               "off, bit-identical results):\n";
  cvb::TablePrinter delta_table(
      {"kernel", "datapath", "batch", "full ms", "delta ms", "speedup"});
  for (const Config& config : kConfigs) {
    const cvb::BenchmarkKernel kernel = cvb::benchmark_by_name(config.kernel);
    const cvb::Datapath dp = cvb::parse_datapath(config.datapath);
    cvb::DriverParams init_only;
    init_only.run_iterative = false;
    const cvb::BindResult seed =
        cvb::bind_initial_best(kernel.dfg, dp, init_only);
    const std::vector<cvb::BindingDelta> deltas =
        single_move_deltas(kernel.dfg, dp, seed.binding);
    const std::vector<cvb::Binding> batch = materialize(seed.binding, deltas);

    cvb::EvalEngineOptions opts;
    opts.cache_capacity = 0;
    cvb::EvalEngine engine(opts);
    constexpr int kReps = 5;
    (void)engine.evaluate_batch(kernel.dfg, dp, batch);  // warm-up
    cvb::Stopwatch full_watch;
    std::vector<cvb::EvalResult> full;
    for (int rep = 0; rep < kReps; ++rep) {
      full = engine.evaluate_batch(kernel.dfg, dp, batch);
    }
    const double full_ms = full_watch.elapsed_ms() / kReps;
    (void)engine.evaluate_batch_delta(kernel.dfg, dp, seed.binding, deltas);
    cvb::Stopwatch delta_watch;
    std::vector<cvb::EvalResult> incremental;
    for (int rep = 0; rep < kReps; ++rep) {
      incremental =
          engine.evaluate_batch_delta(kernel.dfg, dp, seed.binding, deltas);
    }
    const double delta_ms = delta_watch.elapsed_ms() / kReps;
    if (incremental != full) {
      throw std::logic_error("delta evaluation diverged on " + config.kernel);
    }
    delta_table.add_row({config.kernel, config.datapath,
                         std::to_string(batch.size()), format_sig(full_ms, 3),
                         format_sig(delta_ms, 3),
                         format_sig(delta_ms > 0 ? full_ms / delta_ms : 0.0,
                                    3)});
  }
  delta_table.print(std::cout);

  // Sharded-cache contention sweep: concurrent caller threads sharing
  // one warm engine; all work after round one is cache probes, so the
  // cache organization dominates.
  std::cout << "\nSharded-cache contention sweep (DCT-DIT-2, [3,1|2,2|1,3];\n"
               "N caller threads re-probing one shared engine; single = 1 "
               "shard,\nno L1 — the pre-shard organization):\n";
  {
    const cvb::BenchmarkKernel kernel = cvb::benchmark_by_name("DCT-DIT-2");
    const cvb::Datapath dp = cvb::parse_datapath("[3,1|2,2|1,3]");
    cvb::DriverParams init_only;
    init_only.run_iterative = false;
    const cvb::BindResult seed =
        cvb::bind_initial_best(kernel.dfg, dp, init_only);
    const std::vector<cvb::BindingDelta> deltas =
        single_move_deltas(kernel.dfg, dp, seed.binding);
    const std::vector<cvb::Binding> batch = materialize(seed.binding, deltas);
    cvb::EvalEngineOptions uncached;
    uncached.cache_capacity = 0;
    cvb::EvalEngine serial(uncached);
    const std::vector<cvb::EvalResult> reference =
        serial.evaluate_batch(kernel.dfg, dp, batch);

    cvb::TablePrinter sweep({"callers", "config", "ms", "kcand/s", "hit %",
                             "L1 %", "max shard cont."});
    constexpr int kReps = 8;
    for (const int callers : kThreadCounts) {
      struct Variant {
        const char* name;
        std::size_t shards;
        std::size_t l1;
      };
      const Variant variants[] = {{"single mutex", 1, 0},
                                  {"8 shards", 8, 0},
                                  {"8 shards + L1", 8, 64}};
      for (const Variant& variant : variants) {
        const CacheSweep r =
            run_cache_sweep(kernel.dfg, dp, batch, callers, variant.shards,
                            variant.l1, kReps, reference);
        const double l1_pct =
            r.stats.candidates > 0
                ? 100.0 * static_cast<double>(r.stats.l1_hits) /
                      static_cast<double>(r.stats.candidates)
                : 0.0;
        sweep.add_row({std::to_string(callers), variant.name,
                       format_sig(r.ms, 3), format_sig(r.per_sec / 1000.0, 3),
                       format_sig(100.0 * r.hit_rate, 3),
                       format_sig(l1_pct, 3),
                       std::to_string(r.max_shard_contended)});
      }
    }
    sweep.print(std::cout);
  }

  // Cache effect: the full driver on DCT-DIT-2, cold vs shared engine.
  std::cout << "\nSchedule-cache effect (full B-ITER on DCT-DIT-2, "
               "[1,1|1,1]):\n";
  const cvb::BenchmarkKernel dct2 = cvb::benchmark_by_name("DCT-DIT-2");
  const cvb::Datapath dp2 = cvb::parse_datapath("[1,1|1,1]");
  cvb::EvalEngine shared;
  cvb::DriverParams params;
  params.engine = &shared;
  for (int run = 0; run < 2; ++run) {
    const cvb::BindResult r = cvb::bind_full(dct2.dfg, dp2, params);
    const cvb::EvalStats s = r.eval_stats;
    const double hit_pct =
        s.candidates > 0 ? 100.0 * static_cast<double>(s.cache_hits) /
                               static_cast<double>(s.candidates)
                         : 0.0;
    std::cout << "  run " << run + 1 << ": L=" << r.schedule.latency
              << " M=" << r.schedule.num_moves << ", " << s.candidates
              << " candidates, " << s.cache_hits << " cache hits ("
              << format_sig(hit_pct, 3) << "%), "
              << format_sig(s.eval_ms, 3) << " eval ms\n";
  }
  std::cout << "\nNote: speedups require physical cores; on a 1-CPU machine\n"
               "all thread counts time alike (results stay identical).\n";
  return 0;
}
