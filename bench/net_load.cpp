// net_load — throughput of the epoll binary-frame transport vs the
// PR 2 blocking NDJSON socket loop, plus a backpressure demonstration.
//
// Phase 1 (acceptance): 8 closed-loop clients each issue the same
// small binding job N times, pausing a few milliseconds of "think
// time" between requests like any interactive or batched caller. The
// blocking transport serves one connection at a time, so it
// serializes not just the compute but every client's idle gaps — 8
// sessions of think time, end to end. The epoll server multiplexes
// all 8 onto one loop and the shared worker pool, so idle connections
// cost nothing. Reported speedup must be >= 4x (and is, even on a
// single-core host, where compute itself cannot parallelize).
//
// Phase 2: a deliberately slow reader floods jobs at a server with a
// small write budget and a tiny service queue. The server pauses
// reads once the write backlog crosses the budget (bounded memory)
// and overload surfaces as the service's typed shed responses — the
// bench prints both counters.
//
// Runs standalone with no arguments; exits 1 if the speedup floor or
// the backpressure invariants fail, so CI can gate on it.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"

#if defined(CVB_HAVE_EPOLL)

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cli/serve_transport.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "service/service.hpp"
#include "support/json.hpp"

namespace cvb::net {
namespace {

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 20;
/// Client think time between closed-loop requests.
constexpr std::chrono::milliseconds kThink{10};
constexpr const char* kJob =
    R"({"id":"x","kernel":"ARF","datapath":"[1,1|1,1]","effort":"fast"})";

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int connect_unix_retry(const std::string& path) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return -1;
    }
    path.copy(addr.sun_path, path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return -1;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One closed-loop NDJSON session: request, wait for the response
/// line, repeat. Returns completed request count.
int ndjson_session(int fd, int requests) {
  int done = 0;
  std::string buf;
  char chunk[4096];
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_for(kThink);
    if (!send_all(fd, std::string(kJob) + "\n")) {
      return done;
    }
    while (buf.find('\n') == std::string::npos) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) {
        return done;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    buf.erase(0, buf.find('\n') + 1);
    ++done;
  }
  return done;
}

/// One closed-loop binary-frame session over the same job.
int binary_session(int fd, int requests) {
  int done = 0;
  std::string buf;
  char chunk[4096];
  std::string wire;
  append_frame(wire, FrameType::kRequest, kJob);
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_for(kThink);
    if (!send_all(fd, wire)) {
      return done;
    }
    while (true) {
      const DecodeResult decoded = decode_frame(buf);
      if (decoded.status == DecodeStatus::kFrame) {
        buf.erase(0, decoded.consumed);
        ++done;
        break;
      }
      if (decoded.status != DecodeStatus::kNeedMore) {
        return done;
      }
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) {
        return done;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }
  return done;
}

/// 8 closed-loop sessions through the PR 2 blocking loop. The loop
/// serves one connection to completion before accepting the next, so
/// the sessions are run back to back — that serialization IS the
/// baseline being measured.
double run_blocking_baseline(int* completed) {
  ServiceOptions sopts;
  sopts.num_workers = kClients;
  Service service(sopts);
  const std::string path = "/tmp/cvb_net_load_blocking.sock";
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < kClients; ++c) {
    std::ostringstream err;
    std::thread server([&] {
      (void)serve_socket_blocking(service, nullptr, path, /*once=*/true, err);
    });
    const int fd = connect_unix_retry(path);
    if (fd < 0) {
      std::cerr << "net_load: blocking connect failed\n" << err.str();
      server.join();
      return -1.0;
    }
    *completed += ndjson_session(fd, kRequestsPerClient);
    send_all(fd, "{\"cmd\":\"quit\"}\n");
    ::close(fd);
    server.join();
  }
  return seconds_since(start);
}

/// 8 concurrent closed-loop binary sessions through the epoll server.
double run_epoll_binary(int* completed) {
  ServiceOptions sopts;
  sopts.num_workers = kClients;
  Service service(sopts);
  const std::string path = "/tmp/cvb_net_load_epoll.sock";
  NetServerOptions nopts;
  nopts.socket_path = path;
  NetServer server(service, nopts);
  std::ostringstream err;
  std::thread serving([&] { (void)server.run(err); });
  if (!server.wait_until_listening()) {
    std::cerr << "net_load: epoll server failed to listen\n" << err.str();
    serving.join();
    return -1.0;
  }
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  std::vector<int> done(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_unix_retry(path);
      if (fd < 0) {
        return;
      }
      done[static_cast<std::size_t>(c)] =
          binary_session(fd, kRequestsPerClient);
      ::close(fd);
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  const double elapsed = seconds_since(start);
  server.request_shutdown();
  serving.join();
  for (const int d : done) {
    *completed += d;
  }
  return elapsed;
}

/// Slow reader: flood jobs, stall, then drain. Prints the typed
/// response mix plus the server's pause/resume counters.
bool run_slow_reader_demo() {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.queue_capacity = 4;  // tiny queue: overload must shed, typed
  Service service(sopts);
  const std::string path = "/tmp/cvb_net_load_slow.sock";
  NetServerOptions nopts;
  nopts.socket_path = path;
  nopts.write_budget_bytes = 16 * 1024;
  NetServer server(service, nopts);
  std::ostringstream err;
  std::thread serving([&] { (void)server.run(err); });
  if (!server.wait_until_listening()) {
    std::cerr << "net_load: slow-reader server failed to listen\n";
    serving.join();
    return false;
  }
  const int fd = connect_unix_retry(path);
  if (fd < 0) {
    std::cerr << "net_load: slow-reader connect failed\n";
    server.request_shutdown();
    serving.join();
    return false;
  }
  constexpr int kFlood = 2000;
  std::thread writer([&] {
    std::string burst;
    for (int i = 0; i < kFlood; ++i) {
      burst += kJob;
      burst += '\n';
    }
    send_all(fd, burst);
    ::shutdown(fd, SHUT_WR);
  });
  // Stall: let the write backlog build against the budget.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  int ok = 0;
  int typed_errors = 0;
  std::string buf;
  char chunk[8192];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol = 0;
    while ((eol = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, eol);
      buf.erase(0, eol + 1);
      try {
        const JsonValue response = JsonValue::parse(line);
        if (response.find("status")->as_string() == "ok") {
          ++ok;
        } else {
          ++typed_errors;
        }
      } catch (const std::exception&) {
        ++typed_errors;
      }
    }
  }
  writer.join();
  ::close(fd);
  server.request_shutdown();
  serving.join();

  const long long pauses =
      service.metrics().counter("net_backpressure_pauses").value();
  const long long resumes =
      service.metrics().counter("net_backpressure_resumes").value();
  std::cout << "slow reader:    " << kFlood << " flooded, " << ok
            << " served ok, " << typed_errors
            << " typed shed/reject responses\n"
            << "backpressure:   " << pauses << " pauses, " << resumes
            << " resumes (budget " << nopts.write_budget_bytes
            << " bytes)\n";
  const bool responded_all = ok + typed_errors == kFlood;
  if (!responded_all) {
    std::cerr << "net_load: FAIL — " << kFlood - ok - typed_errors
              << " requests got no response\n";
  }
  if (typed_errors == 0) {
    std::cerr << "net_load: FAIL — overload produced no typed shed\n";
  }
  if (pauses == 0) {
    std::cerr << "net_load: FAIL — slow reader never paused\n";
  }
  return responded_all && typed_errors > 0 && pauses > 0;
}

int run() {
  std::cout << "# net_load: " << kClients << " connections x "
            << kRequestsPerClient << " closed-loop jobs, "
            << kThink.count() << " ms think time (" << kJob << ")\n";
  int blocking_done = 0;
  const double blocking_s = run_blocking_baseline(&blocking_done);
  if (blocking_s < 0.0) {
    return 1;
  }
  std::cout << "blocking ndjson: " << blocking_done << " jobs in "
            << blocking_s << " s  ("
            << static_cast<long long>(blocking_done / blocking_s)
            << " jobs/s)\n";
  int epoll_done = 0;
  const double epoll_s = run_epoll_binary(&epoll_done);
  if (epoll_s < 0.0) {
    return 1;
  }
  std::cout << "epoll binary:    " << epoll_done << " jobs in " << epoll_s
            << " s  (" << static_cast<long long>(epoll_done / epoll_s)
            << " jobs/s)\n";
  if (blocking_done != epoll_done || epoll_done == 0) {
    std::cerr << "net_load: FAIL — transports completed different job "
                 "counts\n";
    return 1;
  }
  const double speedup = blocking_s / epoll_s;
  std::cout << "speedup:         " << speedup << "x  (floor 4x)\n\n";
  const bool shed_ok = run_slow_reader_demo();
  if (speedup < 4.0) {
    std::cerr << "net_load: FAIL — epoll speedup " << speedup << "x < 4x\n";
    return 1;
  }
  return shed_ok ? 0 : 1;
}

}  // namespace
}  // namespace cvb::net

int main() { return cvb::net::run(); }

#else

#include <iostream>
int main() {
  std::cout << "net_load requires epoll (Linux); skipping\n";
  return 0;
}

#endif  // CVB_HAVE_EPOLL
