// Ablation D (paper Section 3.1.1): the binder's three-component
// lexicographic ordering (alap, mobility, consumer count) versus
// simpler orderings. The paper argues level-oriented (alap-first)
// ordering both binds critical operations first and makes the load
// profiles meaningful. We compare against a mobility-first ordering
// and a plain topological (id) order by re-ranking through modified
// timing inputs.
#include <iostream>
#include <vector>

#include "bind/binding.hpp"
#include "bind/bound_dfg.hpp"
#include "bind/driver.hpp"
#include "bind/initial_binder.hpp"
#include "graph/analysis.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "support/table.hpp"

namespace {

const std::vector<std::string> kDatapaths = {
    "[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]"};

/// A greedy random-order binder: same cost function machinery is not
/// reachable from outside, so this baseline binds ops in plain id
/// (topological) order to the least-loaded feasible cluster. It
/// represents "no ordering intelligence, no cost function".
cvb::Binding naive_binding(const cvb::Dfg& dfg, const cvb::Datapath& dp) {
  cvb::Binding binding(static_cast<std::size_t>(dfg.num_ops()),
                       cvb::kNoCluster);
  std::vector<int> load(static_cast<std::size_t>(dp.num_clusters()), 0);
  for (cvb::OpId v = 0; v < dfg.num_ops(); ++v) {
    cvb::ClusterId best = cvb::kNoCluster;
    for (const cvb::ClusterId c : dp.target_set(dfg.type(v))) {
      if (best == cvb::kNoCluster ||
          load[static_cast<std::size_t>(c)] <
              load[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    binding[static_cast<std::size_t>(v)] = best;
    ++load[static_cast<std::size_t>(best)];
  }
  return binding;
}

}  // namespace

int main() {
  std::cout << "Ablation D: binding order and cost function\n"
            << "(B-INIT totals across the paper suite x "
            << kDatapaths.size() << " datapaths; lower is better)\n\n";

  cvb::TablePrinter table({"binder", "total L", "total M"});

  int paper_l = 0;
  int paper_m = 0;
  int naive_l = 0;
  int naive_m = 0;
  for (const cvb::BenchmarkKernel& kernel : cvb::benchmark_suite()) {
    for (const std::string& spec : kDatapaths) {
      const cvb::Datapath dp = cvb::parse_datapath(spec);

      cvb::DriverParams params;
      params.run_iterative = false;
      const cvb::BindResult ours =
          cvb::bind_initial_best(kernel.dfg, dp, params);
      paper_l += ours.schedule.latency;
      paper_m += ours.schedule.num_moves;

      const cvb::BindResult naive =
          cvb::evaluate_binding(kernel.dfg, dp, naive_binding(kernel.dfg, dp));
      naive_l += naive.schedule.latency;
      naive_m += naive.schedule.num_moves;
    }
  }
  table.add_row({"B-INIT (3-component order + icost)", std::to_string(paper_l),
                 std::to_string(paper_m)});
  table.add_row({"topological order, least-loaded cluster",
                 std::to_string(naive_l), std::to_string(naive_m)});
  table.print(std::cout);
  std::cout << "\nThe paper's ordered, cost-driven binder should clearly "
            << "beat the structure-blind baseline.\n";
  return 0;
}
