// Reproduces Table 1 of the paper: "schedule latency / number of data
// transfers" (L/M) for PCC, B-INIT and B-ITER on every benchmark and
// datapath configuration listed, with N_B = 2 buses and
// lat(move) = 1. CPU-time columns are wall times on this machine (the
// paper's were measured on an RS6000; only relative ordering is
// comparable).
#include <iostream>
#include <string>
#include <vector>

#include "graph/analysis.hpp"
#include "graph/components.hpp"
#include "harness.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/table.hpp"

namespace {

struct BenchmarkConfigs {
  std::string kernel;
  std::vector<std::string> datapaths;
};

// Exactly the configurations of Table 1, in the paper's order.
const std::vector<BenchmarkConfigs> kTable1 = {
    {"DCT-DIF", {"[1,1|1,1]", "[2,1|2,1]", "[2,1|1,1]", "[1,1|1,1|1,1]"}},
    {"DCT-LEE",
     {"[1,1|1,1]", "[2,1|2,1]", "[2,1|1,1]", "[2,2|2,1]", "[1,1|1,1|1,1]"}},
    {"DCT-DIT",
     {"[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]", "[2,1|2,1|1,1]",
      "[3,1|2,2|1,3]", "[1,1|1,1|1,1|1,1]"}},
    {"DCT-DIT-2",
     {"[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]", "[3,1|2,2|1,3]",
      "[1,1|1,1|1,1|1,1]"}},
    {"FFT",
     {"[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]", "[2,1|2,1|1,2]",
      "[3,2|3,1|1,3]", "[1,1|1,1|1,1|1,1]"}},
    {"EWF",
     {"[1,1|1,1]", "[2,1|2,1]", "[2,1|1,1]", "[1,1|1,1|1,1]",
      "[2,2|2,1|1,1]"}},
    {"ARF", {"[1,1|1,1]", "[1,2|1,2]"}},
};

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  using cvb::bench::run_experiment;
  using cvb::bench::table_cells;

  if (!csv) {
    std::cout << "Table 1 reproduction: L/M for PCC, B-INIT, B-ITER\n"
              << "(N_B = 2 buses, lat(move) = 1, all operations 1 cycle)\n\n";
  }

  cvb::TablePrinter table(cvb::bench::table_headers());
  for (const BenchmarkConfigs& bench : kTable1) {
    const cvb::BenchmarkKernel kernel = cvb::benchmark_by_name(bench.kernel);
    table.add_section(
        bench.kernel + ": Nv=" + std::to_string(kernel.dfg.num_ops()) +
        ", Ncc=" + std::to_string(cvb::num_components(kernel.dfg)) +
        ", Lcp=" +
        std::to_string(cvb::critical_path_length(kernel.dfg,
                                                 cvb::unit_latencies())));
    for (const std::string& spec : bench.datapaths) {
      const cvb::Datapath dp =
          cvb::parse_datapath(spec, /*num_buses=*/2, /*move_latency=*/1);
      table.add_row(table_cells(spec, run_experiment(kernel.dfg, dp)));
    }
  }
  if (csv) {
    table.print_csv(std::cout);
    return 0;
  }
  table.print(std::cout);
  std::cout << "\nRows: " << table.row_count()
            << " (paper Table 1 has 33 rows)\n";
  return 0;
}
