// chaos_net — the network-layer chaos invariant harness (DESIGN §3.13).
//
// Topology: two in-process `cvserve` worker fleets (Service +
// NetServer each) behind one Router with circuit breakers and hedged
// retry enabled, with every network fault-injection site armed —
// torn reads and writes, injected EINTR/ECONNRESET/EAGAIN, mid-frame
// connection drops, delayed eventfd wakeups, torn upstream writes,
// connect failures — plus cooperative service hangs that force the
// hedger to fire. Mid-run one worker is killed outright and then
// restarted, so the breaker must trip open and recover half-open via
// the kPing prober.
//
// A fleet of closed-loop NDJSON clients pushes >= 1000 requests
// through the storm and asserts, per request:
//
//  * exactly one terminal response, carrying the request's own id —
//    hedged duplicates must be deduplicated away (after the last
//    response each session also proves the socket stays silent);
//  * a successful response is canonicalized-byte-identical to the
//    fault-free baseline for that payload (faults may slow or fail a
//    request, never corrupt one);
//  * a failed response is typed {"fault_class":"transient"};
//  * the workers never exceed their write budget
//    (net_write_backlog_peak_bytes).
//
// Whole-run assertions: the killed worker's breaker opened and later
// closed again, and hedged retries both fired and won at least once.
//
// Usage: chaos_net [--requests N] [--seed S]. Runs standalone with no
// arguments (CI uses the defaults). On a build without
// -DCVB_FAULT_INJECTION=ON it runs the fault-free invariant pass
// (including the kill/restart breaker cycle) and exits 0 with a note.
#include <iostream>

#include "net/event_loop.hpp"

#if defined(CVB_HAVE_EPOLL)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cli/flags.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "service/service.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"

namespace cvb::net {
namespace {

struct ChaosNetArgs {
  int requests = 1200;  // total across the client fleet
  std::uint64_t seed = 0xc4a05e7ULL;
};

constexpr int kClients = 4;
constexpr std::size_t kWriteBudget = std::size_t{1} << 20;
constexpr const char* kRouterPath = "/tmp/cvb_chaos_net_router.sock";

/// Request payloads (id attached per request). Two kernels and two
/// datapaths so the schedule caches see both hits and misses.
const std::vector<std::string> kPayloads = {
    R"("kernel":"ARF","datapath":"[1,1|1,1]","effort":"fast")",
    R"("kernel":"EWF","datapath":"[2,1|1,1]","effort":"fast")",
    R"("kernel":"ARF","datapath":"[2,1|2,1]","effort":"fast")",
    R"("kernel":"EWF","datapath":"[1,1|1,1]","effort":"fast")",
};

ChaosNetArgs parse_args(int argc, char** argv) {
  ChaosNetArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--requests") {
      args.requests = parse_int_at_least(value(), kClients, "--requests");
    } else if (arg == "--seed") {
      args.seed = static_cast<std::uint64_t>(std::stoull(value()));
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  return args;
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "chaos_net: FAIL: " << message << '\n';
  std::exit(1);
}

int connect_unix_retry(const std::string& path) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      ::close(fd);
      return -1;
    }
    path.copy(addr.sun_path, path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return -1;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one NDJSON line into `line` (spilling extra bytes into
/// `buf`), waiting at most `timeout_ms`. A timeout is a lost-response
/// invariant violation surfaced as false, never a hang.
bool read_line_timeout(int fd, std::string& buf, std::string& line,
                       int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const std::size_t eol = buf.find('\n');
    if (eol != std::string::npos) {
      line = buf.substr(0, eol);
      buf.erase(0, eol + 1);
      return true;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      return false;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready < 0 && errno == EINTR) {
      continue;
    }
    if (ready <= 0) {
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Canonical response text: the deterministic fields only. id is
/// stripped (every request carries a fresh one), attempts and the
/// wall-clock timings are stripped (faults legitimately change them);
/// status/latency/moves/binding must be byte-stable.
std::string canonicalize(const std::string& line) {
  const JsonValue parsed = JsonValue::parse(line);
  JsonValue out = JsonValue::object();
  for (const auto& [key, value] : parsed.as_object()) {
    if (key == "id" || key == "attempts" || key == "queue_ms" ||
        key == "run_ms" || key == "timings") {
      continue;
    }
    out.set(key, value);
  }
  return out.dump();
}

ServiceOptions worker_service_options() {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.queue_capacity = 256;
  sopts.resilience.max_attempts = 3;
  sopts.resilience.backoff_base_ms = 0.1;
  sopts.resilience.backoff_cap_ms = 1.0;
  return sopts;
}

/// One worker node: its service outlives server kill/restart cycles,
/// so a restarted worker comes back with its cache warm.
struct WorkerNode {
  explicit WorkerNode(const std::string& socket_path)
      : path(socket_path), service(worker_service_options()) {}

  bool start() {
    NetServerOptions nopts;
    nopts.socket_path = path;
    nopts.write_budget_bytes = kWriteBudget;
    server = std::make_unique<NetServer>(service, nopts);
    thread = std::thread([s = server.get()] {
      std::ostringstream err;
      (void)s->run(err);
    });
    if (!server->wait_until_listening()) {
      thread.join();
      server.reset();
      return false;
    }
    return true;
  }

  void stop() {
    if (server != nullptr) {
      server->request_shutdown();
      thread.join();
      server.reset();
    }
  }

  std::string path;
  Service service;
  std::unique_ptr<NetServer> server;
  std::thread thread;
};

void arm_network_chaos(std::uint64_t /*seed*/) {
  FaultInjector& injector = FaultInjector::global();
  const auto transient = [&](const char* site, double rate) {
    FaultSpec spec;
    spec.rate = rate;
    spec.fault_class = FaultClass::kTransient;
    injector.arm(site, spec);
  };
  const auto hang = [&](const char* site, double rate, double hang_ms,
                        bool cooperative) {
    FaultSpec spec;
    spec.rate = rate;
    spec.hang_ms = hang_ms;
    spec.cooperative = cooperative;
    injector.arm(site, spec);
  };
  // EINTR/short/EAGAIN sites are invisible when handled right; keep
  // rates well below 1.0 so retry loops always terminate.
  transient("net.read.eintr", 0.05);
  transient("net.read.short", 0.10);
  transient("net.write.eintr", 0.05);
  transient("net.write.short", 0.10);
  transient("net.write.eagain", 0.05);
  transient("router.upstream_read.eintr", 0.10);
  transient("router.upstream_write.eintr", 0.10);
  transient("router.upstream_write.torn", 0.10);
  // Destructive sites (each firing costs a connection or a request)
  // stay rare so the run still makes progress.
  transient("net.read.reset", 0.002);
  transient("net.frame_drop", 0.002);
  transient("router.upstream_read.eof", 0.002);
  transient("router.upstream_write.drop", 0.002);
  transient("router.connect", 0.05);
  // Delayed wakeups and slow decodes: latency, never failure.
  hang("net.wakeup", 0.05, 10.0, false);
  hang("net.frame.decode", 0.02, 2.0, false);
  // Cooperative worker hangs far past the hedge budget: the hedger
  // must rescue these onto the other worker.
  hang("service.hang", 0.03, 150.0, true);
}

struct ClientStats {
  int ok = 0;
  int transient = 0;
};

/// One closed-loop client session. Appends to `errors` (mutex-held)
/// instead of failing fast so every session drains cleanly.
void client_session(const std::string& router_path, int client, int requests,
                    const std::vector<std::string>& baseline,
                    std::atomic<int>& completed, std::mutex& errors_mutex,
                    std::vector<std::string>& errors, ClientStats& stats) {
  const auto report = [&](const std::string& message) {
    const std::lock_guard<std::mutex> lock(errors_mutex);
    errors.push_back("client " + std::to_string(client) + ": " + message);
  };
  const int fd = connect_unix_retry(router_path);
  if (fd < 0) {
    report("cannot connect to router");
    return;
  }
  std::string buf;
  std::string line;
  for (int i = 0; i < requests; ++i) {
    const std::size_t payload =
        static_cast<std::size_t>(client + i) % kPayloads.size();
    const std::string id =
        "cn-" + std::to_string(client) + "-" + std::to_string(i);
    const std::string request =
        "{\"id\":\"" + id + "\"," + kPayloads[payload] + "}\n";
    if (!send_all(fd, request)) {
      report("send failed at request " + std::to_string(i));
      break;
    }
    if (!read_line_timeout(fd, buf, line, 15000)) {
      report("no response for " + id + " (lost request)");
      break;
    }
    JsonValue response;
    try {
      response = JsonValue::parse(line);
    } catch (const std::exception& e) {
      report("unparseable response for " + id + ": " + e.what());
      break;
    }
    const JsonValue* rid = response.find("id");
    if (rid == nullptr || rid->as_string() != id) {
      report("response id mismatch for " + id + " (duplicate or reorder): " +
             line);
      break;
    }
    const JsonValue* status = response.find("status");
    if (status != nullptr && status->as_string() == "ok") {
      const std::string canonical = canonicalize(line);
      if (canonical != baseline[payload]) {
        report("ok response for " + id +
               " differs from fault-free baseline:\n  got      " + canonical +
               "\n  expected " + baseline[payload]);
        break;
      }
      ++stats.ok;
    } else {
      const JsonValue* fault = response.find("fault_class");
      if (fault == nullptr || fault->as_string() != "transient") {
        report("failed response for " + id + " is not typed transient: " +
               line);
        break;
      }
      ++stats.transient;
    }
    completed.fetch_add(1, std::memory_order_relaxed);
  }
  // The dedup proof: after the last matched response this session's
  // socket must stay silent — a hedge loser that leaked through would
  // show up here as an extra line.
  if (!buf.empty()) {
    report("extra bytes after final response (duplicate leaked): " + buf);
  } else {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 300) > 0) {
      char chunk[256];
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n > 0) {
        report("late bytes after final response (duplicate leaked): " +
               std::string(chunk, static_cast<std::size_t>(n)));
      }
    }
  }
  ::close(fd);
}

/// Polls a counter until it reaches `floor` or ~10 s pass.
bool wait_counter_at_least(MetricsRegistry& metrics, const char* name,
                           long long floor) {
  for (int i = 0; i < 1000; ++i) {
    if (metrics.counter(name).value() >= floor) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return metrics.counter(name).value() >= floor;
}

int run(const ChaosNetArgs& args) {
  const bool injecting = fault_injection_compiled();
  std::cout << "# chaos_net: " << args.requests << " requests, " << kClients
            << " clients, seed " << args.seed
            << (injecting ? ", network fault injection ON"
                          : ", fault injection not compiled in — "
                            "fault-free invariant pass")
            << "\n";

  ScopedFaultInjection scoped(args.seed);

  WorkerNode worker1("/tmp/cvb_chaos_net_w1.sock");
  WorkerNode worker2("/tmp/cvb_chaos_net_w2.sock");
  if (!worker1.start() || !worker2.start()) {
    fail("worker failed to listen");
  }

  MetricsRegistry router_metrics;
  RouterOptions ropts;
  ropts.listen_path = kRouterPath;
  ropts.workers = {worker1.path, worker2.path};
  ropts.vnodes = 32;
  ropts.health_interval_ms = 25.0;
  ropts.health_timeout_ms = 250.0;
  ropts.backoff_base_ms = 1.0;
  ropts.backoff_cap_ms = 20.0;
  ropts.hedge_budget_ms = 40.0;
  ropts.metrics = &router_metrics;
  Router router(std::move(ropts));
  std::ostringstream router_err;
  std::thread routing([&] { (void)router.run(router_err); });
  if (!router.wait_until_listening()) {
    routing.join();
    fail("router failed to listen:\n" + router_err.str());
  }

  // Fault-free baseline: one canonical response per payload, taken
  // through the very same router path the chaos run will use.
  std::vector<std::string> baseline;
  {
    const int fd = connect_unix_retry(kRouterPath);
    if (fd < 0) {
      fail("baseline connect failed");
    }
    std::string buf;
    std::string line;
    for (std::size_t p = 0; p < kPayloads.size(); ++p) {
      const std::string request = "{\"id\":\"base-" + std::to_string(p) +
                                  "\"," + kPayloads[p] + "}\n";
      if (!send_all(fd, request) ||
          !read_line_timeout(fd, buf, line, 15000)) {
        fail("baseline request " + std::to_string(p) + " got no response");
      }
      const JsonValue response = JsonValue::parse(line);
      if (response.find("status")->as_string() != "ok") {
        fail("baseline request " + std::to_string(p) + " failed: " + line);
      }
      baseline.push_back(canonicalize(line));
    }
    ::close(fd);
  }

  if (injecting) {
    arm_network_chaos(args.seed);
  }

  // Client fleet, with a controller that kills worker 2 mid-run and
  // restarts it: the breaker must open, half-open via probes, and
  // close again while traffic keeps flowing.
  std::atomic<int> completed{0};
  std::mutex errors_mutex;
  std::vector<std::string> errors;
  std::vector<ClientStats> stats(kClients);
  const int per_client = args.requests / kClients;
  const int kill_at = (per_client * kClients * 2) / 5;

  std::atomic<bool> clients_done{false};
  std::thread controller([&] {
    while (completed.load(std::memory_order_relaxed) < kill_at &&
           !clients_done.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    worker2.stop();
    if (!wait_counter_at_least(router_metrics, "net_breaker_open_total", 1)) {
      return;  // main thread reports the metric assertion failure
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (!worker2.start()) {
      const std::lock_guard<std::mutex> lock(errors_mutex);
      errors.push_back("controller: worker 2 failed to restart");
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      client_session(kRouterPath, c, per_client, baseline, completed,
                     errors_mutex, errors, stats[static_cast<std::size_t>(c)]);
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  clients_done.store(true, std::memory_order_relaxed);
  controller.join();

  // The breaker must have completed its full cycle: open on the kill,
  // closed again after the restart's probes.
  const bool opened =
      router_metrics.counter("net_breaker_open_total").value() >= 1;
  const bool closed_again =
      opened && wait_counter_at_least(router_metrics,
                                      "net_breaker_close_total", 1);

  router.request_shutdown();
  routing.join();
  worker1.stop();
  worker2.stop();

  if (!errors.empty()) {
    for (const std::string& error : errors) {
      std::cerr << "chaos_net: " << error << '\n';
    }
    fail(std::to_string(errors.size()) + " invariant violations");
  }
  int ok = 0;
  int transient = 0;
  for (const ClientStats& s : stats) {
    ok += s.ok;
    transient += s.transient;
  }
  const int total = per_client * kClients;
  if (ok + transient != total) {
    fail("only " + std::to_string(ok + transient) + "/" +
         std::to_string(total) + " requests completed");
  }
  if (!opened) {
    fail("killing a worker never opened its breaker");
  }
  if (!closed_again) {
    fail("restarted worker's breaker never closed again");
  }
  const long long peak1 =
      worker1.service.metrics().gauge("net_write_backlog_peak_bytes").value();
  const long long peak2 =
      worker2.service.metrics().gauge("net_write_backlog_peak_bytes").value();
  const long long budget_ceiling =
      static_cast<long long>(kWriteBudget) + 256 * 1024;
  if (peak1 > budget_ceiling || peak2 > budget_ceiling) {
    fail("write backlog peak " + std::to_string(std::max(peak1, peak2)) +
         " exceeded the budget ceiling " + std::to_string(budget_ceiling));
  }
  const long long hedge_fired =
      router_metrics.counter("net_hedge_fired_total").value();
  const long long hedge_dropped =
      router_metrics.counter("net_hedge_dedup_dropped_total").value();
  const long long transient_total =
      router_metrics.counter("net_router_transient_total").value();
  std::cout << "requests:    " << ok << " ok + " << transient
            << " typed transient = " << total << " (zero lost, zero "
            << "duplicated)\n"
            << "breaker:     open=" <<
      router_metrics.counter("net_breaker_open_total").value()
            << " half_open="
            << router_metrics.counter("net_breaker_half_open_total").value()
            << " close="
            << router_metrics.counter("net_breaker_close_total").value()
            << " fail_open="
            << router_metrics.counter("net_breaker_fail_open_total").value()
            << "\n"
            << "hedging:     fired=" << hedge_fired << " wins="
            << router_metrics.counter("net_hedge_wins_total").value()
            << " dedup_dropped=" << hedge_dropped << "\n"
            << "router:      transient_answers=" << transient_total
            << " unmatched_dropped="
            << router_metrics.counter("net_router_unmatched_responses").value()
            << "\n"
            << "write peaks: w1=" << peak1 << " w2=" << peak2 << " (budget "
            << kWriteBudget << ")\n";
  if (injecting && hedge_fired == 0) {
    fail("hedged retry never fired under injected worker hangs");
  }
  std::cout << "PASS\n";
  return 0;
}

}  // namespace
}  // namespace cvb::net

int main(int argc, char** argv) {
  cvb::net::ChaosNetArgs args;
  try {
    args = cvb::net::parse_args(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << "chaos_net: " << e.what()
              << "\nusage: chaos_net [--requests N] [--seed S]\n";
    return 1;
  }
  return cvb::net::run(args);
}

#else

int main() {
  std::cout << "chaos_net requires epoll (Linux); skipping\n";
  return 0;
}

#endif  // CVB_HAVE_EPOLL
