// Ablation B (paper Sections 3.1.3-3.1.4): what the driver's two
// exploration knobs buy — stretching the load-profile latency L_PR
// beyond L_CP, and trying the reverse (outputs-first) binding
// direction. Reports B-INIT totals across the Table-1 suite with each
// knob disabled in turn.
#include <iostream>
#include <vector>

#include "bind/driver.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/table.hpp"

namespace {

const std::vector<std::string> kDatapaths = {
    "[1,1|1,1]", "[2,1|2,1]", "[1,1|1,1|1,1]", "[2,1|2,1|1,1]"};

struct Variant {
  std::string name;
  int max_stretch;
  bool try_reverse;
};

}  // namespace

int main() {
  std::cout << "Ablation B: driver exploration knobs (B-INIT phase)\n"
            << "(totals across the paper suite x " << kDatapaths.size()
            << " datapaths; lower is better)\n\n";

  const std::vector<Variant> variants = {
      {"full driver (stretch<=4, both dirs)", 4, true},
      {"forward only", 4, false},
      {"fixed L_PR = L_CP", 0, true},
      {"fixed L_PR, forward only", 0, false},
  };

  cvb::TablePrinter table({"driver variant", "total L", "total M"});
  for (const Variant& variant : variants) {
    int total_l = 0;
    int total_m = 0;
    for (const cvb::BenchmarkKernel& kernel : cvb::benchmark_suite()) {
      for (const std::string& spec : kDatapaths) {
        cvb::DriverParams params;
        params.run_iterative = false;
        params.max_stretch = variant.max_stretch;
        params.try_reverse = variant.try_reverse;
        const cvb::BindResult r =
            cvb::bind_initial_best(kernel.dfg, cvb::parse_datapath(spec),
                                   params);
        total_l += r.schedule.latency;
        total_m += r.schedule.num_moves;
      }
    }
    table.add_row({variant.name, std::to_string(total_l),
                   std::to_string(total_m)});
  }
  table.print(std::cout);
  std::cout << "\nThe full driver should dominate or match every ablated "
            << "variant on total latency.\n";
  return 0;
}
