// Design space exploration — the application the paper's conclusion
// motivates: "the flexibility and efficiency of this algorithm make it
// a very good candidate for use within a design space exploration
// framework for application-specific VLIW processors."
//
// For a chosen kernel, this example sweeps cluster counts and FU mixes
// at (roughly) constant total FU budget, binds with the full algorithm,
// and reports the latency / transfer / register-port tradeoffs so a
// designer can pick a datapath.
#include <iostream>
#include <vector>

#include "bind/driver.hpp"
#include "graph/analysis.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

// Each cluster FU needs 2 read + 1 write register-file ports; the cost
// driver the paper cites (Rixner et al.) is ports *per register file*,
// which clustering keeps small.
int max_ports_per_rf(const cvb::Datapath& dp) {
  int worst = 0;
  for (cvb::ClusterId c = 0; c < dp.num_clusters(); ++c) {
    const int fus = dp.fu_count(c, cvb::FuType::kAlu) +
                    dp.fu_count(c, cvb::FuType::kMult);
    worst = std::max(worst, 3 * fus);
  }
  return worst;
}

}  // namespace

int main() {
  using namespace cvb;

  const BenchmarkKernel kernel = benchmark_by_name("DCT-DIT");
  std::cout << "Design-space exploration for " << kernel.name << " (Nv="
            << kernel.dfg.num_ops() << ", Lcp="
            << critical_path_length(kernel.dfg, unit_latencies()) << ")\n"
            << "sweeping datapaths at a ~6-FU budget, 2 buses\n\n";

  const std::vector<std::string> candidates = {
      "[3,3]",                 // centralized: 1 RF with 18 ports
      "[2,2|1,1]",             // asymmetric 2-cluster
      "[2,1|1,2]",             // mixed 2-cluster
      "[1,1|1,1|1,1]",         // symmetric 3-cluster
      "[2,1|2,1]",             // ALU-heavy 2-cluster
      "[1,1|1,1|1,1|1,1]",     // 4-cluster (8 FUs)
  };

  TablePrinter table({"datapath", "clusters", "RF ports (worst)", "L", "M",
                      "bind ms"});
  for (const std::string& spec : candidates) {
    const Datapath dp = parse_datapath(spec);
    const BindResult r = bind_full(kernel.dfg, dp);
    table.add_row({spec, std::to_string(dp.num_clusters()),
                   std::to_string(max_ports_per_rf(dp)),
                   std::to_string(r.schedule.latency),
                   std::to_string(r.schedule.num_moves),
                   format_sig(r.init_ms + r.iter_ms, 2)});
  }
  table.print(std::cout);

  std::cout << "\nReading the table: clustering cuts the worst-case "
               "register-file port count\n(the clock/power/area driver) "
               "while a good binding keeps the latency close to\nthe "
               "centralized datapath's.\n";
  return 0;
}
