// Software-pipelining a DSP loop onto a clustered VLIW: build a cyclic
// kernel with loop-carried dependences, bind its body with the paper's
// algorithm, modulo-schedule it, and print the kernel slot by slot.
//
//   $ ./pipeline_loop
#include <iostream>

#include "machine/parser.hpp"
#include "modulo/loop_kernels.hpp"
#include "modulo/mii.hpp"
#include "modulo/modulo_scheduler.hpp"

int main() {
  using namespace cvb;

  const CyclicDfg loop = make_iir_biquad_loop();
  const Datapath dp = parse_datapath("[2,2|2,1]");

  std::cout << "IIR biquad loop: " << loop.num_ops() << " ops, "
            << loop.edges().size() << " dependences (incl. loop-carried)\n"
            << "datapath " << dp.to_string() << ", " << dp.num_buses()
            << " buses\n"
            << "ResMII=" << resource_mii(loop, dp)
            << "  RecMII=" << recurrence_mii(loop, dp.latencies())
            << "  MII=" << minimum_ii(loop, dp) << "\n\n";

  const ModuloResult r = software_pipeline(loop, dp);
  const std::string err = verify_modulo_schedule(r, dp);
  if (!err.empty()) {
    std::cerr << "internal error: " << err << '\n';
    return 1;
  }

  std::cout << "achieved II = " << r.ii << " cycles/iteration ("
            << (r.ii == r.mii ? "provably optimal" : "MII gap") << "), "
            << r.num_moves << " inter-cluster moves, " << r.stages
            << " pipeline stages\n\nkernel (cycle = start mod II):\n";
  for (int slot = 0; slot < r.ii; ++slot) {
    std::cout << "  slot " << slot << ":";
    for (OpId v = 0; v < r.kernel.num_ops(); ++v) {
      if (r.start[static_cast<std::size_t>(v)] % r.ii == slot) {
        const ClusterId c = r.place[static_cast<std::size_t>(v)];
        std::cout << ' ' << r.kernel.name(v)
                  << (c == kNoCluster ? "@bus" : "@c" + std::to_string(c))
                  << "[s" << r.start[static_cast<std::size_t>(v)] / r.ii
                  << ']';
      }
    }
    std::cout << '\n';
  }
  std::cout << "\n[sN] marks the pipeline stage each operation executes "
               "in;\noperations from " << r.stages
            << " consecutive iterations overlap in steady state.\n";
  return 0;
}
