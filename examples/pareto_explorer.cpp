// Pareto design-space exploration using the explore library — the
// full version of the paper-conclusion workflow: enumerate every
// datapath under an FU budget, bind the kernel with the paper's
// algorithm onto each, and print the Pareto front over
// (latency, register-file ports, data transfers).
//
//   $ ./pareto_explorer            # DCT-DIT, 6-FU budget
//   $ ./pareto_explorer FFT 8
#include <iostream>
#include <string>

#include "explore/explore.hpp"
#include "kernels/kernels.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace cvb;

  const std::string kernel_name = argc > 1 ? argv[1] : "DCT-DIT";
  const int budget = argc > 2 ? parse_nonnegative_int(argv[2]) : 6;

  const BenchmarkKernel kernel = benchmark_by_name(kernel_name);
  DseConstraints constraints;
  constraints.max_total_fus = budget;
  constraints.max_clusters = 3;
  constraints.max_fus_per_cluster = budget;

  std::cout << "Exploring datapaths for " << kernel.name << " (budget "
            << budget << " FUs, up to " << constraints.max_clusters
            << " clusters)\n";

  DriverParams driver;  // full B-ITER effort per design point
  const std::vector<DsePoint> points =
      explore_design_space(kernel.dfg, constraints, driver);
  const std::vector<DsePoint> front = pareto_front(points);
  std::cout << points.size() << " feasible design points, "
            << front.size() << " on the Pareto front:\n\n";

  TablePrinter table({"datapath", "FUs", "RF ports", "L", "LB", "M",
                      "energy", "bind ms"});
  for (const DsePoint& p : front) {
    table.add_row({p.datapath.to_string(), std::to_string(p.total_fus),
                   std::to_string(p.max_rf_ports), std::to_string(p.latency),
                   std::to_string(p.lower_bound), std::to_string(p.moves),
                   format_sig(p.energy, 3), format_sig(p.bind_ms, 2)});
  }
  table.print(std::cout);
  std::cout << "\nEach row is a defensible design: nothing in the swept "
               "space is faster at\nits port budget. 'LB' is the "
               "binding-independent latency floor.\n";
  return 0;
}
