// Schedule viewer: bind a kernel (a built-in benchmark by name, or any
// .dfg text file) to a datapath and print the full picture — binding
// report, ASCII Gantt chart, and the DFG in text form.
//
//   $ ./schedule_viewer                  # EWF on [1,1|1,1]
//   $ ./schedule_viewer FFT "[2,1|2,1]"
//   $ ./schedule_viewer my_kernel.dfg "[1,1|1,1|1,1]"
#include <fstream>
#include <iostream>
#include <string>

#include "bind/driver.hpp"
#include "bind/report.hpp"
#include "graph/analysis.hpp"
#include "io/dfg_text.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "sched/gantt.hpp"
#include "sched/verifier.hpp"

int main(int argc, char** argv) {
  using namespace cvb;

  const std::string source = argc > 1 ? argv[1] : "EWF";
  const std::string spec = argc > 2 ? argv[2] : "[1,1|1,1]";

  Dfg dfg;
  std::string name = source;
  if (source.size() > 4 && source.substr(source.size() - 4) == ".dfg") {
    std::ifstream file(source);
    if (!file) {
      std::cerr << "cannot open " << source << '\n';
      return 1;
    }
    ParsedDfg parsed = parse_dfg_text(file);
    dfg = std::move(parsed.dfg);
    name = parsed.name;
  } else {
    dfg = benchmark_by_name(source).dfg;
  }

  const Datapath dp = parse_datapath(spec);
  std::cout << name << ": " << dfg.num_ops() << " ops, Lcp="
            << critical_path_length(dfg, dp.latencies()) << " on "
            << dp.to_string() << " with " << dp.num_buses() << " bus(es)\n\n";

  const BindResult result = bind_full(dfg, dp);
  const std::string err = verify_schedule(result.bound, dp, result.schedule);
  if (!err.empty()) {
    std::cerr << "internal error: " << err << '\n';
    return 1;
  }

  write_binding_report(
      std::cout, make_binding_report(result.bound, dp, result.schedule), dp);
  std::cout << '\n';
  write_gantt(std::cout, result.bound, dp, result.schedule);
  return 0;
}
