// Dumps every paper benchmark DFG: statistics to stdout and Graphviz
// DOT files (plain and bound) to the current directory, so the graphs
// and bindings can be inspected visually:
//
//   $ ./dump_benchmarks && dot -Tpng EWF.bound.dot -o ewf.png
#include <fstream>
#include <iostream>

#include "bind/driver.hpp"
#include "graph/analysis.hpp"
#include "graph/components.hpp"
#include "graph/dot.hpp"
#include "graph/stats.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/table.hpp"

int main() {
  using namespace cvb;

  const Datapath dp = parse_datapath("[1,1|1,1]");
  TablePrinter table({"kernel", "Nv", "edges", "Ncc", "Lcp", "width",
                      "adds/subs", "muls", "in/out",
                      "bound L/M on [1,1|1,1]"});

  for (const BenchmarkKernel& kernel : benchmark_suite()) {
    const BindResult r = bind_full(kernel.dfg, dp);
    const DfgStats stats = compute_stats(kernel.dfg, unit_latencies());

    std::string safe = kernel.name;
    for (char& c : safe) {
      if (c == '-') {
        c = '_';
      }
    }
    {
      std::ofstream out(safe + ".dot");
      write_dot(out, kernel.dfg, safe);
    }
    {
      std::ofstream out(safe + ".bound.dot");
      std::vector<int> place(r.bound.place.begin(), r.bound.place.end());
      write_dot_bound(out, r.bound.graph, place, safe + "_bound");
    }

    table.add_row({kernel.name, std::to_string(kernel.dfg.num_ops()),
                   std::to_string(kernel.dfg.num_edges()),
                   std::to_string(num_components(kernel.dfg)),
                   std::to_string(
                       critical_path_length(kernel.dfg, unit_latencies())),
                   std::to_string(stats.max_width),
                   std::to_string(kernel.dfg.count_fu_type(FuType::kAlu)),
                   std::to_string(kernel.dfg.count_fu_type(FuType::kMult)),
                   std::to_string(stats.num_inputs) + "/" +
                       std::to_string(stats.num_outputs),
                   std::to_string(r.schedule.latency) + "/" +
                       std::to_string(r.schedule.num_moves)});
  }
  table.print(std::cout);
  std::cout << "\nWrote <kernel>.dot and <kernel>.bound.dot for every "
               "benchmark.\n";
  return 0;
}
