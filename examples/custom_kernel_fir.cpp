// Binding a user-defined kernel: a 16-tap FIR filter built through the
// public DfgBuilder API, bound to three datapaths of increasing width.
// Shows the B-INIT / B-ITER tradeoff the paper discusses: the fast
// initial phase alone versus the full algorithm.
#include <iostream>

#include "bind/driver.hpp"
#include "graph/analysis.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace cvb;

  const Dfg fir = make_fir(16);
  std::cout << "16-tap FIR: " << fir.num_ops() << " ops, critical path "
            << critical_path_length(fir, unit_latencies())
            << " cycles (unit latencies)\n\n";

  TablePrinter table({"datapath", "B-INIT L/M", "B-INIT ms", "B-ITER L/M",
                      "B-ITER ms"});
  for (const std::string spec :
       {"[1,1]", "[1,1|1,1]", "[2,1|1,1]", "[1,1|1,1|1,1]"}) {
    const Datapath dp = parse_datapath(spec);

    DriverParams init_only;
    init_only.run_iterative = false;
    const BindResult init = bind_initial_best(fir, dp, init_only);
    const BindResult full = bind_full(fir, dp);

    table.add_row({spec,
                   std::to_string(init.schedule.latency) + "/" +
                       std::to_string(init.schedule.num_moves),
                   format_sig(init.init_ms, 2),
                   std::to_string(full.schedule.latency) + "/" +
                       std::to_string(full.schedule.num_moves),
                   format_sig(full.init_ms + full.iter_ms, 2)});
  }
  table.print(std::cout);

  std::cout << "\nNote the accumulate chain limits how much extra clusters "
               "can help:\nthe FIR's serial tail dominates once the "
               "multiplies are spread out.\n";
  return 0;
}
