// The complete compiler flow on one kernel, printing every artifact:
//
//   DFG -> binding (B-INIT sweep + B-ITER) -> bound DFG with moves
//       -> verified list schedule -> register allocation
//       -> symbolic VLIW assembly -> functional (semantic) check
//
// This is the end-to-end story of the library: what a clustered-VLIW
// code generator built on the DAC'01 binder actually produces.
#include <iostream>

#include "bind/driver.hpp"
#include "bind/report.hpp"
#include "graph/analysis.hpp"
#include "kernels/kernels.hpp"
#include "machine/parser.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/emit.hpp"
#include "sched/verifier.hpp"
#include "sim/executor.hpp"

int main() {
  using namespace cvb;

  const BenchmarkKernel kernel = benchmark_by_name("FFT");
  const Datapath dp = parse_datapath("[2,1|2,1]");
  std::cout << "=== " << kernel.name << " -> " << dp.to_string() << " ("
            << dp.num_buses() << " buses) ===\n\n";

  // 1. Bind.
  const BindResult r = bind_full(kernel.dfg, dp);
  std::cout << "[1] binding: L=" << r.schedule.latency << " (Lcp="
            << critical_path_length(kernel.dfg, dp.latencies()) << "), M="
            << r.schedule.num_moves << " transfers; winning B-INIT params: "
            << "L_PR=" << r.best_init.profile_latency
            << (r.best_init.reverse ? ", reverse" : ", forward") << "\n\n";

  // 2. Verify the schedule independently.
  const std::string sched_err = verify_schedule(r.bound, dp, r.schedule);
  std::cout << "[2] schedule verifier: "
            << (sched_err.empty() ? "legal" : sched_err) << "\n\n";

  // 3. Utilization report.
  std::cout << "[3] ";
  write_binding_report(std::cout,
                       make_binding_report(r.bound, dp, r.schedule), dp);

  // 4. Register allocation.
  const RegAllocation alloc = allocate_registers(r.bound, dp, r.schedule);
  const std::string alloc_err =
      verify_allocation(r.bound, dp, r.schedule, alloc);
  std::cout << "\n[4] register allocation ("
            << (alloc_err.empty() ? "valid" : alloc_err) << "):";
  for (ClusterId c = 0; c < dp.num_clusters(); ++c) {
    std::cout << " c" << c << " file="
              << alloc.regs_used[static_cast<std::size_t>(c)] << " regs";
  }
  std::cout << "\n\n[5] VLIW assembly:\n";
  emit_vliw_asm(std::cout, r.bound, dp, r.schedule);

  // 6. Semantic check: the emitted code computes the original values.
  const std::string sem = check_semantics(
      kernel.dfg, r.bound, dp, r.schedule, {3, -7, 11, 2, -1, 5, 13, -4});
  std::cout << "\n[6] semantic check: "
            << (sem.empty() ? "scheduled code computes the original "
                              "dataflow values"
                            : sem)
            << '\n';
  return sem.empty() && sched_err.empty() && alloc_err.empty() ? 0 : 1;
}
