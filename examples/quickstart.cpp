// Quickstart: build a small dataflow graph, describe a 2-cluster VLIW
// datapath, bind the graph with the paper's full algorithm, and print
// the resulting binding and schedule.
//
//   $ ./quickstart
#include <iostream>

#include "bind/driver.hpp"
#include "graph/builder.hpp"
#include "machine/parser.hpp"
#include "sched/verifier.hpp"

int main() {
  using namespace cvb;

  // 1. Describe the computation: y = (a+b)*(c+d) + (e+f)*(g+h).
  DfgBuilder b;
  const Value s1 = b.add(b.input(), b.input(), "s1");
  const Value s2 = b.add(b.input(), b.input(), "s2");
  const Value s3 = b.add(b.input(), b.input(), "s3");
  const Value s4 = b.add(b.input(), b.input(), "s4");
  const Value p1 = b.mul(s1, s2, "p1");
  const Value p2 = b.mul(s3, s4, "p2");
  (void)b.add(p1, p2, "y");
  const Dfg dfg = std::move(b).take();

  // 2. Describe the machine: two clusters, each with 1 ALU and 1
  //    multiplier, joined by a single bus; every op takes one cycle.
  const Datapath dp = parse_datapath("[1,1|1,1]", /*num_buses=*/1);

  // 3. Bind and schedule.
  const BindResult result = bind_full(dfg, dp);

  std::cout << "datapath " << dp.to_string() << ", " << dp.num_buses()
            << " bus(es)\n"
            << "schedule latency L = " << result.schedule.latency
            << " cycles, data transfers M = " << result.schedule.num_moves
            << "\n\n";

  std::cout << "binding:\n";
  for (OpId v = 0; v < dfg.num_ops(); ++v) {
    std::cout << "  " << dfg.name(v) << " -> cluster "
              << result.binding[static_cast<std::size_t>(v)] << "\n";
  }

  std::cout << "\nschedule (bound graph, moves included):\n";
  for (int cycle = 0; cycle < result.schedule.latency; ++cycle) {
    std::cout << "  cycle " << cycle << ":";
    for (OpId v = 0; v < result.bound.graph.num_ops(); ++v) {
      if (result.schedule.start[static_cast<std::size_t>(v)] == cycle) {
        std::cout << ' ' << result.bound.graph.name(v);
        const ClusterId c = result.bound.place[static_cast<std::size_t>(v)];
        std::cout << (c == kNoCluster ? "@bus"
                                      : "@c" + std::to_string(c));
      }
    }
    std::cout << '\n';
  }

  // 4. Belt and braces: re-verify the schedule.
  const std::string err = verify_schedule(result.bound, dp, result.schedule);
  std::cout << "\nverifier: " << (err.empty() ? "schedule legal" : err)
            << '\n';
  return err.empty() ? 0 : 1;
}
