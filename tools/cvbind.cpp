// cvbind: command-line operation binder for clustered VLIW datapaths.
// All logic lives in src/cli/ (unit tested); this is the entry point.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return cvb::run_cli(args, std::cout, std::cerr);
}
