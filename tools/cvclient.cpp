// cvclient — a minimal cvserve/cvrouter client for smoke tests and
// scripting.
//
// Client mode reads NDJSON requests from stdin, ships them over a Unix
// socket in either wire protocol, and prints one JSON response per
// line:
//
//   cvclient --socket /tmp/cvb.sock          < jobs.ndjson   # NDJSON
//   cvclient --socket /tmp/cvb.sock --binary < jobs.ndjson   # frames
//
// Filter mode (no socket) canonicalizes NDJSON on stdin by stripping
// the wall-clock timing fields (queue_ms / run_ms / timings), which is
// what the CI router-smoke job uses to byte-compare transports:
//
//   cvclient --canonicalize < responses.ndjson
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "support/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CVCLIENT_HAVE_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

/// Strips queue_ms / run_ms / timings, keeping all other fields and
/// their order; non-object lines pass through re-dumped.
std::string canonicalize_line(const std::string& line) {
  const cvb::JsonValue parsed = cvb::JsonValue::parse(line);
  if (!parsed.is_object()) {
    return parsed.dump();
  }
  cvb::JsonValue out = cvb::JsonValue::object();
  for (const auto& [key, value] : parsed.as_object()) {
    if (key == "queue_ms" || key == "run_ms" || key == "timings") {
      continue;
    }
    out.set(key, value);
  }
  return out.dump();
}

int run_canonicalize() {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    try {
      std::cout << canonicalize_line(line) << "\n";
    } catch (const std::exception& e) {
      std::cerr << "cvclient: bad JSON line: " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}

#if defined(CVCLIENT_HAVE_SOCKETS)

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int run_client(const std::string& path, bool binary, bool canonical) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "cvclient: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::cerr << "cvclient: socket path too long\n";
    ::close(fd);
    return 1;
  }
  path.copy(addr.sun_path, path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    std::cerr << "cvclient: connect '" << path
              << "': " << std::strerror(errno) << "\n";
    ::close(fd);
    return 1;
  }

  // Ship every stdin line, then half-close so the server sees EOF once
  // it has drained our requests.
  std::string wire;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    if (binary) {
      cvb::net::append_frame(wire, cvb::net::FrameType::kRequest, line);
    } else {
      wire += line;
      wire += '\n';
    }
  }
  if (!send_all(fd, wire)) {
    std::cerr << "cvclient: send failed: " << std::strerror(errno) << "\n";
    ::close(fd);
    return 1;
  }
  ::shutdown(fd, SHUT_WR);

  std::string buf;
  char chunk[8192];
  ssize_t n = 0;
  int rc = 0;
  const auto emit = [&](const std::string& response) {
    try {
      std::cout << (canonical ? canonicalize_line(response) : response)
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << "cvclient: bad response JSON: " << e.what() << "\n";
      rc = 1;
    }
  };
  while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
    buf.append(chunk, static_cast<std::size_t>(n));
    if (binary) {
      while (true) {
        const cvb::net::DecodeResult decoded = cvb::net::decode_frame(buf);
        if (decoded.status == cvb::net::DecodeStatus::kNeedMore) {
          break;
        }
        if (cvb::net::is_decode_error(decoded.status)) {
          std::cerr << "cvclient: "
                    << cvb::net::decode_status_message(decoded.status) << "\n";
          ::close(fd);
          return 1;
        }
        emit(std::string(decoded.frame.payload));
        buf.erase(0, decoded.consumed);
      }
    } else {
      std::size_t eol = 0;
      while ((eol = buf.find('\n')) != std::string::npos) {
        emit(buf.substr(0, eol));
        buf.erase(0, eol + 1);
      }
    }
  }
  ::close(fd);
  if (!buf.empty()) {
    std::cerr << "cvclient: connection closed mid-"
              << (binary ? "frame" : "line") << "\n";
    return 1;
  }
  return rc;
}

#endif  // CVCLIENT_HAVE_SOCKETS

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool binary = false;
  bool canonical = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--binary") {
      binary = true;
    } else if (arg == "--canonicalize") {
      canonical = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: cvclient [--socket PATH [--binary]] "
                   "[--canonicalize]\n";
      return 0;
    } else {
      std::cerr << "cvclient: unknown argument '" << arg << "'\n";
      return 1;
    }
  }
  if (socket_path.empty()) {
    if (binary) {
      std::cerr << "cvclient: --binary requires --socket\n";
      return 1;
    }
    return run_canonicalize();
  }
#if defined(CVCLIENT_HAVE_SOCKETS)
  return run_client(socket_path, binary, canonical);
#else
  std::cerr << "cvclient: sockets unsupported on this platform\n";
  return 1;
#endif
}
