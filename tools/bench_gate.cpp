// CI perf gate for the scheduler-core bench trajectory.
//
//   bench_gate BASELINE.json CURRENT.json [--max-p99-regress F]
//              [--min-speedup F]
//
// Both files are "cvb-bench-sched-core-v1" reports written by
// bench/sched_core. The gate compares only *normalized* aggregates —
// new-core p99 divided by the frozen reference core's p99 measured in
// the same run — so a committed baseline from one machine remains
// meaningful on CI hosts of a different speed. It fails (exit 1) when:
//
//  * the current normalized p99 (full or delta path) exceeds the
//    baseline's by more than --max-p99-regress (default 0.10, the
//    ">10% p99 regression" budget), or
//  * the current aggregate full-path speedup over the reference core
//    falls below --min-speedup (default 1.2 — a conservative floor
//    under the 1.5x acceptance measurement, leaving headroom for noisy
//    shared CI runners).
//
// Exit codes: 0 pass, 1 gate failure, 2 usage/parse error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "support/json.hpp"
#include "support/strings.hpp"

namespace {

cvb::JsonValue load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  const cvb::JsonValue report = cvb::JsonValue::parse(text.str());
  const cvb::JsonValue* schema = report.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "cvb-bench-sched-core-v1") {
    throw std::invalid_argument(path +
                                ": not a cvb-bench-sched-core-v1 report");
  }
  return report;
}

double aggregate_of(const cvb::JsonValue& report, const std::string& key,
                    const std::string& path) {
  const cvb::JsonValue* aggregate = report.find("aggregate");
  if (aggregate == nullptr) {
    throw std::invalid_argument(path + ": missing aggregate object");
  }
  const cvb::JsonValue* value = aggregate->find(key);
  if (value == nullptr || !value->is_number()) {
    throw std::invalid_argument(path + ": missing aggregate." + key);
  }
  return value->as_number();
}

}  // namespace

int main(int argc, char** argv) {
  using cvb::format_sig;
  std::string baseline_path;
  std::string current_path;
  double max_regress = 0.10;
  double min_speedup = 1.2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-p99-regress" && i + 1 < argc) {
      max_regress = std::stod(argv[++i]);
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::stod(argv[++i]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::cerr << "usage: bench_gate BASELINE.json CURRENT.json "
                   "[--max-p99-regress F] [--min-speedup F]\n";
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "usage: bench_gate BASELINE.json CURRENT.json "
                 "[--max-p99-regress F] [--min-speedup F]\n";
    return 2;
  }

  try {
    const cvb::JsonValue baseline = load_report(baseline_path);
    const cvb::JsonValue current = load_report(current_path);

    bool ok = true;
    for (const std::string key :
         {"normalized_full_p99", "normalized_delta_p99"}) {
      const double base = aggregate_of(baseline, key, baseline_path);
      const double cur = aggregate_of(current, key, current_path);
      const double budget = base * (1.0 + max_regress);
      const bool pass = cur <= budget;
      std::cout << (pass ? "PASS" : "FAIL") << " " << key << ": baseline "
                << format_sig(base, 4) << ", current " << format_sig(cur, 4)
                << " (budget " << format_sig(budget, 4) << ")\n";
      ok = ok && pass;
    }
    const double speedup =
        aggregate_of(current, "full_speedup_vs_reference", current_path);
    const bool fast_enough = speedup >= min_speedup;
    std::cout << (fast_enough ? "PASS" : "FAIL")
              << " full_speedup_vs_reference: " << format_sig(speedup, 4)
              << " (floor " << format_sig(min_speedup, 4) << ")\n";
    ok = ok && fast_enough;

    std::cout << (ok ? "bench_gate: PASS\n" : "bench_gate: FAIL\n");
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_gate: " << e.what() << "\n";
    return 2;
  }
}
