// cvpipe: software-pipeline DSP loop kernels onto clustered VLIW
// datapaths. Logic lives in src/cli/pipe_cli.cpp (unit tested).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return cvb::run_pipe_cli(args, std::cout, std::cerr);
}
