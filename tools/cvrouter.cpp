// cvrouter: consistent-hash request router over cvserve workers.
// All logic is in src/cli/router_cli.cpp (library) for testability.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return cvb::run_router_cli(args, std::cout, std::cerr);
}
