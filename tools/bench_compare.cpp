// bench_compare — cross-PR performance trend over the committed
// bench/sched_core reports (BENCH_PR*.json at the repo root).
//
// bench_gate compares exactly two reports and fails CI on regression;
// this tool reads *every* BENCH_PR<N>.json it can find (or the paths
// given on the command line), orders them by PR number, and prints a
// markdown trajectory table: geomean eval speedup vs the differential
// reference scheduler (full and delta paths) and the normalized p99
// tail, per PR, with the per-PR change. A single data point is a valid
// trajectory — the table simply has one row until more PRs land.
//
//   bench_compare                 # globs BENCH_PR*.json in .
//   bench_compare --dir ../repo   # globs elsewhere
//   bench_compare a.json b.json   # explicit reports
//   bench_compare --series        # compact sparkline of the normalized
//                                 # p99 tail across the report sequence
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/strings.hpp"

namespace {

struct Report {
  int pr = 0;
  std::string path;
  double full_speedup = 0.0;
  double delta_speedup = 0.0;
  double full_p99 = 0.0;
  double delta_p99 = 0.0;
  double cache_hit_rate = -1.0;  ///< -1 = not recorded in this report
};

double number_or(const cvb::JsonValue* value, double fallback) {
  return value != nullptr && value->is_number() ? value->as_number() : fallback;
}

bool parse_report(const std::string& file, Report* out, std::string* error) {
  std::ifstream in(file);
  if (!in) {
    *error = "cannot open '" + file + "'";
    return false;
  }
  std::stringstream text;
  text << in.rdbuf();
  cvb::JsonValue doc;
  try {
    doc = cvb::JsonValue::parse(text.str());
  } catch (const std::exception& e) {
    *error = file + ": " + e.what();
    return false;
  }
  const cvb::JsonValue* schema = doc.find("schema");
  if (schema == nullptr ||
      schema->as_string() != "cvb-bench-sched-core-v1") {
    *error = file + ": not a cvb-bench-sched-core-v1 report";
    return false;
  }
  const cvb::JsonValue* aggregate = doc.find("aggregate");
  if (aggregate == nullptr) {
    *error = file + ": missing aggregate section";
    return false;
  }
  out->path = file;
  out->pr = static_cast<int>(number_or(doc.find("pr"), 0.0));
  out->full_speedup =
      number_or(aggregate->find("full_speedup_vs_reference"), 0.0);
  out->delta_speedup =
      number_or(aggregate->find("delta_speedup_vs_reference"), 0.0);
  out->full_p99 = number_or(aggregate->find("normalized_full_p99"), 0.0);
  out->delta_p99 = number_or(aggregate->find("normalized_delta_p99"), 0.0);
  const cvb::JsonValue* cache = doc.find("cache");
  if (cache != nullptr) {
    out->cache_hit_rate = number_or(cache->find("hit_rate"), -1.0);
  }
  return true;
}

std::string fixed(double value, int places) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(places);
  out << value;
  return out.str();
}

using cvb::sparkline;  // flat series render mid-height (support/strings)

/// "+3.2%" / "-1.4%" change vs the previous row; "—" for the first.
std::string change_cell(double current, double previous, bool first) {
  if (first || previous <= 0.0) {
    return "—";
  }
  const double pct = (current / previous - 1.0) * 100.0;
  return (pct >= 0.0 ? "+" : "") + fixed(pct, 1) + "%";
}

int run(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::string dir = ".";
  bool series = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--dir" && i + 1 < args.size()) {
      dir = args[++i];
    } else if (args[i] == "--series") {
      series = true;
    } else if (args[i] == "--help" || args[i] == "-h") {
      std::cout
          << "usage: bench_compare [--series] [--dir DIR | REPORT.json ...]\n"
             "Prints a markdown performance-trend table over the\n"
             "committed BENCH_PR*.json scheduler benchmark reports.\n"
             "--series prints a one-line-per-metric sparkline of the\n"
             "normalized p99 tail instead (oldest report first).\n";
      return 0;
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.empty()) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_PR", 0) == 0 &&
          entry.path().extension() == ".json") {
        files.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::cerr << "bench_compare: cannot list '" << dir
                << "': " << ec.message() << "\n";
      return 1;
    }
  }
  if (files.empty()) {
    std::cerr << "bench_compare: no BENCH_PR*.json reports found in '" << dir
              << "'\n";
    return 1;
  }

  std::vector<Report> reports;
  for (const std::string& file : files) {
    Report report;
    std::string error;
    if (!parse_report(file, &report, &error)) {
      std::cerr << "bench_compare: " << error << "\n";
      return 1;
    }
    reports.push_back(std::move(report));
  }
  std::sort(reports.begin(), reports.end(),
            [](const Report& a, const Report& b) { return a.pr < b.pr; });

  if (series) {
    // Compact trend for the CI bench-smoke log: one sparkline per
    // metric, normalized p99 (lower is better), oldest report first.
    std::vector<double> full;
    std::vector<double> delta;
    for (const Report& r : reports) {
      full.push_back(r.full_p99);
      delta.push_back(r.delta_p99);
    }
    const auto row = [&](const char* label, const std::vector<double>& v) {
      std::cout << label << "  " << sparkline(v) << "  "
                << fixed(v.front(), 3) << " → " << fixed(v.back(), 3)
                << "  (PR" << reports.front().pr << "→PR"
                << reports.back().pr << ", lower is better)\n";
    };
    std::cout << "sched_core normalized p99 across " << reports.size()
              << (reports.size() == 1 ? " report:\n" : " reports:\n");
    row("full ", full);
    row("delta", delta);
    return 0;
  }

  std::cout << "# sched_core performance trajectory\n\n"
            << "Geomean eval throughput vs the reference scheduler\n"
            << "(higher is better) and p99 latency normalized to the\n"
            << "reference (lower is better), per committed report.\n\n";
  std::cout << "| PR | full speedup | Δ | delta speedup | Δ | norm. full "
               "p99 | norm. delta p99 | cache hit rate |\n";
  std::cout << "|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Report& r = reports[i];
    const bool first = i == 0;
    const Report& prev = reports[first ? i : i - 1];
    std::cout << "| " << r.pr << " | " << fixed(r.full_speedup, 3) << "x | "
              << change_cell(r.full_speedup, prev.full_speedup, first)
              << " | " << fixed(r.delta_speedup, 3) << "x | "
              << change_cell(r.delta_speedup, prev.delta_speedup, first)
              << " | " << fixed(r.full_p99, 3) << " | "
              << fixed(r.delta_p99, 3) << " | "
              << (r.cache_hit_rate < 0.0
                      ? std::string("—")
                      : fixed(r.cache_hit_rate * 100.0, 1) + "%")
              << " |\n";
  }
  if (reports.size() == 1) {
    std::cout << "\nOne report so far; deltas appear once a second "
                 "BENCH_PR*.json lands.\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return run(std::vector<std::string>(argv + 1, argv + argc));
}
