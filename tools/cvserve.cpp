// cvserve: batched binding service over NDJSON (stdin/stdout or a
// Unix-domain socket). All logic lives in src/cli/serve_cli.cpp (unit
// tested); this is the entry point.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return cvb::run_serve_cli(args, std::cin, std::cout, std::cerr);
}
